//! The disabled profiler's contract is "one branch, zero allocation":
//! instrumented hot loops must pay nothing when profiling is off. This
//! test pins that with a counting global allocator — if a disabled
//! `span()` ever allocates, the count moves and the assertion names it.
//!
//! Counting is gated on a thread-local flag so only the measuring
//! thread's allocations register: the test harness spawns threads and
//! reports results concurrently, and its allocations on other threads
//! are not the profiler's doing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.try_with(Cell::get).unwrap_or(false) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` with this thread's allocations counted, returning how many
/// happened inside.
fn allocations_during(f: impl FnOnce()) -> u64 {
    COUNTING.with(|c| c.set(true));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(false));
    after - before
}

#[test]
fn disabled_spans_never_allocate() {
    let prof = mercurial_prof::Prof::disabled();
    let shard = prof.shard();
    // Warm anything lazy in the harness path before sampling.
    {
        let _g = prof.span("warmup");
    }
    let allocated = allocations_during(|| {
        for _ in 0..100_000 {
            let _outer = prof.span("epoch");
            let _inner = prof.span("sim");
            let _shard = shard.span("worker");
            prof.absorb(&shard);
        }
    });
    assert_eq!(
        allocated, 0,
        "disabled profiler allocated {allocated} times across 100k span triples"
    );
}

#[test]
fn enabled_spans_stop_allocating_once_the_tree_exists() {
    // Steady state for an *enabled* profiler: revisiting known phases
    // re-uses nodes; only first-visit creates them. Not part of the
    // zero-cost contract, but a regression here would silently tax every
    // epoch of a profiled run.
    let prof = mercurial_prof::Prof::enabled();
    for _ in 0..16 {
        let _outer = prof.span("epoch");
        let _inner = prof.span("sim");
    }
    let allocated = allocations_during(|| {
        for _ in 0..10_000 {
            let _outer = prof.span("epoch");
            let _inner = prof.span("sim");
        }
    });
    assert_eq!(
        allocated, 0,
        "enabled profiler allocated {allocated} times revisiting known phases"
    );
}
