//! The rule grammar: what an alert watches and when it fires.
//!
//! Rules are data (serde-serializable), so rule sets live in JSON files
//! next to scenarios and in the scenario's `watch` block. Five kinds,
//! matching the monitors the paper's §6 operations sketch implies:
//!
//! * **Threshold** — a scalar source compared against a limit. Epoch
//!   sources (`EpochMax`/`EpochMin`/`EpochSum` over a series column) are
//!   checked at every epoch boundary and fire at the first violation;
//!   metric sources (counter / gauge / histogram quantile) are checked at
//!   end of run.
//! * **Rate** — an epoch column dropping faster than a per-epoch budget
//!   (e.g. quarantine eating capacity too quickly).
//! * **Percentile** — a histogram quantile against a limit (e.g.
//!   `detect.latency_hours` p95 must stay under H).
//! * **Regression** — a scalar source compared against a persisted
//!   cross-run baseline with a tolerance band.
//! * **Windowed** — a per-epoch condition that must hold for K
//!   *consecutive* epochs before firing (the debounced threshold real
//!   alerting stacks express as Prometheus' `for:` clause).

use serde::{Deserialize, Serialize};

use crate::input::EpochRow;

/// Comparison operator of a threshold-style rule. The rule **fires** when
/// `value <op> limit` holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Cmp {
    /// Fire when the value is strictly greater than the limit.
    Gt,
    /// Fire when the value is greater than or equal to the limit.
    Ge,
    /// Fire when the value is strictly less than the limit.
    Lt,
    /// Fire when the value is less than or equal to the limit.
    Le,
}

impl Cmp {
    /// Whether `value <op> limit` holds.
    pub fn holds(self, value: f64, limit: f64) -> bool {
        match self {
            Cmp::Gt => value > limit,
            Cmp::Ge => value >= limit,
            Cmp::Lt => value < limit,
            Cmp::Le => value <= limit,
        }
    }

    /// The operator as a display symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Le => "<=",
        }
    }
}

/// A per-epoch column of the closed-loop telemetry series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochField {
    /// Schedulable fraction of nominal capacity.
    Capacity,
    /// Capacity including safe-task recovery on confirmed cores.
    CapacityWithSafetask,
    /// Corruption events drawn during the epoch.
    CorruptOps,
    /// Ground-truth mercurial cores still in service.
    ActiveMercurial,
}

impl EpochField {
    /// Read this column from one epoch row.
    pub fn of(self, row: &EpochRow) -> f64 {
        match self {
            EpochField::Capacity => row.capacity,
            EpochField::CapacityWithSafetask => row.capacity_with_safetask,
            EpochField::CorruptOps => row.corrupt_ops,
            EpochField::ActiveMercurial => row.active_mercurial,
        }
    }

    /// Canonical short name (used in source keys and reports).
    pub fn key(self) -> &'static str {
        match self {
            EpochField::Capacity => "capacity",
            EpochField::CapacityWithSafetask => "capacity_with_safetask",
            EpochField::CorruptOps => "corrupt_ops",
            EpochField::ActiveMercurial => "active_mercurial",
        }
    }
}

/// A scalar observable a rule can watch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Source {
    /// A counter's end-of-run value.
    Counter(String),
    /// A gauge's last-written value.
    Gauge(String),
    /// A histogram quantile (`q` must be one of the exported 0.5 / 0.95 /
    /// 0.99).
    Quantile {
        /// Histogram metric name, e.g. `detect.latency_hours`.
        histogram: String,
        /// Quantile in (0, 1); restricted to {0.5, 0.95, 0.99}.
        q: f64,
    },
    /// Maximum of an epoch column over the epochs seen so far.
    EpochMax(EpochField),
    /// Minimum of an epoch column over the epochs seen so far.
    EpochMin(EpochField),
    /// Running sum of an epoch column.
    EpochSum(EpochField),
}

impl Source {
    /// Canonical string key — the name baselines persist values under.
    pub fn key(&self) -> String {
        match self {
            Source::Counter(n) => format!("counter:{n}"),
            Source::Gauge(n) => format!("gauge:{n}"),
            Source::Quantile { histogram, q } => {
                format!("quantile:{histogram}:p{}", (q * 100.0).round())
            }
            Source::EpochMax(f) => format!("epoch_max:{}", f.key()),
            Source::EpochMin(f) => format!("epoch_min:{}", f.key()),
            Source::EpochSum(f) => format!("epoch_sum:{}", f.key()),
        }
    }

    /// Whether this source is derived from the per-epoch series (checked
    /// at every epoch boundary) rather than the end-of-run metric set.
    pub fn is_epoch_scoped(&self) -> bool {
        matches!(
            self,
            Source::EpochMax(_) | Source::EpochMin(_) | Source::EpochSum(_)
        )
    }
}

/// What makes a rule fire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RuleKind {
    /// `source <op> limit`.
    Threshold {
        /// The watched observable.
        source: Source,
        /// Fire when `value <op> limit` holds.
        op: Cmp,
        /// The limit.
        limit: f64,
    },
    /// An epoch column dropped by more than `max_drop_per_epoch` between
    /// two consecutive epochs.
    Rate {
        /// The watched epoch column.
        field: EpochField,
        /// Largest tolerated one-epoch drop (absolute units of the
        /// column; for capacity columns this is a fraction of nominal).
        max_drop_per_epoch: f64,
    },
    /// A histogram quantile against a limit — sugar for a `Threshold`
    /// over `Source::Quantile`, kept distinct because it is the common
    /// latency-SLO shape.
    Percentile {
        /// Histogram metric name.
        histogram: String,
        /// Quantile in {0.5, 0.95, 0.99}.
        q: f64,
        /// Fire when `quantile <op> limit` holds.
        op: Cmp,
        /// The limit.
        limit: f64,
    },
    /// The source moved outside `tolerance_frac` of the persisted
    /// baseline value: fire when `|value − base| > tolerance_frac·|base|`.
    /// Without a baseline entry the rule reports "no baseline" and never
    /// fires.
    Regression {
        /// The watched observable.
        source: Source,
        /// Fractional tolerance band around the baseline value.
        tolerance_frac: f64,
    },
    /// An epoch column violated `value <op> limit` for `window`
    /// **consecutive** epochs. Fires at the epoch that completes the
    /// streak — the debounced form of an epoch threshold, for noisy
    /// columns where one bad epoch is weather but K in a row is climate.
    Windowed {
        /// The watched epoch column.
        field: EpochField,
        /// The per-epoch violation condition.
        op: Cmp,
        /// The per-epoch limit.
        limit: f64,
        /// Consecutive violating epochs required to fire (≥ 1; 1 degrades
        /// to a plain per-epoch threshold).
        window: u32,
    },
}

/// Which slice of the fleet a rule watches.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuleScope {
    /// The whole fleet — the default, and what every legacy rule file
    /// parses as.
    #[default]
    FleetWide,
    /// One named workload class: epoch columns read the class's
    /// per-epoch `corrupt_ops`, and metric sources resolve under the
    /// class's `class.<name>.` metric prefix.
    Class(String),
}

impl RuleScope {
    /// The metric name this scope resolves `name` to: unchanged for the
    /// fleet, `class.<class>.<name>` for a class scope.
    pub fn metric_name(&self, name: &str) -> String {
        match self {
            RuleScope::FleetWide => name.to_string(),
            RuleScope::Class(class) => format!("class.{class}.{name}"),
        }
    }

    /// Stable label value for exports (Prometheus `scope` label).
    pub fn label(&self) -> &str {
        match self {
            RuleScope::FleetWide => "fleet",
            RuleScope::Class(class) => class,
        }
    }
}

/// One named alert rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Unique display name (reports and `alert.fired` events key on it).
    pub name: String,
    /// The firing condition.
    pub kind: RuleKind,
    /// The fleet slice the rule watches. Defaults to fleet-wide, so
    /// legacy rule files parse (and re-serialize their behavior)
    /// unchanged.
    #[serde(default)]
    pub scope: RuleScope,
}

impl Rule {
    /// Whether this rule is evaluated at every epoch boundary (epoch
    /// thresholds and rates) rather than once at end of run.
    pub fn is_epoch_scoped(&self) -> bool {
        match &self.kind {
            RuleKind::Threshold { source, .. } => source.is_epoch_scoped(),
            RuleKind::Rate { .. } | RuleKind::Windowed { .. } => true,
            RuleKind::Percentile { .. } | RuleKind::Regression { .. } => false,
        }
    }
}

/// An ordered set of rules — the unit rule files and scenario blocks
/// carry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    /// Rules in evaluation (and `alert.fired` index) order.
    pub rules: Vec<Rule>,
}

/// Quantiles the JSONL histogram lines export — the only ones an offline
/// replay can reconstruct, so the only ones rules may watch.
const EXPORTED_QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

fn check_quantile(rule: &str, q: f64) -> Result<(), String> {
    if EXPORTED_QUANTILES.contains(&q) {
        Ok(())
    } else {
        Err(format!(
            "rule `{rule}`: quantile {q} is not exported; use one of 0.5, 0.95, 0.99"
        ))
    }
}

fn check_finite(rule: &str, what: &str, v: f64) -> Result<(), String> {
    if v.is_finite() {
        Ok(())
    } else {
        Err(format!("rule `{rule}`: {what} must be finite, got {v}"))
    }
}

impl RuleSet {
    /// Validate the set: unique non-empty names, finite limits, and only
    /// exported quantiles.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::BTreeSet::new();
        for rule in &self.rules {
            if rule.name.trim().is_empty() {
                return Err("rule with empty name".to_string());
            }
            if !seen.insert(rule.name.as_str()) {
                return Err(format!("duplicate rule name `{}`", rule.name));
            }
            if let RuleScope::Class(class) = &rule.scope {
                if class.trim().is_empty() {
                    return Err(format!(
                        "rule `{}`: class scope must name a class",
                        rule.name
                    ));
                }
            }
            match &rule.kind {
                RuleKind::Threshold { source, limit, .. } => {
                    check_finite(&rule.name, "limit", *limit)?;
                    if let Source::Quantile { q, .. } = source {
                        check_quantile(&rule.name, *q)?;
                    }
                }
                RuleKind::Rate {
                    max_drop_per_epoch, ..
                } => {
                    check_finite(&rule.name, "max_drop_per_epoch", *max_drop_per_epoch)?;
                    if *max_drop_per_epoch < 0.0 {
                        return Err(format!(
                            "rule `{}`: max_drop_per_epoch must be >= 0",
                            rule.name
                        ));
                    }
                }
                RuleKind::Percentile { q, limit, .. } => {
                    check_quantile(&rule.name, *q)?;
                    check_finite(&rule.name, "limit", *limit)?;
                }
                RuleKind::Regression {
                    source,
                    tolerance_frac,
                } => {
                    check_finite(&rule.name, "tolerance_frac", *tolerance_frac)?;
                    if *tolerance_frac < 0.0 {
                        return Err(format!("rule `{}`: tolerance_frac must be >= 0", rule.name));
                    }
                    if let Source::Quantile { q, .. } = source {
                        check_quantile(&rule.name, *q)?;
                    }
                }
                RuleKind::Windowed { limit, window, .. } => {
                    check_finite(&rule.name, "limit", *limit)?;
                    if *window == 0 {
                        return Err(format!("rule `{}`: window must be >= 1", rule.name));
                    }
                }
            }
        }
        Ok(())
    }

    /// Serialize to pretty JSON (the rule-file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("rule set serializes")
    }

    /// Parse a rule file and validate it.
    ///
    /// # Errors
    ///
    /// Returns the serde error or the first validation problem.
    pub fn from_json(json: &str) -> Result<RuleSet, String> {
        let set: RuleSet = serde_json::from_str(json).map_err(|e| e.to_string())?;
        set.validate()?;
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threshold(name: &str, source: Source, op: Cmp, limit: f64) -> Rule {
        Rule {
            scope: Default::default(),
            name: name.to_string(),
            kind: RuleKind::Threshold { source, op, limit },
        }
    }

    #[test]
    fn cmp_semantics() {
        assert!(Cmp::Gt.holds(2.0, 1.0));
        assert!(!Cmp::Gt.holds(1.0, 1.0));
        assert!(Cmp::Ge.holds(1.0, 1.0));
        assert!(Cmp::Lt.holds(0.5, 1.0));
        assert!(Cmp::Le.holds(1.0, 1.0));
        assert_eq!(Cmp::Gt.symbol(), ">");
    }

    #[test]
    fn source_keys_are_canonical() {
        assert_eq!(
            Source::Counter("sim.corruptions".into()).key(),
            "counter:sim.corruptions"
        );
        assert_eq!(
            Source::Quantile {
                histogram: "detect.latency_hours".into(),
                q: 0.95
            }
            .key(),
            "quantile:detect.latency_hours:p95"
        );
        assert_eq!(
            Source::EpochMin(EpochField::Capacity).key(),
            "epoch_min:capacity"
        );
    }

    #[test]
    fn json_roundtrip() {
        let set = RuleSet {
            rules: vec![
                threshold(
                    "ops",
                    Source::EpochMax(EpochField::CorruptOps),
                    Cmp::Gt,
                    100.0,
                ),
                Rule {
                    scope: Default::default(),
                    name: "cap-drop".into(),
                    kind: RuleKind::Rate {
                        field: EpochField::Capacity,
                        max_drop_per_epoch: 0.01,
                    },
                },
                Rule {
                    scope: Default::default(),
                    name: "latency".into(),
                    kind: RuleKind::Percentile {
                        histogram: "detect.latency_hours".into(),
                        q: 0.95,
                        op: Cmp::Ge,
                        limit: 500.0,
                    },
                },
                Rule {
                    scope: Default::default(),
                    name: "base".into(),
                    kind: RuleKind::Regression {
                        source: Source::Counter("sim.corruptions".into()),
                        tolerance_frac: 0.25,
                    },
                },
                Rule {
                    scope: Default::default(),
                    name: "sustained-ops".into(),
                    kind: RuleKind::Windowed {
                        field: EpochField::CorruptOps,
                        op: Cmp::Gt,
                        limit: 25.0,
                        window: 3,
                    },
                },
            ],
        };
        let back = RuleSet::from_json(&set.to_json()).unwrap();
        assert_eq!(set, back);
    }

    #[test]
    fn windowed_serde_shape_is_pinned() {
        // Pin the wire shape so rule files keep parsing across versions.
        let json = r#"{
            "rules": [{
                "name": "w",
                "kind": {"Windowed": {"field": "CorruptOps", "op": "Gt",
                                      "limit": 10.0, "window": 4}}
            }]
        }"#;
        let set = RuleSet::from_json(json).unwrap();
        assert_eq!(
            set.rules[0].kind,
            RuleKind::Windowed {
                field: EpochField::CorruptOps,
                op: Cmp::Gt,
                limit: 10.0,
                window: 4,
            }
        );
        assert!(set.rules[0].is_epoch_scoped());
    }

    #[test]
    fn windowed_validation_rejects_degenerate_windows() {
        let zero = RuleSet {
            rules: vec![Rule {
                scope: Default::default(),
                name: "w".into(),
                kind: RuleKind::Windowed {
                    field: EpochField::Capacity,
                    op: Cmp::Lt,
                    limit: 0.9,
                    window: 0,
                },
            }],
        };
        assert!(zero.validate().unwrap_err().contains("window must be >= 1"));
        let nan = RuleSet {
            rules: vec![Rule {
                scope: Default::default(),
                name: "w".into(),
                kind: RuleKind::Windowed {
                    field: EpochField::Capacity,
                    op: Cmp::Lt,
                    limit: f64::NAN,
                    window: 2,
                },
            }],
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_rules() {
        let dup = RuleSet {
            rules: vec![
                threshold("a", Source::Counter("x".into()), Cmp::Gt, 1.0),
                threshold("a", Source::Counter("y".into()), Cmp::Gt, 1.0),
            ],
        };
        assert!(dup.validate().unwrap_err().contains("duplicate"));

        let bad_q = RuleSet {
            rules: vec![Rule {
                scope: Default::default(),
                name: "q".into(),
                kind: RuleKind::Percentile {
                    histogram: "h".into(),
                    q: 0.9,
                    op: Cmp::Gt,
                    limit: 1.0,
                },
            }],
        };
        assert!(bad_q.validate().unwrap_err().contains("not exported"));

        let inf = RuleSet {
            rules: vec![threshold(
                "i",
                Source::Counter("x".into()),
                Cmp::Gt,
                f64::NAN,
            )],
        };
        assert!(inf.validate().is_err());

        let neg_tol = RuleSet {
            rules: vec![Rule {
                scope: Default::default(),
                name: "t".into(),
                kind: RuleKind::Regression {
                    source: Source::Counter("x".into()),
                    tolerance_frac: -0.1,
                },
            }],
        };
        assert!(neg_tol.validate().is_err());
    }

    #[test]
    fn epoch_scoping() {
        assert!(
            threshold("a", Source::EpochMax(EpochField::CorruptOps), Cmp::Gt, 1.0)
                .is_epoch_scoped()
        );
        assert!(!threshold("b", Source::Counter("x".into()), Cmp::Gt, 1.0).is_epoch_scoped());
        assert!(Rule {
            scope: Default::default(),
            name: "r".into(),
            kind: RuleKind::Rate {
                field: EpochField::Capacity,
                max_drop_per_epoch: 0.1
            }
        }
        .is_epoch_scoped());
    }
}
