//! The evaluation snapshot rules run against.
//!
//! A [`WatchInput`] is the same whether it was built live from a
//! `Recorder`'s metric set plus the driver's `EpochSeries`
//! ([`WatchInput::from_run`]) or reconstructed offline from an exported
//! JSONL trace ([`WatchInput::from_jsonl`]) — which is what makes the
//! in-loop and replay paths report identical alerts for the same run.
//!
//! The replay path leans on one driver convention: at every epoch
//! boundary the closed-loop driver emits its capacity / active-core
//! gauges first and an `epoch.corrupt_ops` gauge **last**, so seeing
//! `epoch.corrupt_ops` is the signal to snapshot the latest gauge values
//! into one [`EpochRow`].

use std::collections::BTreeMap;

use mercurial_metrics::{percentiles_of, EpochSeries};
use mercurial_trace::MetricSet;
use serde::Deserialize as _;

use crate::rule::Source;

/// One epoch's snapshot of the closed-loop telemetry columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRow {
    /// Fleet hour at the **end** of the epoch (the hour the driver's
    /// boundary gauges carry).
    pub hour: f64,
    /// Schedulable fraction of nominal capacity.
    pub capacity: f64,
    /// Capacity including safe-task recovery.
    pub capacity_with_safetask: f64,
    /// Corruption events drawn during the epoch.
    pub corrupt_ops: f64,
    /// Ground-truth mercurial cores still in service.
    pub active_mercurial: f64,
}

/// The summary an exported histogram line carries — everything a rule can
/// watch about a histogram, identical between live and replayed inputs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistoSummary {
    /// Total samples observed.
    pub count: u64,
    /// Sum of finite samples.
    pub sum: f64,
    /// Median estimate, if any samples.
    pub p50: Option<f64>,
    /// 95th percentile estimate.
    pub p95: Option<f64>,
    /// 99th percentile estimate.
    pub p99: Option<f64>,
}

impl HistoSummary {
    /// The exported quantile for `q` ∈ {0.5, 0.95, 0.99}; `None` for other
    /// quantiles or when no samples were observed.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if q == 0.5 {
            self.p50
        } else if q == 0.95 {
            self.p95
        } else if q == 0.99 {
            self.p99
        } else {
            None
        }
    }
}

/// Everything the evaluator sees about one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WatchInput {
    /// End-of-run counter values.
    pub counters: BTreeMap<String, f64>,
    /// Last-written gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries.
    pub histograms: BTreeMap<String, HistoSummary>,
    /// Per-epoch rows in epoch order.
    pub epochs: Vec<EpochRow>,
    /// Per-workload-class corrupt-ops per epoch (aligned with `epochs`),
    /// keyed by class name. Empty unless the run attributed per class —
    /// class-scoped rules report no data then.
    pub class_epochs: BTreeMap<String, Vec<f64>>,
}

impl WatchInput {
    /// Snapshot a live metric set (no epoch rows — callers that have a
    /// series use [`WatchInput::from_run`]).
    pub fn from_metrics(metrics: &MetricSet) -> WatchInput {
        let mut input = WatchInput::default();
        for (name, v) in metrics.counters() {
            input.counters.insert(name.to_string(), v as f64);
        }
        for (name, v) in metrics.gauges() {
            input.gauges.insert(name.to_string(), v);
        }
        for (name, h) in metrics.histograms() {
            let p = percentiles_of(h);
            input.histograms.insert(
                name.to_string(),
                HistoSummary {
                    count: h.count(),
                    sum: h.sum(),
                    p50: p.map(|p| p.p50),
                    p95: p.map(|p| p.p95),
                    p99: p.map(|p| p.p99),
                },
            );
        }
        input
    }

    /// The live-run snapshot: the recorder's metric set plus the driver's
    /// per-epoch series. Row hours are epoch-**end** hours, matching the
    /// boundary gauges an exported trace carries.
    pub fn from_run(metrics: &MetricSet, series: &EpochSeries) -> WatchInput {
        let mut input = WatchInput::from_metrics(metrics);
        input.epochs = series
            .points()
            .iter()
            .map(|p| EpochRow {
                hour: p.hour + series.epoch_hours(),
                capacity: p.capacity,
                capacity_with_safetask: p.capacity_with_safetask,
                corrupt_ops: p.corrupt_ops as f64,
                active_mercurial: p.active_mercurial as f64,
            })
            .collect();
        for (ix, name) in series.class_names().iter().enumerate() {
            input.class_epochs.insert(
                name.clone(),
                series
                    .class_points()
                    .iter()
                    .map(|row| row.get(ix).map_or(0.0, |c| c.corrupt_ops as f64))
                    .collect(),
            );
        }
        input
    }

    /// Reconstruct the snapshot from an exported JSONL trace (buffered or
    /// streamed — they are byte-identical). One-shot wrapper over
    /// [`StreamIngest`].
    ///
    /// # Errors
    ///
    /// Reports the first malformed line (with its 1-based line number).
    pub fn from_jsonl(text: &str) -> Result<WatchInput, String> {
        let mut ingest = StreamIngest::new();
        ingest.ingest(text)?;
        Ok(ingest.finish())
    }

    /// Resolve a rule source to its scalar value, `None` when the metric
    /// or column has no data.
    pub fn source_value(&self, source: &Source) -> Option<f64> {
        match source {
            Source::Counter(n) => self.counters.get(n).copied(),
            Source::Gauge(n) => self.gauges.get(n).copied(),
            Source::Quantile { histogram, q } => {
                self.histograms.get(histogram).and_then(|h| h.quantile(*q))
            }
            Source::EpochMax(f) => fold_rows(&self.epochs, *f, f64::max),
            Source::EpochMin(f) => fold_rows(&self.epochs, *f, f64::min),
            Source::EpochSum(f) => {
                if self.epochs.is_empty() {
                    None
                } else {
                    Some(self.epochs.iter().map(|r| f.of(r)).sum())
                }
            }
        }
    }

    /// The run's last epoch-boundary hour (0 when no epochs were seen) —
    /// the hour end-of-run alerts are stamped with.
    pub fn end_hour(&self) -> f64 {
        self.epochs.last().map_or(0.0, |r| r.hour)
    }
}

/// Incremental JSONL trace ingester — the streaming form of
/// [`WatchInput::from_jsonl`].
///
/// Feed whole lines (in any chunking, as long as chunk boundaries fall on
/// line boundaries — which frames of a streamed trace guarantee) and the
/// accumulated [`WatchInput`] is identical to a one-shot parse of the
/// concatenated text. This is what lets a live server evaluate rules as
/// worker frames arrive instead of buffering a whole run first.
#[derive(Debug, Clone, Default)]
pub struct StreamIngest {
    input: WatchInput,
    /// Latest gauge values seen in the event stream, snapshotted into a
    /// row whenever the epoch-boundary marker gauge goes by.
    live_gauges: BTreeMap<String, f64>,
    /// Lines consumed so far, for 1-based error positions across chunks.
    lines: usize,
}

impl StreamIngest {
    /// A fresh ingester with nothing consumed.
    pub fn new() -> StreamIngest {
        StreamIngest::default()
    }

    /// Consume a chunk of one or more whole JSONL lines.
    ///
    /// # Errors
    ///
    /// Reports the first malformed line, numbered from the start of the
    /// whole stream (not the chunk).
    pub fn ingest(&mut self, text: &str) -> Result<(), String> {
        for line in text.lines() {
            self.lines += 1;
            self.ingest_line(line)?;
        }
        Ok(())
    }

    /// The snapshot accumulated so far — rules can be evaluated against
    /// it mid-stream.
    pub fn snapshot(&self) -> &WatchInput {
        &self.input
    }

    /// Epoch rows completed so far.
    pub fn epochs_seen(&self) -> usize {
        self.input.epochs.len()
    }

    /// Finish the stream and take the accumulated input.
    pub fn finish(self) -> WatchInput {
        self.input
    }

    fn ingest_line(&mut self, line: &str) -> Result<(), String> {
        let idx = self.lines;
        if line.trim().is_empty() {
            return Ok(());
        }
        let v: serde::Value = serde_json::from_str(line).map_err(|e| format!("line {idx}: {e}"))?;
        let field = |key: &str| -> Option<f64> { v.get(key).and_then(|x| f64::from_value(x).ok()) };
        let name = v
            .get("n")
            .and_then(|n| n.as_str())
            .ok_or_else(|| format!("line {idx}: missing \"n\""))?
            .to_string();
        if let Some(metric) = v.get("metric").and_then(|m| m.as_str()) {
            match metric {
                "counter" | "gauge" => {
                    let value = field("v").ok_or_else(|| format!("line {idx}: missing \"v\""))?;
                    if metric == "counter" {
                        self.input.counters.insert(name, value);
                    } else {
                        self.input.gauges.insert(name, value);
                    }
                }
                "histogram" => {
                    let count =
                        field("count").ok_or_else(|| format!("line {idx}: missing \"count\""))?;
                    self.input.histograms.insert(
                        name,
                        HistoSummary {
                            count: count as u64,
                            sum: field("sum").unwrap_or(0.0),
                            p50: field("p50"),
                            p95: field("p95"),
                            p99: field("p99"),
                        },
                    );
                }
                other => return Err(format!("line {idx}: unknown metric kind `{other}`")),
            }
            return Ok(());
        }
        // Event line: only gauges matter for the replayed series.
        if v.get("k").and_then(|k| k.as_str()) != Some("G") {
            return Ok(());
        }
        let hour = field("h").ok_or_else(|| format!("line {idx}: missing \"h\""))?;
        let value = field("v").ok_or_else(|| format!("line {idx}: missing \"v\""))?;
        if name == "epoch.corrupt_ops" {
            // The driver emits this gauge last at each epoch boundary:
            // snapshot the other columns from the latest gauge values.
            // Open-loop runs never sample the capacity gauges (capacity
            // is flat at nominal), hence the 1.0 defaults.
            //
            // Per-class attribution gauges precede the boundary marker,
            // so the latest `class.<name>.corrupt_ops` values belong to
            // this row; classes first seen mid-run are backfilled with
            // zeros to stay aligned.
            let row_ix = self.input.epochs.len();
            for (k, v) in &self.live_gauges {
                if let Some(class) = k
                    .strip_prefix("class.")
                    .and_then(|rest| rest.strip_suffix(".corrupt_ops"))
                {
                    let series = self
                        .input
                        .class_epochs
                        .entry(class.to_string())
                        .or_default();
                    while series.len() < row_ix {
                        series.push(0.0);
                    }
                    series.push(*v);
                }
            }
            self.input.epochs.push(EpochRow {
                hour,
                capacity: self
                    .live_gauges
                    .get("capacity.availability")
                    .copied()
                    .unwrap_or(1.0),
                capacity_with_safetask: self
                    .live_gauges
                    .get("capacity.with_safetask")
                    .copied()
                    .unwrap_or(1.0),
                corrupt_ops: value,
                active_mercurial: self
                    .live_gauges
                    .get("fleet.active_mercurial")
                    .copied()
                    .unwrap_or(0.0),
            });
        }
        self.live_gauges.insert(name, value);
        Ok(())
    }
}

fn fold_rows(
    rows: &[EpochRow],
    field: crate::rule::EpochField,
    pick: fn(f64, f64) -> f64,
) -> Option<f64> {
    rows.iter().map(|r| field.of(r)).reduce(pick)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::EpochField;
    use mercurial_trace::{Recorder, TraceFlags};

    fn sample_run() -> (MetricSet, EpochSeries) {
        let mut rec = Recorder::with_flags(TraceFlags::enabled());
        let mut series = EpochSeries::new(73.0);
        for epoch in 0..3u64 {
            let h1 = (epoch + 1) as f64 * 73.0;
            rec.counter_add("sim.corruptions", 5 + epoch);
            rec.observe("detect.latency_hours", 100.0 * (epoch + 1) as f64);
            rec.gauge(h1, "capacity.availability", 1.0 - 0.01 * epoch as f64);
            rec.gauge(h1, "capacity.with_safetask", 1.0 - 0.005 * epoch as f64);
            rec.gauge(h1, "fleet.active_mercurial", 4.0);
            rec.gauge(h1, "epoch.corrupt_ops", (5 + epoch) as f64);
            series.push(
                1.0 - 0.01 * epoch as f64,
                1.0 - 0.005 * epoch as f64,
                5 + epoch,
                4,
            );
        }
        (rec.finish().metrics, series)
    }

    #[test]
    fn from_run_and_from_jsonl_agree() {
        let mut rec = Recorder::with_flags(TraceFlags::enabled());
        let mut series = EpochSeries::new(73.0);
        for epoch in 0..3u64 {
            let h1 = (epoch + 1) as f64 * 73.0;
            rec.counter_add("sim.corruptions", 5 + epoch);
            rec.observe("detect.latency_hours", 100.0 * (epoch + 1) as f64);
            rec.gauge(h1, "capacity.availability", 1.0 - 0.01 * epoch as f64);
            rec.gauge(h1, "capacity.with_safetask", 1.0 - 0.005 * epoch as f64);
            rec.gauge(h1, "fleet.active_mercurial", 4.0);
            rec.gauge(h1, "epoch.corrupt_ops", (5 + epoch) as f64);
            series.push(
                1.0 - 0.01 * epoch as f64,
                1.0 - 0.005 * epoch as f64,
                5 + epoch,
                4,
            );
        }
        let trace = rec.finish();
        let live = WatchInput::from_run(&trace.metrics, &series);
        let replayed = WatchInput::from_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(live, replayed);
        assert_eq!(live.epochs.len(), 3);
        assert_eq!(live.epochs[2].hour, 219.0);
        assert_eq!(live.epochs[2].corrupt_ops, 7.0);
    }

    #[test]
    fn source_values_resolve() {
        let (metrics, series) = sample_run();
        let input = WatchInput::from_run(&metrics, &series);
        assert_eq!(
            input.source_value(&Source::Counter("sim.corruptions".into())),
            Some(18.0)
        );
        assert_eq!(
            input.source_value(&Source::Gauge("capacity.availability".into())),
            Some(0.98)
        );
        assert_eq!(
            input.source_value(&Source::EpochMax(EpochField::CorruptOps)),
            Some(7.0)
        );
        assert_eq!(
            input.source_value(&Source::EpochMin(EpochField::Capacity)),
            Some(0.98)
        );
        assert_eq!(
            input.source_value(&Source::EpochSum(EpochField::CorruptOps)),
            Some(18.0)
        );
        let p95 = input
            .source_value(&Source::Quantile {
                histogram: "detect.latency_hours".into(),
                q: 0.95,
            })
            .unwrap();
        assert!(p95 > 0.0);
        // Missing metrics and unexported quantiles resolve to no data.
        assert_eq!(input.source_value(&Source::Counter("nope".into())), None);
        assert_eq!(
            input.source_value(&Source::Quantile {
                histogram: "detect.latency_hours".into(),
                q: 0.9
            }),
            None
        );
        assert_eq!(input.end_hour(), 219.0);
    }

    #[test]
    fn empty_input_has_no_data_anywhere() {
        let input = WatchInput::default();
        assert_eq!(
            input.source_value(&Source::EpochMax(EpochField::CorruptOps)),
            None
        );
        assert_eq!(
            input.source_value(&Source::EpochSum(EpochField::CorruptOps)),
            None
        );
        assert_eq!(input.end_hour(), 0.0);
    }

    #[test]
    fn chunked_stream_ingest_matches_one_shot_parse() {
        let mut rec = Recorder::with_flags(TraceFlags::enabled());
        for epoch in 0..4u64 {
            let h1 = (epoch + 1) as f64 * 73.0;
            rec.counter_add("sim.corruptions", epoch + 1);
            rec.gauge(h1, "capacity.availability", 1.0 - 0.02 * epoch as f64);
            rec.gauge(h1, "fleet.active_mercurial", 8.0 - epoch as f64);
            rec.gauge(h1, "epoch.corrupt_ops", (3 * epoch) as f64);
        }
        let text = rec.finish().to_jsonl();
        let whole = WatchInput::from_jsonl(&text).unwrap();

        // Feed the same text line by line, checking mid-stream progress.
        let mut ingest = StreamIngest::new();
        for line in text.lines() {
            ingest.ingest(line).unwrap();
        }
        assert_eq!(ingest.epochs_seen(), 4);
        assert_eq!(ingest.snapshot(), &whole);
        assert_eq!(ingest.finish(), whole);

        // And in uneven multi-line chunks.
        let lines: Vec<&str> = text.lines().collect();
        let mut ingest = StreamIngest::new();
        for chunk in lines.chunks(3) {
            ingest.ingest(&chunk.join("\n")).unwrap();
        }
        assert_eq!(ingest.finish(), whole);
    }

    #[test]
    fn class_gauges_replay_into_class_epochs() {
        use mercurial_metrics::ClassPoint;
        let mut rec = Recorder::with_flags(TraceFlags::enabled());
        let mut series = EpochSeries::new(73.0);
        series.set_class_names(vec!["db".into(), "web".into()]);
        for epoch in 0..3u64 {
            let h1 = (epoch + 1) as f64 * 73.0;
            rec.gauge(h1, "fleet.active_mercurial", 4.0);
            rec.gauge(h1, "class.db.corrupt_ops", (10 * epoch) as f64);
            rec.gauge(h1, "class.web.corrupt_ops", (epoch + 1) as f64);
            rec.gauge(h1, "epoch.corrupt_ops", (11 * epoch) as f64);
            series.push(1.0, 1.0, 11 * epoch, 4);
            series.push_classes(vec![
                ClassPoint {
                    corrupt_ops: 10 * epoch,
                    ..ClassPoint::default()
                },
                ClassPoint {
                    corrupt_ops: epoch + 1,
                    ..ClassPoint::default()
                },
            ]);
        }
        let trace = rec.finish();
        let live = WatchInput::from_run(&trace.metrics, &series);
        let replayed = WatchInput::from_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(live, replayed);
        assert_eq!(live.class_epochs["db"], vec![0.0, 10.0, 20.0]);
        assert_eq!(live.class_epochs["web"], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn stream_ingest_errors_carry_global_line_numbers() {
        let mut ingest = StreamIngest::new();
        ingest.ingest("\n\n").unwrap();
        let err = ingest.ingest("not json").unwrap_err();
        assert!(err.contains("line 3"), "{err}");
    }

    #[test]
    fn malformed_jsonl_reports_line() {
        let err = WatchInput::from_jsonl("{\"h\":1}\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        let err = WatchInput::from_jsonl("not json").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
