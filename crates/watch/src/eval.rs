//! Rule evaluation: one code path shared by the in-loop engine and the
//! offline replay, so both report identical alerts for the same run.
//!
//! Epoch-scoped rules (epoch thresholds, rates) fire at most once, at the
//! first violating epoch boundary, stamped with that boundary's hour.
//! End-of-run rules (metric thresholds, percentiles, regressions) are
//! stamped with the run's last boundary hour. Missing data is reported as
//! [`RuleStatus::NoData`], a missing baseline as
//! [`RuleStatus::NoBaseline`] — neither ever fires.

use std::collections::BTreeMap;

use crate::baseline::Baseline;
use crate::input::{EpochRow, WatchInput};
use crate::rule::{Rule, RuleKind, RuleScope, RuleSet, Source};
use mercurial_trace::MetricSet;

/// One firing: which rule, when, and the observed-vs-limit pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The firing rule's name.
    pub rule: String,
    /// Fleet hour the alert is stamped with (first violating epoch
    /// boundary, or the run's end for end-of-run rules).
    pub hour: f64,
    /// The observed value.
    pub value: f64,
    /// The limit (for regressions: the baseline value).
    pub limit: f64,
    /// Human-readable description of the violation.
    pub message: String,
}

/// The outcome of evaluating one rule.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleStatus {
    /// The rule held.
    Ok,
    /// The rule fired.
    Fired(Alert),
    /// A regression rule found no baseline entry for its source.
    NoBaseline,
    /// The watched metric/column recorded no data.
    NoData,
}

/// One rule's evaluated outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleOutcome {
    /// The rule's name.
    pub rule: String,
    /// What happened.
    pub status: RuleStatus,
}

/// The full readout of a rule set over one run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WatchReport {
    /// One outcome per rule, in rule order.
    pub outcomes: Vec<RuleOutcome>,
}

impl WatchReport {
    /// The alerts that fired, in rule order.
    pub fn alerts(&self) -> Vec<&Alert> {
        self.outcomes
            .iter()
            .filter_map(|o| match &o.status {
                RuleStatus::Fired(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    /// Whether any rule fired.
    pub fn any_fired(&self) -> bool {
        self.outcomes
            .iter()
            .any(|o| matches!(o.status, RuleStatus::Fired(_)))
    }

    /// Render a fixed-width status table (deterministic).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let fired = self.alerts().len();
        out.push_str(&format!(
            "watch report: {} rules, {} fired\n",
            self.outcomes.len(),
            fired
        ));
        let width = self
            .outcomes
            .iter()
            .map(|o| o.rule.len())
            .max()
            .unwrap_or(0);
        for o in &self.outcomes {
            let line = match &o.status {
                RuleStatus::Ok => "ok".to_string(),
                RuleStatus::NoBaseline => {
                    "no baseline (record one with --record-baseline)".to_string()
                }
                RuleStatus::NoData => "no data".to_string(),
                RuleStatus::Fired(a) => format!("FIRED @h{:.0}  {}", a.hour, a.message),
            };
            out.push_str(&format!("  {:<width$}  {line}\n", o.rule));
        }
        out
    }
}

/// Format a value the way reports show them: trimmed floats.
fn fmt_v(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Rewrite a metric source for a rule's scope: class scopes resolve
/// counter/gauge/histogram names under the class's `class.<name>.`
/// prefix (epoch sources are scoped via [`scoped_rows`] instead).
fn scoped_source(source: &Source, scope: &RuleScope) -> Source {
    match (scope, source) {
        (RuleScope::FleetWide, s) => s.clone(),
        (RuleScope::Class(_), Source::Counter(n)) => Source::Counter(scope.metric_name(n)),
        (RuleScope::Class(_), Source::Gauge(n)) => Source::Gauge(scope.metric_name(n)),
        (RuleScope::Class(_), Source::Quantile { histogram, q }) => Source::Quantile {
            histogram: scope.metric_name(histogram),
            q: *q,
        },
        (RuleScope::Class(_), s) => s.clone(),
    }
}

/// The epoch rows a scope sees: the fleet series as-is, or (for a class
/// scope) the same rows with `corrupt_ops` replaced by the class's
/// per-epoch attribution. `None` when the class recorded no data.
fn scoped_rows<'a>(
    rows: &'a [EpochRow],
    class_epochs: &BTreeMap<String, Vec<f64>>,
    scope: &RuleScope,
) -> Option<std::borrow::Cow<'a, [EpochRow]>> {
    match scope {
        RuleScope::FleetWide => Some(std::borrow::Cow::Borrowed(rows)),
        RuleScope::Class(class) => {
            let vals = class_epochs.get(class)?;
            Some(std::borrow::Cow::Owned(
                rows.iter()
                    .enumerate()
                    .map(|(i, r)| EpochRow {
                        corrupt_ops: vals.get(i).copied().unwrap_or(0.0),
                        ..*r
                    })
                    .collect(),
            ))
        }
    }
}

/// First epoch index (with the violating value) at which an epoch-scoped
/// rule's condition holds over the running prefix of `rows`.
fn first_violation(rule: &Rule, rows: &[EpochRow]) -> Option<(usize, f64, f64, String)> {
    match &rule.kind {
        RuleKind::Threshold { source, op, limit } => {
            use crate::rule::Source as S;
            enum Agg {
                Max,
                Min,
                Sum,
            }
            let (field, combine) = match source {
                S::EpochMax(f) => (*f, Agg::Max),
                S::EpochMin(f) => (*f, Agg::Min),
                S::EpochSum(f) => (*f, Agg::Sum),
                _ => return None,
            };
            // Running-aggregate walk: the first row where the aggregate
            // over rows[0..=i] violates is the firing epoch.
            let mut agg: Option<f64> = None;
            for (i, row) in rows.iter().enumerate() {
                let v = field.of(row);
                let next = match (agg, &combine) {
                    (None, _) => v,
                    (Some(a), Agg::Max) => a.max(v),
                    (Some(a), Agg::Min) => a.min(v),
                    (Some(a), Agg::Sum) => a + v,
                };
                agg = Some(next);
                if op.holds(next, *limit) {
                    let msg = format!(
                        "{} = {} {} {}",
                        source.key(),
                        fmt_v(next),
                        op.symbol(),
                        fmt_v(*limit)
                    );
                    return Some((i, next, *limit, msg));
                }
            }
            None
        }
        RuleKind::Rate {
            field,
            max_drop_per_epoch,
        } => {
            for i in 1..rows.len() {
                let drop = field.of(&rows[i - 1]) - field.of(&rows[i]);
                if drop > *max_drop_per_epoch {
                    let msg = format!(
                        "{} dropped {} in one epoch (budget {})",
                        field.key(),
                        fmt_v(drop),
                        fmt_v(*max_drop_per_epoch)
                    );
                    return Some((i, drop, *max_drop_per_epoch, msg));
                }
            }
            None
        }
        RuleKind::Windowed {
            field,
            op,
            limit,
            window,
        } => {
            // Consecutive-violation streak; the row completing the
            // streak is the firing epoch.
            let mut streak = 0u32;
            for (i, row) in rows.iter().enumerate() {
                let v = field.of(row);
                if op.holds(v, *limit) {
                    streak += 1;
                    if streak >= *window {
                        let msg = format!(
                            "{} {} {} for {} consecutive epochs (latest {})",
                            field.key(),
                            op.symbol(),
                            fmt_v(*limit),
                            window,
                            fmt_v(v)
                        );
                        return Some((i, v, *limit, msg));
                    }
                } else {
                    streak = 0;
                }
            }
            None
        }
        _ => None,
    }
}

/// Evaluate one end-of-run rule against the input snapshot.
fn eval_end_of_run(rule: &Rule, input: &WatchInput, baseline: Option<&Baseline>) -> RuleStatus {
    let hour = input.end_hour();
    match &rule.kind {
        RuleKind::Threshold { source, op, limit } => {
            let source = scoped_source(source, &rule.scope);
            match input.source_value(&source) {
                None => RuleStatus::NoData,
                Some(value) if op.holds(value, *limit) => RuleStatus::Fired(Alert {
                    rule: rule.name.clone(),
                    hour,
                    value,
                    limit: *limit,
                    message: format!(
                        "{} = {} {} {}",
                        source.key(),
                        fmt_v(value),
                        op.symbol(),
                        fmt_v(*limit)
                    ),
                }),
                Some(_) => RuleStatus::Ok,
            }
        }
        RuleKind::Percentile {
            histogram,
            q,
            op,
            limit,
        } => {
            let source = scoped_source(
                &Source::Quantile {
                    histogram: histogram.clone(),
                    q: *q,
                },
                &rule.scope,
            );
            match input.source_value(&source) {
                None => RuleStatus::NoData,
                Some(value) if op.holds(value, *limit) => RuleStatus::Fired(Alert {
                    rule: rule.name.clone(),
                    hour,
                    value,
                    limit: *limit,
                    message: format!(
                        "{} = {} {} {}",
                        source.key(),
                        fmt_v(value),
                        op.symbol(),
                        fmt_v(*limit)
                    ),
                }),
                Some(_) => RuleStatus::Ok,
            }
        }
        RuleKind::Regression {
            source,
            tolerance_frac,
        } => {
            let source = scoped_source(source, &rule.scope);
            let Some(value) = input.source_value(&source) else {
                return RuleStatus::NoData;
            };
            let Some(base) = baseline.and_then(|b| b.get(&source.key())) else {
                return RuleStatus::NoBaseline;
            };
            let band = tolerance_frac * base.abs();
            if (value - base).abs() > band {
                RuleStatus::Fired(Alert {
                    rule: rule.name.clone(),
                    hour,
                    value,
                    limit: base,
                    message: format!(
                        "{} = {} vs baseline {} (±{})",
                        source.key(),
                        fmt_v(value),
                        fmt_v(base),
                        fmt_v(band)
                    ),
                })
            } else {
                RuleStatus::Ok
            }
        }
        // Epoch-scoped kinds are handled by `first_violation`.
        RuleKind::Rate { .. } | RuleKind::Windowed { .. } => RuleStatus::Ok,
    }
}

impl RuleSet {
    /// Evaluate every rule against a finished input snapshot. This is the
    /// single evaluator: the in-loop [`WatchEngine`] produces the exact
    /// same report for the same run.
    pub fn evaluate(&self, input: &WatchInput, baseline: Option<&Baseline>) -> WatchReport {
        let outcomes = self
            .rules
            .iter()
            .map(|rule| {
                let status = if rule.is_epoch_scoped() {
                    match scoped_rows(&input.epochs, &input.class_epochs, &rule.scope) {
                        None => RuleStatus::NoData,
                        Some(rows) => match first_violation(rule, &rows) {
                            Some((idx, value, limit, message)) => RuleStatus::Fired(Alert {
                                rule: rule.name.clone(),
                                hour: rows[idx].hour,
                                value,
                                limit,
                                message,
                            }),
                            None if rows.is_empty() => RuleStatus::NoData,
                            None => RuleStatus::Ok,
                        },
                    }
                } else {
                    eval_end_of_run(rule, input, baseline)
                };
                RuleOutcome {
                    rule: rule.name.clone(),
                    status,
                }
            })
            .collect();
        WatchReport { outcomes }
    }
}

/// The in-loop evaluator the closed-loop driver drives: epoch-scoped
/// rules are checked at every [`WatchEngine::push_epoch`] so alerts can
/// be stamped into the trace as they happen; [`WatchEngine::finish`]
/// evaluates the end-of-run rules and assembles the final report.
pub struct WatchEngine {
    rules: RuleSet,
    rows: Vec<EpochRow>,
    /// Per-class per-epoch corrupt-ops, fed alongside the fleet rows by
    /// drivers with class attribution on; class-scoped rules read these.
    class_rows: BTreeMap<String, Vec<f64>>,
    /// Per-rule fired flag (epoch-scoped rules fire at most once).
    fired: Vec<bool>,
}

impl WatchEngine {
    /// New engine over a rule set.
    pub fn new(rules: RuleSet) -> WatchEngine {
        let n = rules.rules.len();
        WatchEngine {
            rules,
            rows: Vec::new(),
            class_rows: BTreeMap::new(),
            fired: vec![false; n],
        }
    }

    /// The rule set this engine evaluates.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Feed the epoch that just completed. Returns the **newly** fired
    /// epoch-scoped alerts with their rule indices (for `alert.fired`
    /// trace instants), in rule order.
    pub fn push_epoch(&mut self, row: EpochRow) -> Vec<(usize, Alert)> {
        self.push_epoch_classed(row, &[])
    }

    /// [`push_epoch`](WatchEngine::push_epoch) with the epoch's per-class
    /// corrupt-ops attribution — what class-scoped rules evaluate
    /// against. Classes absent from earlier epochs are backfilled with
    /// zeros so every class series stays aligned with the fleet rows.
    pub fn push_epoch_classed(
        &mut self,
        row: EpochRow,
        classes: &[(String, f64)],
    ) -> Vec<(usize, Alert)> {
        for (name, v) in classes {
            let series = self.class_rows.entry(name.clone()).or_default();
            while series.len() < self.rows.len() {
                series.push(0.0);
            }
            series.push(*v);
        }
        self.rows.push(row);
        let mut fresh = Vec::new();
        for (i, rule) in self.rules.rules.iter().enumerate() {
            if self.fired[i] || !rule.is_epoch_scoped() {
                continue;
            }
            let Some(rows) = scoped_rows(&self.rows, &self.class_rows, &rule.scope) else {
                continue;
            };
            if let Some((idx, value, limit, message)) = first_violation(rule, &rows) {
                // A violation can only first appear at the newest row.
                debug_assert_eq!(idx, rows.len() - 1);
                self.fired[i] = true;
                fresh.push((
                    i,
                    Alert {
                        rule: rule.name.clone(),
                        hour: rows[idx].hour,
                        value,
                        limit,
                        message,
                    },
                ));
            }
        }
        fresh
    }

    /// Finish the run: evaluate end-of-run rules against the final metric
    /// set and return the full report plus the alerts that fired **at**
    /// the end (epoch-scoped firings were already returned by
    /// `push_epoch`), with rule indices for trace instants.
    pub fn finish(
        self,
        metrics: &MetricSet,
        baseline: Option<&Baseline>,
    ) -> (WatchReport, Vec<(usize, Alert)>) {
        let mut input = WatchInput::from_metrics(metrics);
        input.epochs = self.rows;
        input.class_epochs = self.class_rows;
        let report = self.rules.evaluate(&input, baseline);
        let end_alerts = report
            .outcomes
            .iter()
            .enumerate()
            .filter_map(
                |(i, o)| match (&o.status, self.rules.rules[i].is_epoch_scoped()) {
                    (RuleStatus::Fired(a), false) => Some((i, a.clone())),
                    _ => None,
                },
            )
            .collect();
        (report, end_alerts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Cmp, EpochField, Source};

    fn row(hour: f64, capacity: f64, corrupt_ops: f64) -> EpochRow {
        EpochRow {
            hour,
            capacity,
            capacity_with_safetask: capacity,
            corrupt_ops,
            active_mercurial: 1.0,
        }
    }

    fn input_with(epochs: Vec<EpochRow>) -> WatchInput {
        WatchInput {
            epochs,
            ..WatchInput::default()
        }
    }

    fn ops_threshold(limit: f64) -> RuleSet {
        RuleSet {
            rules: vec![Rule {
                scope: Default::default(),
                name: "ops".into(),
                kind: RuleKind::Threshold {
                    source: Source::EpochMax(EpochField::CorruptOps),
                    op: Cmp::Gt,
                    limit,
                },
            }],
        }
    }

    #[test]
    fn threshold_fires_at_first_violating_epoch() {
        let input = input_with(vec![
            row(73.0, 1.0, 5.0),
            row(146.0, 1.0, 50.0),
            row(219.0, 1.0, 60.0),
        ]);
        let report = ops_threshold(10.0).evaluate(&input, None);
        let alerts = report.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].hour, 146.0);
        assert_eq!(alerts[0].value, 50.0);
        assert!(report.any_fired());
    }

    #[test]
    fn engine_matches_offline_evaluation() {
        let rules = ops_threshold(10.0);
        let rows = vec![
            row(73.0, 1.0, 5.0),
            row(146.0, 1.0, 50.0),
            row(219.0, 1.0, 60.0),
        ];

        let mut engine = WatchEngine::new(rules.clone());
        let mut live_alerts = Vec::new();
        for r in &rows {
            live_alerts.extend(engine.push_epoch(*r));
        }
        let metrics = MetricSet::new();
        let (live_report, end_alerts) = engine.finish(&metrics, None);
        assert!(end_alerts.is_empty());
        assert_eq!(live_alerts.len(), 1);
        assert_eq!(live_alerts[0].0, 0);
        assert_eq!(live_alerts[0].1.hour, 146.0);

        let input = input_with(rows);
        assert_eq!(rules.evaluate(&input, None), live_report);
    }

    #[test]
    fn rate_rule_fires_on_fast_drop_only() {
        let rules = RuleSet {
            rules: vec![Rule {
                scope: Default::default(),
                name: "cap-drop".into(),
                kind: RuleKind::Rate {
                    field: EpochField::Capacity,
                    max_drop_per_epoch: 0.05,
                },
            }],
        };
        let slow = input_with(vec![
            row(73.0, 1.0, 0.0),
            row(146.0, 0.97, 0.0),
            row(219.0, 0.95, 0.0),
        ]);
        assert!(!rules.evaluate(&slow, None).any_fired());

        let fast = input_with(vec![row(73.0, 1.0, 0.0), row(146.0, 0.90, 0.0)]);
        let report = rules.evaluate(&fast, None);
        let alerts = report.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].hour, 146.0);
    }

    fn windowed(limit: f64, window: u32) -> RuleSet {
        RuleSet {
            rules: vec![Rule {
                scope: Default::default(),
                name: "sustained".into(),
                kind: RuleKind::Windowed {
                    field: EpochField::CorruptOps,
                    op: Cmp::Gt,
                    limit,
                    window,
                },
            }],
        }
    }

    #[test]
    fn windowed_needs_consecutive_violations() {
        // Violation, relief, violation, violation, violation: a window of
        // 3 must ignore the broken streak and fire at the fifth row.
        let rows = vec![
            row(73.0, 1.0, 50.0),
            row(146.0, 1.0, 5.0),
            row(219.0, 1.0, 50.0),
            row(292.0, 1.0, 60.0),
            row(365.0, 1.0, 70.0),
        ];
        let report = windowed(10.0, 3).evaluate(&input_with(rows.clone()), None);
        let alerts = report.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].hour, 365.0);
        assert_eq!(alerts[0].value, 70.0);
        assert!(alerts[0].message.contains("3 consecutive epochs"));

        // A window of 4 never completes on this series.
        assert!(!windowed(10.0, 4)
            .evaluate(&input_with(rows), None)
            .any_fired());
    }

    #[test]
    fn windowed_of_one_degrades_to_plain_threshold() {
        let rows = vec![row(73.0, 1.0, 5.0), row(146.0, 1.0, 50.0)];
        let report = windowed(10.0, 1).evaluate(&input_with(rows), None);
        let alerts = report.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].hour, 146.0);
    }

    #[test]
    fn windowed_engine_matches_offline_evaluation() {
        let rules = windowed(10.0, 2);
        let rows = vec![
            row(73.0, 1.0, 50.0),
            row(146.0, 1.0, 5.0),
            row(219.0, 1.0, 50.0),
            row(292.0, 1.0, 60.0),
            row(365.0, 1.0, 70.0),
        ];
        let mut engine = WatchEngine::new(rules.clone());
        let mut live = Vec::new();
        for r in &rows {
            live.extend(engine.push_epoch(*r));
        }
        let (live_report, end_alerts) = engine.finish(&MetricSet::new(), None);
        assert!(end_alerts.is_empty());
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].1.hour, 292.0);
        assert_eq!(rules.evaluate(&input_with(rows), None), live_report);
    }

    #[test]
    fn empty_series_reports_no_data_and_never_fires() {
        let input = WatchInput::default();
        let report = ops_threshold(0.0).evaluate(&input, None);
        assert!(!report.any_fired());
        assert_eq!(report.outcomes[0].status, RuleStatus::NoData);
    }

    #[test]
    fn single_epoch_series_evaluates() {
        let input = input_with(vec![row(73.0, 1.0, 42.0)]);
        // Threshold sees the one row...
        assert!(ops_threshold(10.0).evaluate(&input, None).any_fired());
        assert!(!ops_threshold(100.0).evaluate(&input, None).any_fired());
        // ...and a rate rule needs two rows, so it holds (Ok, not NoData —
        // there was a series, just no deltas).
        let rate = RuleSet {
            rules: vec![Rule {
                scope: Default::default(),
                name: "r".into(),
                kind: RuleKind::Rate {
                    field: EpochField::Capacity,
                    max_drop_per_epoch: 0.0,
                },
            }],
        };
        let report = rate.evaluate(&input, None);
        assert_eq!(report.outcomes[0].status, RuleStatus::Ok);
    }

    #[test]
    fn percentile_rule_no_data_without_histogram() {
        let rules = RuleSet {
            rules: vec![Rule {
                scope: Default::default(),
                name: "lat".into(),
                kind: RuleKind::Percentile {
                    histogram: "detect.latency_hours".into(),
                    q: 0.95,
                    op: Cmp::Ge,
                    limit: 100.0,
                },
            }],
        };
        let report = rules.evaluate(&WatchInput::default(), None);
        assert_eq!(report.outcomes[0].status, RuleStatus::NoData);
        assert!(!report.any_fired());
    }

    #[test]
    fn regression_without_baseline_reports_no_baseline() {
        let rules = RuleSet {
            rules: vec![Rule {
                scope: Default::default(),
                name: "reg".into(),
                kind: RuleKind::Regression {
                    source: Source::Counter("sim.corruptions".into()),
                    tolerance_frac: 0.25,
                },
            }],
        };
        let mut input = WatchInput::default();
        input.counters.insert("sim.corruptions".into(), 100.0);
        let report = rules.evaluate(&input, None);
        assert_eq!(report.outcomes[0].status, RuleStatus::NoBaseline);
        assert!(!report.any_fired());
        assert!(report.render().contains("no baseline"));
    }

    #[test]
    fn class_scoped_threshold_reads_the_class_series() {
        let mut input = input_with(vec![
            row(73.0, 1.0, 100.0),
            row(146.0, 1.0, 100.0),
            row(219.0, 1.0, 100.0),
        ]);
        input
            .class_epochs
            .insert("database".into(), vec![1.0, 50.0, 2.0]);
        let mut rules = ops_threshold(10.0);
        rules.rules[0].scope = RuleScope::Class("database".into());
        let report = rules.evaluate(&input, None);
        let alerts = report.alerts();
        // Fleet corrupt-ops are over the limit every epoch, but the class
        // series only crosses at the second row.
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].hour, 146.0);
        assert_eq!(alerts[0].value, 50.0);

        // A scope naming an unattributed class is no data, never fired.
        let mut rules = ops_threshold(10.0);
        rules.rules[0].scope = RuleScope::Class("nope".into());
        let report = rules.evaluate(&input, None);
        assert_eq!(report.outcomes[0].status, RuleStatus::NoData);
    }

    #[test]
    fn class_scoped_engine_matches_offline_evaluation() {
        let mut rules = windowed(10.0, 2);
        rules.rules[0].scope = RuleScope::Class("db".into());
        let rows = vec![
            row(73.0, 1.0, 0.0),
            row(146.0, 1.0, 0.0),
            row(219.0, 1.0, 0.0),
        ];
        let class_vals = [5.0, 50.0, 60.0];
        let mut engine = WatchEngine::new(rules.clone());
        let mut live = Vec::new();
        for (r, v) in rows.iter().zip(class_vals) {
            live.extend(engine.push_epoch_classed(*r, &[("db".to_string(), v)]));
        }
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].1.hour, 219.0);
        let (live_report, end_alerts) = engine.finish(&MetricSet::new(), None);
        assert!(end_alerts.is_empty());

        let mut input = input_with(rows);
        input.class_epochs.insert("db".into(), class_vals.to_vec());
        assert_eq!(rules.evaluate(&input, None), live_report);
    }

    #[test]
    fn class_scoped_counter_resolves_under_the_class_prefix() {
        let rules = RuleSet {
            rules: vec![Rule {
                scope: RuleScope::Class("db".into()),
                name: "db-total".into(),
                kind: RuleKind::Threshold {
                    source: Source::Counter("corrupt_ops_total".into()),
                    op: Cmp::Gt,
                    limit: 10.0,
                },
            }],
        };
        let mut input = WatchInput::default();
        // The fleet-wide name alone is not the class's metric.
        input.counters.insert("corrupt_ops_total".into(), 100.0);
        let report = rules.evaluate(&input, None);
        assert_eq!(report.outcomes[0].status, RuleStatus::NoData);
        input
            .counters
            .insert("class.db.corrupt_ops_total".into(), 42.0);
        let report = rules.evaluate(&input, None);
        let alerts = report.alerts();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].value, 42.0);
        assert!(alerts[0].message.contains("class.db.corrupt_ops_total"));
    }

    #[test]
    fn report_renders_fired_and_ok_lines() {
        let input = input_with(vec![row(73.0, 1.0, 50.0)]);
        let report = ops_threshold(10.0).evaluate(&input, None);
        let rendered = report.render();
        assert!(rendered.contains("1 rules, 1 fired"));
        assert!(rendered.contains("FIRED @h73"));
        assert!(rendered.contains("epoch_max:corrupt_ops = 50 > 10"));
    }
}
