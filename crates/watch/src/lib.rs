//! # mercurial-watch
//!
//! Trace-driven alerting for the mercurial laboratory — the always-on
//! monitor layer the paper's detection story assumes. Google's Fig. 1
//! "automatically detected" curve exists because monitors watch fleet
//! telemetry continuously; Dixit et al. describe the same loop at Meta:
//! scanners feed signals into alerting that pages when corruption rates
//! or detection latencies regress. This crate is that consumer for the
//! telemetry `mercurial-trace` produces.
//!
//! * [`rule`] — the serde rule grammar: thresholds, rate-of-change,
//!   histogram percentiles, and cross-run regressions;
//! * [`input`] — the [`input::WatchInput`] snapshot, built identically
//!   from a live run (`MetricSet` + `EpochSeries`) or an exported JSONL
//!   trace;
//! * [`eval`] — the single evaluator: [`rule::RuleSet::evaluate`]
//!   offline, [`eval::WatchEngine`] in-loop (same code path, same
//!   alerts);
//! * [`baseline`] — persisted known-good snapshots for regression rules.
//!
//! Zero-dependency beyond the workspace's own trace/metrics layers and
//! the vendored serde shims; deterministic by construction — alerts are a
//! pure function of (scenario, seed, rules), identical at any worker
//! count.
#![warn(missing_docs)]

pub mod baseline;
pub mod eval;
pub mod input;
pub mod promrules;
pub mod rule;

pub use baseline::Baseline;
pub use eval::{Alert, RuleOutcome, RuleStatus, WatchEngine, WatchReport};
pub use input::{EpochRow, HistoSummary, StreamIngest, WatchInput};
pub use rule::{Cmp, EpochField, Rule, RuleKind, RuleScope, RuleSet, Source};
