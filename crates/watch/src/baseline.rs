//! Persisted cross-run baselines for regression rules.
//!
//! A baseline is a snapshot of every regression-watched source's value
//! from a known-good run, keyed by [`crate::rule::Source::key`]. It is
//! recorded by `mercurial-lab watch --record-baseline`, committed next to
//! the BENCH files, and compared with a tolerance band on later runs —
//! the "BENCH trajectory with teeth".

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::input::WatchInput;
use crate::rule::{RuleKind, RuleSet};

/// A committed known-good snapshot of regression sources.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Baseline {
    /// Name of the scenario the baseline was recorded from.
    pub scenario: String,
    /// The seed the run used (baselines are only comparable at the same
    /// (scenario, seed) — the determinism contract makes the comparison
    /// exact, the tolerance band absorbs intended tuning drift).
    pub seed: u64,
    /// Source key → recorded value.
    pub values: BTreeMap<String, f64>,
}

impl Baseline {
    /// Record a baseline: snapshot every regression rule's source value
    /// from `input`. Sources with no data are skipped (a later comparison
    /// reports them as "no baseline" rather than firing).
    pub fn record(rules: &RuleSet, input: &WatchInput, scenario: &str, seed: u64) -> Baseline {
        let mut values = BTreeMap::new();
        for rule in &rules.rules {
            if let RuleKind::Regression { source, .. } = &rule.kind {
                if let Some(v) = input.source_value(source) {
                    values.insert(source.key(), v);
                }
            }
        }
        Baseline {
            scenario: scenario.to_string(),
            seed,
            values,
        }
    }

    /// Look up the recorded value for a source key.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.get(key).copied()
    }

    /// Serialize to pretty JSON (the `BASELINE_watch.json` format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("baseline serializes")
    }

    /// Parse a baseline file.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error message.
    pub fn from_json(json: &str) -> Result<Baseline, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Rule, Source};

    fn regression_rules() -> RuleSet {
        RuleSet {
            rules: vec![
                Rule {
                    scope: Default::default(),
                    name: "ops".into(),
                    kind: RuleKind::Regression {
                        source: Source::Counter("sim.corruptions".into()),
                        tolerance_frac: 0.25,
                    },
                },
                Rule {
                    scope: Default::default(),
                    name: "missing".into(),
                    kind: RuleKind::Regression {
                        source: Source::Counter("never.recorded".into()),
                        tolerance_frac: 0.25,
                    },
                },
            ],
        }
    }

    #[test]
    fn record_compare_roundtrip() {
        let mut input = WatchInput::default();
        input.counters.insert("sim.corruptions".into(), 1234.0);
        let base = Baseline::record(&regression_rules(), &input, "demo-5", 5);
        assert_eq!(base.get("counter:sim.corruptions"), Some(1234.0));
        // Sources with no data are skipped, not recorded as zero.
        assert_eq!(base.get("counter:never.recorded"), None);
        let back = Baseline::from_json(&base.to_json()).unwrap();
        assert_eq!(base, back);

        // Within the band: holds. Outside: fires.
        let rules = regression_rules();
        let mut same = input.clone();
        same.counters.insert("sim.corruptions".into(), 1300.0);
        let report = rules.evaluate(&same, Some(&base));
        assert!(!report.any_fired());

        let mut worse = input.clone();
        worse.counters.insert("sim.corruptions".into(), 2000.0);
        let report = rules.evaluate(&worse, Some(&base));
        assert_eq!(report.alerts().len(), 1);
        assert_eq!(report.alerts()[0].limit, 1234.0);
    }
}
