//! Export a [`RuleSet`] as Prometheus alerting-rules YAML.
//!
//! The exported file is a standard `groups:` rules file a real
//! Alertmanager-backed Prometheus can load, with metric names matching
//! the `mercurial_`-prefixed exposition the trace exporter serves (and
//! `mercurial-serve`'s status endpoint re-serves). The translation is
//! necessarily approximate where our evaluator is richer than PromQL
//! over a scrape series:
//!
//! * metric thresholds / percentiles translate directly;
//! * epoch aggregates (`EpochMax`/`EpochMin`/`EpochSum`) become
//!   `*_over_time` over a whole-run lookback window (`1y`);
//! * rate rules become an `offset` comparison against the previous
//!   epoch;
//! * windowed rules become a plain threshold with a `for:` clause of
//!   `window × epoch_hours` — the exact construct the rule kind models;
//! * regression rules need a cross-run baseline no scrape can provide,
//!   so they are emitted as comments rather than silently dropped.
//!
//! The output is deterministic (rule order, fixed formatting), which is
//! what the golden-file test pins.

use crate::rule::{EpochField, Rule, RuleKind, RuleScope, RuleSet, Source};

/// `mercurial_`-prefixed Prometheus metric name, matching the trace
/// exporter's sanitation (non-alphanumerics become `_`).
fn prom_metric(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("mercurial_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// A rule name sanitized into a valid Prometheus alertname
/// (`[a-zA-Z_][a-zA-Z0-9_]*`).
fn alert_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// The boundary gauge each epoch column is exported under.
fn epoch_field_metric(field: EpochField) -> &'static str {
    match field {
        EpochField::Capacity => "capacity.availability",
        EpochField::CapacityWithSafetask => "capacity.with_safetask",
        EpochField::CorruptOps => "epoch.corrupt_ops",
        EpochField::ActiveMercurial => "fleet.active_mercurial",
    }
}

/// Render a number the way the YAML pins it: trimmed integers, plain
/// floats otherwise.
fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render a duration in hours as a Prometheus duration literal: whole
/// hours as `Nh`, fractional hours as whole minutes `Nm`.
fn fmt_duration_hours(hours: f64) -> String {
    if hours <= 0.0 {
        return "0m".to_string();
    }
    if hours == hours.trunc() {
        format!("{}h", hours as u64)
    } else {
        format!("{}m", (hours * 60.0).round() as u64)
    }
}

/// The boundary gauge a scope reads an epoch column from: class scopes
/// read the class's `corrupt_ops` attribution gauge; every other column
/// is fleet-wide by construction.
fn scoped_epoch_metric(field: EpochField, scope: &RuleScope) -> String {
    match (scope, field) {
        (RuleScope::Class(_), EpochField::CorruptOps) => scope.metric_name("corrupt_ops"),
        _ => epoch_field_metric(field).to_string(),
    }
}

/// The PromQL expression for a scalar source, or `None` when the source
/// cannot be expressed over a scrape series.
fn source_expr(source: &Source, scope: &RuleScope) -> String {
    match source {
        Source::Counter(n) | Source::Gauge(n) => prom_metric(&scope.metric_name(n)),
        Source::Quantile { histogram, q } => {
            format!(
                "{}{{quantile=\"{}\"}}",
                prom_metric(&scope.metric_name(histogram)),
                q
            )
        }
        Source::EpochMax(f) => {
            format!(
                "max_over_time({}[1y])",
                prom_metric(&scoped_epoch_metric(*f, scope))
            )
        }
        Source::EpochMin(f) => {
            format!(
                "min_over_time({}[1y])",
                prom_metric(&scoped_epoch_metric(*f, scope))
            )
        }
        Source::EpochSum(f) => {
            format!(
                "sum_over_time({}[1y])",
                prom_metric(&scoped_epoch_metric(*f, scope))
            )
        }
    }
}

/// One rule's `expr` / `for` pair, or `None` for rules that cannot be
/// translated (regressions).
fn rule_expr(rule: &Rule, epoch_hours: f64) -> Option<(String, String)> {
    match &rule.kind {
        RuleKind::Threshold { source, op, limit } => Some((
            format!(
                "{} {} {}",
                source_expr(source, &rule.scope),
                op.symbol(),
                fmt_num(*limit)
            ),
            "0m".to_string(),
        )),
        RuleKind::Percentile {
            histogram,
            q,
            op,
            limit,
        } => {
            let source = Source::Quantile {
                histogram: histogram.clone(),
                q: *q,
            };
            Some((
                format!(
                    "{} {} {}",
                    source_expr(&source, &rule.scope),
                    op.symbol(),
                    fmt_num(*limit)
                ),
                "0m".to_string(),
            ))
        }
        RuleKind::Rate {
            field,
            max_drop_per_epoch,
        } => {
            let metric = prom_metric(&scoped_epoch_metric(*field, &rule.scope));
            let epoch = fmt_duration_hours(epoch_hours);
            Some((
                format!(
                    "({metric} offset {epoch}) - {metric} > {}",
                    fmt_num(*max_drop_per_epoch)
                ),
                "0m".to_string(),
            ))
        }
        RuleKind::Windowed {
            field,
            op,
            limit,
            window,
        } => Some((
            format!(
                "{} {} {}",
                prom_metric(&scoped_epoch_metric(*field, &rule.scope)),
                op.symbol(),
                fmt_num(*limit)
            ),
            fmt_duration_hours(epoch_hours * *window as f64),
        )),
        RuleKind::Regression { .. } => None,
    }
}

/// Severity label: capacity-affecting conditions page, the rest warn.
fn severity(rule: &Rule) -> &'static str {
    let field_pages =
        |f: &EpochField| matches!(f, EpochField::Capacity | EpochField::CapacityWithSafetask);
    match &rule.kind {
        RuleKind::Rate { field, .. } | RuleKind::Windowed { field, .. } if field_pages(field) => {
            "page"
        }
        RuleKind::Threshold {
            source: Source::EpochMax(f) | Source::EpochMin(f) | Source::EpochSum(f),
            ..
        } if field_pages(f) => "page",
        _ => "warning",
    }
}

impl RuleSet {
    /// Render the set as a Prometheus alerting-rules YAML file: one
    /// group named `group`, one alert per translatable rule (in rule
    /// order), regressions as comments. `epoch_hours` sizes the
    /// windowed rules' `for:` clauses and the rate rules' `offset`.
    pub fn to_prometheus_rules(&self, group: &str, epoch_hours: f64) -> String {
        let mut out = String::new();
        out.push_str("# Prometheus alerting rules generated by mercurial-watch.\n");
        out.push_str(&format!(
            "# Epoch length: {}. Epoch aggregates use a whole-run (1y) lookback.\n",
            fmt_duration_hours(epoch_hours)
        ));
        out.push_str("groups:\n");
        out.push_str(&format!("- name: {}\n", alert_name(group)));
        out.push_str("  rules:\n");
        for rule in &self.rules {
            match rule_expr(rule, epoch_hours) {
                Some((expr, for_clause)) => {
                    out.push_str(&format!("  - alert: {}\n", alert_name(&rule.name)));
                    out.push_str(&format!("    expr: {expr}\n"));
                    out.push_str(&format!("    for: {for_clause}\n"));
                    out.push_str("    labels:\n");
                    out.push_str(&format!("      severity: {}\n", severity(rule)));
                    out.push_str(&format!("      scope: {}\n", rule.scope.label()));
                    out.push_str("    annotations:\n");
                    out.push_str(&format!(
                        "      summary: mercurial-watch rule `{}` violated\n",
                        rule.name
                    ));
                }
                None => {
                    out.push_str(&format!(
                        "  # rule `{}` needs a cross-run baseline; \
                         not expressible as a scrape-time alert\n",
                        rule.name
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Cmp;

    #[test]
    fn metric_and_alert_names_sanitize() {
        assert_eq!(
            prom_metric("detect.latency_hours"),
            "mercurial_detect_latency_hours"
        );
        assert_eq!(alert_name("cap-drop"), "cap_drop");
        assert_eq!(alert_name("9lives"), "_9lives");
        assert_eq!(alert_name(""), "_");
    }

    #[test]
    fn durations_render_as_prometheus_literals() {
        assert_eq!(fmt_duration_hours(73.0), "73h");
        assert_eq!(fmt_duration_hours(0.5), "30m");
        assert_eq!(fmt_duration_hours(219.0), "219h");
        assert_eq!(fmt_duration_hours(0.0), "0m");
    }

    #[test]
    fn windowed_rules_become_for_clauses() {
        let set = RuleSet {
            rules: vec![Rule {
                scope: Default::default(),
                name: "sustained-ops".into(),
                kind: RuleKind::Windowed {
                    field: EpochField::CorruptOps,
                    op: Cmp::Gt,
                    limit: 25.0,
                    window: 3,
                },
            }],
        };
        let yaml = set.to_prometheus_rules("mercurial", 73.0);
        assert!(yaml.contains("expr: mercurial_epoch_corrupt_ops > 25\n"));
        assert!(yaml.contains("for: 219h\n"));
    }

    #[test]
    fn class_scope_prefixes_metrics_and_labels() {
        let set = RuleSet {
            rules: vec![
                Rule {
                    scope: RuleScope::Class("database".into()),
                    name: "db-ops".into(),
                    kind: RuleKind::Windowed {
                        field: EpochField::CorruptOps,
                        op: Cmp::Gt,
                        limit: 10.0,
                        window: 2,
                    },
                },
                Rule {
                    scope: RuleScope::Class("database".into()),
                    name: "db-total".into(),
                    kind: RuleKind::Threshold {
                        source: Source::Counter("corrupt_ops_total".into()),
                        op: Cmp::Gt,
                        limit: 100.0,
                    },
                },
            ],
        };
        let yaml = set.to_prometheus_rules("g", 73.0);
        assert!(yaml.contains("expr: mercurial_class_database_corrupt_ops > 10\n"));
        assert!(yaml.contains("expr: mercurial_class_database_corrupt_ops_total > 100\n"));
        assert!(yaml.contains("      scope: database\n"));
        // Fleet-wide rules carry the default label.
        let fleet = RuleSet {
            rules: vec![Rule {
                scope: Default::default(),
                name: "ops".into(),
                kind: RuleKind::Threshold {
                    source: Source::EpochMax(EpochField::CorruptOps),
                    op: Cmp::Gt,
                    limit: 1.0,
                },
            }],
        };
        assert!(fleet
            .to_prometheus_rules("g", 73.0)
            .contains("      scope: fleet\n"));
    }

    #[test]
    fn regressions_are_commented_not_dropped() {
        let set = RuleSet {
            rules: vec![Rule {
                scope: Default::default(),
                name: "base".into(),
                kind: RuleKind::Regression {
                    source: Source::Counter("sim.corruptions".into()),
                    tolerance_frac: 0.25,
                },
            }],
        };
        let yaml = set.to_prometheus_rules("g", 73.0);
        assert!(yaml.contains("# rule `base`"));
        assert!(!yaml.contains("- alert: base"));
    }
}
