//! Ground truth: which cores *really were* mercurial, and since when.
//!
//! Derived from the `gt.onset` instants the driver records before the
//! first epoch — one per ground-truth mercurial core, stamped with the
//! hour its earliest lesion activates. Deriving truth from the same
//! ledger in both the in-loop and replay paths keeps attribution
//! identical between them; an optional annotation map (fault-profile
//! names, available only in-run) enriches case files without entering the
//! parity-checked byte stream.

use crate::ledger::{Decision, DecisionLedger};
use std::collections::BTreeMap;

/// The ground-truth lesion record the scorer joins decisions against.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    /// Packed `CoreUid` → earliest lesion onset hour.
    onsets: BTreeMap<u64, f64>,
    /// Packed `CoreUid` → fault-profile annotation (in-run enrichment
    /// only; absent on replay).
    labels: BTreeMap<u64, String>,
}

impl GroundTruth {
    /// Extract the lesion record from a ledger's `onset` entries.
    pub fn from_ledger(ledger: &DecisionLedger) -> GroundTruth {
        let mut truth = GroundTruth::default();
        for e in &ledger.entries {
            if e.decision == Decision::Onset {
                if let Some(core) = e.core {
                    let slot = truth.onsets.entry(core).or_insert(e.hour);
                    *slot = slot.min(e.hour);
                }
            }
        }
        truth
    }

    /// Attach a fault-profile annotation to a core (shown in case files).
    pub fn annotate(&mut self, core: u64, label: impl Into<String>) {
        self.labels.insert(core, label.into());
    }

    /// The annotation for a core, if any.
    pub fn label(&self, core: u64) -> Option<&str> {
        self.labels.get(&core).map(String::as_str)
    }

    /// Whether the core is ground-truth mercurial.
    pub fn is_mercurial(&self, core: u64) -> bool {
        self.onsets.contains_key(&core)
    }

    /// Earliest lesion onset hour for a mercurial core.
    pub fn onset_of(&self, core: u64) -> Option<f64> {
        self.onsets.get(&core).copied()
    }

    /// Number of ground-truth mercurial cores.
    pub fn count(&self) -> usize {
        self.onsets.len()
    }

    /// All mercurial cores with their onset hours, in core order.
    pub fn cores(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.onsets.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::LedgerEntry;

    fn onset(hour: f64, core: u64) -> LedgerEntry {
        LedgerEntry {
            hour,
            decision: Decision::Onset,
            core: Some(core),
            value: 0.0,
        }
    }

    #[test]
    fn truth_collects_earliest_onsets() {
        let ledger = DecisionLedger {
            entries: vec![
                onset(100.0, 7),
                onset(50.0, 7), // duplicate: earliest wins
                onset(200.0, 9),
                LedgerEntry {
                    hour: 10.0,
                    decision: Decision::Quarantine,
                    core: Some(3),
                    value: 0.0,
                },
            ],
            ..DecisionLedger::default()
        };
        let mut truth = GroundTruth::from_ledger(&ledger);
        assert_eq!(truth.count(), 2);
        assert!(truth.is_mercurial(7));
        assert!(!truth.is_mercurial(3));
        assert_eq!(truth.onset_of(7), Some(50.0));
        assert_eq!(truth.onset_of(9), Some(200.0));
        assert_eq!(truth.label(7), None);
        truth.annotate(7, "mercurial-fma");
        assert_eq!(truth.label(7), Some("mercurial-fma"));
    }
}
