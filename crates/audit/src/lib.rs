//! # mercurial-audit
//!
//! Decision provenance for the mercurial laboratory: who did what to
//! which core, and was it right?
//!
//! §5 of *Cores that don't count* is a confession: "we have no way of
//! knowing the extent of the problem" — the fleet's operational decisions
//! (quarantines, exonerations, pages) are made against noisy evidence and
//! never systematically reconciled with ground truth. The laboratory
//! *has* ground truth, so this crate closes the loop the paper cannot:
//!
//! * [`DecisionLedger`] — every operational decision the closed loop
//!   makes (signal ingest, suspect flag, quarantine, deep-check verdict,
//!   exoneration, confirmation, watch-rule firing, mitigation
//!   escalation), derived from the trace event stream identically in-loop
//!   and from exported JSONL, hence byte-for-byte replayable;
//! * [`GroundTruth`] — the lesion record (which cores really were
//!   mercurial, and since when), joined from the driver's `gt.onset`
//!   instants;
//! * [`AuditReport`] — the attribution scorer: TP/FP/FN per core,
//!   time-to-root-cause percentiles, the exoneration-error audit (the
//!   paper's "test escape" months-long failure mode), and per-signal-kind
//!   / per-watch-rule precision and recall, rendered as a fleet
//!   postmortem;
//! * [`CaseBook`] — per-core case files: the causally ordered evidence
//!   chain behind each verdict, fullest cases first, in ASCII or JSONL.
//!
//! Like tracing and watch, auditing is off by default and costs nothing
//! when disabled; enabling it forces tracing on (the ledger is a view of
//! the trace) and adds only the per-signal provenance instants.
#![warn(missing_docs)]

pub mod cases;
pub mod ledger;
pub mod score;
pub mod truth;

pub use cases::{CaseBook, CaseEvent, CaseFile};
pub use ledger::{
    signal_kind_name, Decision, DecisionLedger, LedgerEntry, ALL_DECISIONS, SIGNAL_KIND_NAMES,
};
pub use score::{AuditReport, CaseLabel, CoreVerdict, KindStats, RuleStats};
pub use truth::GroundTruth;
