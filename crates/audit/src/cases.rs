//! Per-core case files: the causally ordered evidence chain behind every
//! attribution verdict.
//!
//! A case file is the audit's answer to "why did the loop do that to this
//! core?" — onset, every signal (with kind), suspect/quarantine/verdict
//! decisions, exonerations and restores, in chronological order. The
//! ordering and stage vocabulary deliberately reuse the incident-timeline
//! machinery ([`mercurial_trace::stage_label`], stable hour sort, fullest
//! cases first) so the case book reads like a zoomed-in timeline.

use crate::ledger::{signal_kind_name, Decision, DecisionLedger};
use crate::score::CaseLabel;
use crate::truth::GroundTruth;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One step in a case's evidence chain.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseEvent {
    /// Simulation hour.
    pub hour: f64,
    /// Stage label, timeline vocabulary (`signal(machine-check)`,
    /// `quarantine`, `detect(triage)`, …).
    pub stage: String,
}

/// The case file for one core.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseFile {
    /// Packed `CoreUid`.
    pub core: u64,
    /// Attribution verdict.
    pub label: CaseLabel,
    /// Fault-profile annotation (in-run runs only).
    pub annotation: Option<String>,
    /// Evidence chain in causal order (stable hour sort; emission order
    /// breaks ties, so same-hour suspect → quarantine reads correctly).
    pub chain: Vec<CaseEvent>,
}

/// The ordered book of case files.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CaseBook {
    /// Cases, fullest first (chain length descending, then first-event
    /// hour, then core id — the timeline's ordering).
    pub cases: Vec<CaseFile>,
    /// Verdict cores dropped by the `max_cases` cap.
    pub truncated: usize,
}

/// Minimal JSON string escape for stage labels and annotations.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl CaseBook {
    /// Build the case book: one case per attribution-verdict core
    /// (mercurial cores and quarantined healthy cores), capped at
    /// `max_cases` fullest cases.
    pub fn build(ledger: &DecisionLedger, truth: &GroundTruth, max_cases: usize) -> CaseBook {
        // Core → evidence chain, in emission order.
        let mut chains: BTreeMap<u64, Vec<CaseEvent>> = BTreeMap::new();
        let mut quarantined: std::collections::BTreeSet<u64> = Default::default();
        let mut has_provenance: std::collections::BTreeSet<u64> = Default::default();
        for e in &ledger.entries {
            let Some(core) = e.core else { continue };
            if e.decision == Decision::Signal {
                has_provenance.insert(core);
            }
            if e.decision == Decision::Quarantine {
                quarantined.insert(core);
            }
        }
        for e in &ledger.entries {
            let Some(core) = e.core else { continue };
            let stage = match e.decision {
                Decision::Signal => format!("signal({})", signal_kind_name(e.value)),
                // `first-signal` duplicates the first provenance instant;
                // only keep it when the run was audited without provenance
                // (plain traced run replayed offline).
                Decision::FirstSignal if has_provenance.contains(&core) => continue,
                d => d.stage().to_string(),
            };
            chains.entry(core).or_default().push(CaseEvent {
                hour: e.hour,
                stage,
            });
        }
        for chain in chains.values_mut() {
            chain.sort_by(|a, b| a.hour.partial_cmp(&b.hour).expect("finite sim hours"));
        }

        let mut cases: Vec<CaseFile> = Vec::new();
        for (core, chain) in chains {
            let label = match (truth.is_mercurial(core), quarantined.contains(&core)) {
                (true, true) => CaseLabel::TruePositive,
                (true, false) => CaseLabel::FalseNegative,
                (false, true) => CaseLabel::FalsePositive,
                (false, false) => continue, // signal-only noise core
            };
            cases.push(CaseFile {
                core,
                label,
                annotation: truth.label(core).map(str::to_string),
                chain,
            });
        }
        cases.sort_by(|a, b| {
            let ha = a.chain.first().map(|e| e.hour).unwrap_or(0.0);
            let hb = b.chain.first().map(|e| e.hour).unwrap_or(0.0);
            b.chain
                .len()
                .cmp(&a.chain.len())
                .then(ha.partial_cmp(&hb).expect("finite sim hours"))
                .then(a.core.cmp(&b.core))
        });
        let truncated = cases.len().saturating_sub(max_cases);
        cases.truncate(max_cases);
        CaseBook { cases, truncated }
    }

    /// Render the ASCII case book. `label` maps a packed `CoreUid` to a
    /// display string (`mercurial-fault`'s `Display` gives `m{}s{}c{}`).
    pub fn render(&self, label: &dyn Fn(u64) -> String) -> String {
        let mut out = String::new();
        if self.cases.is_empty() {
            out.push_str("case files: no attribution verdicts recorded\n");
            return out;
        }
        let _ = writeln!(
            out,
            "# case files ({} cases, fullest first)",
            self.cases.len()
        );
        for case in &self.cases {
            let _ = write!(out, "\n## {} [{}]", label(case.core), case.label.tag());
            if let Some(profile) = &case.annotation {
                let _ = write!(out, " (profile: {profile})");
            }
            out.push('\n');
            let steps: Vec<String> = case
                .chain
                .iter()
                .map(|e| format!("{}@h{:.0}", e.stage, e.hour))
                .collect();
            let _ = writeln!(out, "  {}", steps.join(" -> "));
        }
        if self.truncated > 0 {
            let _ = writeln!(out, "\n... and {} more cases (truncated)", self.truncated);
        }
        out
    }

    /// JSONL export: one case per line,
    /// `{"core":<u64>,"label":"TP|FP|FN"[,"profile":"…"],"chain":[{"h":<hour>,"s":"<stage>"},…]}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for case in &self.cases {
            let _ = write!(
                out,
                "{{\"core\":{},\"label\":\"{}\"",
                case.core,
                case.label.tag()
            );
            if let Some(profile) = &case.annotation {
                let _ = write!(out, ",\"profile\":\"{}\"", json_escape(profile));
            }
            out.push_str(",\"chain\":[");
            for (i, e) in case.chain.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"h\":{},\"s\":\"{}\"}}",
                    fmt_num(e.hour),
                    json_escape(&e.stage)
                );
            }
            out.push_str("]}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::LedgerEntry;

    fn entry(hour: f64, decision: Decision, core: u64, value: f64) -> LedgerEntry {
        LedgerEntry {
            hour,
            decision,
            core: Some(core),
            value,
        }
    }

    fn sample() -> (DecisionLedger, GroundTruth) {
        let entries = vec![
            entry(10.0, Decision::Onset, 7, 0.0),
            // Batch ingest can emit a later signal first: the chain must
            // still read chronologically.
            entry(60.0, Decision::Signal, 7, 3.0),
            entry(50.0, Decision::Signal, 7, 1.0),
            entry(50.0, Decision::FirstSignal, 7, 0.0), // elided (provenance present)
            entry(90.0, Decision::Suspect, 7, 0.0),
            entry(90.0, Decision::Quarantine, 7, 0.0),
            entry(120.0, Decision::DeepCheck, 7, 0.0),
            entry(120.0, Decision::Confirm, 7, 0.0),
            // Healthy core 3, quarantined then exonerated: FP case.
            entry(55.0, Decision::FirstSignal, 3, 0.0), // kept (no provenance)
            entry(75.0, Decision::Quarantine, 3, 0.0),
            entry(95.0, Decision::Exonerate, 3, 0.0),
            // Mercurial core 9 never touched: FN case with onset only.
            entry(20.0, Decision::Onset, 9, 0.0),
            // Healthy noise core 4: signal only, no case.
            entry(40.0, Decision::Signal, 4, 2.0),
        ];
        let ledger = DecisionLedger {
            entries,
            gt_count: 2,
            ..DecisionLedger::default()
        };
        let truth = GroundTruth::from_ledger(&ledger);
        (ledger, truth)
    }

    #[test]
    fn case_book_orders_and_labels() {
        let (ledger, mut truth) = sample();
        truth.annotate(7, "mercurial-fma");
        let book = CaseBook::build(&ledger, &truth, 40);
        assert_eq!(book.cases.len(), 3);
        assert_eq!(book.truncated, 0);
        // Fullest first: core 7 (7 steps) > core 3 (3) > core 9 (1).
        assert_eq!(book.cases[0].core, 7);
        assert_eq!(book.cases[0].label, CaseLabel::TruePositive);
        assert_eq!(book.cases[1].core, 3);
        assert_eq!(book.cases[1].label, CaseLabel::FalsePositive);
        assert_eq!(book.cases[2].core, 9);
        assert_eq!(book.cases[2].label, CaseLabel::FalseNegative);
        // Chronological chain despite out-of-order emission, with kinds
        // decoded and first-signal elided.
        let stages: Vec<&str> = book.cases[0]
            .chain
            .iter()
            .map(|e| e.stage.as_str())
            .collect();
        assert_eq!(
            stages,
            vec![
                "onset",
                "signal(process-crash)",
                "signal(machine-check)",
                "suspect",
                "quarantine",
                "detect(triage)",
                "confirm",
            ]
        );
        let rendered = book.render(&|id| format!("c{id}"));
        assert!(rendered.contains("## c7 [TP] (profile: mercurial-fma)"));
        assert!(rendered.contains("onset@h10 -> signal(process-crash)@h50"));
        assert!(rendered.contains("## c9 [FN]"));
        // Noise core 4 files no case.
        assert!(!rendered.contains("c4"));
    }

    #[test]
    fn chain_elides_duplicate_first_signal() {
        // Core 7's chain is 7 steps once first-signal is elided from its
        // 8 raw core-tagged entries.
        let (ledger, truth) = sample();
        let book = CaseBook::build(&ledger, &truth, 40);
        assert_eq!(book.cases[0].chain.len(), 7);
    }

    #[test]
    fn cap_truncates_smallest_cases() {
        let (ledger, truth) = sample();
        let book = CaseBook::build(&ledger, &truth, 1);
        assert_eq!(book.cases.len(), 1);
        assert_eq!(book.cases[0].core, 7);
        assert_eq!(book.truncated, 2);
        assert!(book
            .render(&|id| format!("c{id}"))
            .contains("and 2 more cases (truncated)"));
    }

    #[test]
    fn jsonl_is_stable_and_escaped() {
        let (ledger, mut truth) = sample();
        truth.annotate(9, "odd\"name");
        let book = CaseBook::build(&ledger, &truth, 40);
        let jsonl = book.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"core\":7,\"label\":\"TP\""));
        assert!(jsonl.contains("{\"h\":10,\"s\":\"onset\"}"));
        assert!(jsonl.contains("\"profile\":\"odd\\\"name\""));
        // Every line parses back as JSON.
        for line in jsonl.lines() {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("core").is_some());
        }
    }

    #[test]
    fn empty_book_renders_placeholder() {
        let book = CaseBook::build(&DecisionLedger::default(), &GroundTruth::default(), 40);
        assert!(book
            .render(&|id| format!("c{id}"))
            .contains("no attribution verdicts"));
    }
}
