//! The decision ledger: every operational decision, in time order.
//!
//! The ledger is *derived from the trace*, never recorded independently:
//! one filter over the instant-event stream picks out the decision
//! vocabulary (ground-truth onsets, signal ingests, suspect flags,
//! quarantines, deep-check verdicts, exonerations, restores, retirements,
//! watch-rule firings, mitigation escalations). Because the in-loop path
//! scans the buffered [`Trace`] and the replay path parses the exported
//! JSONL of that same trace — and the JSONL number format is exact
//! shortest-roundtrip — the two ledgers are byte-for-byte identical by
//! construction, at any worker count.

use mercurial_trace::{EventKind, Trace, TraceEvent};
use serde::Deserialize as _;
use std::fmt::Write as _;

/// Canonical names of the eight fleet signal kinds, indexed by the
/// scoreboard's dense kind index (the payload of a `score.signal`
/// instant). Order must match `mercurial_fleet::SignalKind` /
/// `mercurial_screening`'s `kind_index`.
pub const SIGNAL_KIND_NAMES: [&str; 8] = [
    "app-checksum-mismatch",
    "process-crash",
    "kernel-crash",
    "machine-check",
    "sanitizer-hit",
    "replica-divergence",
    "user-report",
    "screener-failure",
];

/// Decode a `score.signal` payload into a kind name; out-of-table values
/// (a forward-compatibility guard, not an expected case) render as
/// `kind-<n>`.
pub fn signal_kind_name(value: f64) -> String {
    let ix = value as usize;
    if ix < SIGNAL_KIND_NAMES.len() && (value - ix as f64).abs() < f64::EPSILON {
        SIGNAL_KIND_NAMES[ix].to_string()
    } else {
        format!("kind-{value}")
    }
}

/// One kind of operational decision the closed loop makes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Decision {
    /// Ground-truth lesion onset (not a decision — the thing decisions are
    /// scored against; kept in the ledger so case files show cause before
    /// effect).
    Onset,
    /// A signal was ingested by the scoreboard (value = dense kind index).
    Signal,
    /// First signal ever attributed to a core.
    FirstSignal,
    /// The core crossed the recidivism predicate (value = suspicion).
    Recidivist,
    /// The registry flagged the core suspect.
    Suspect,
    /// The core was pulled from service.
    Quarantine,
    /// A deep check / screen reproduced the defect.
    Confirm,
    /// A deep check found nothing; the core was cleared.
    Exonerate,
    /// The core was returned to the schedulable pool.
    Restore,
    /// The core was permanently removed.
    Retire,
    /// A deep-check verdict was delivered (the triage instant).
    DeepCheck,
    /// A watch rule fired (value = rule index in the scenario rule set).
    Alert,
    /// Per-class mitigation escalated (value = workload-class index).
    Escalate,
}

/// Every decision kind, in ledger-report order.
pub const ALL_DECISIONS: [Decision; 13] = [
    Decision::Onset,
    Decision::Signal,
    Decision::FirstSignal,
    Decision::Recidivist,
    Decision::Suspect,
    Decision::Quarantine,
    Decision::Confirm,
    Decision::Exonerate,
    Decision::Restore,
    Decision::Retire,
    Decision::DeepCheck,
    Decision::Alert,
    Decision::Escalate,
];

impl Decision {
    /// The trace event name this decision is derived from.
    pub fn event_name(self) -> &'static str {
        match self {
            Decision::Onset => "gt.onset",
            Decision::Signal => "score.signal",
            Decision::FirstSignal => "score.first_signal",
            Decision::Recidivist => "score.recidivist",
            Decision::Suspect => "core.suspect",
            Decision::Quarantine => "core.quarantine",
            Decision::Confirm => "core.confirm",
            Decision::Exonerate => "core.exonerate",
            Decision::Restore => "core.restore",
            Decision::Retire => "core.retire",
            Decision::DeepCheck => "detect.triage",
            Decision::Alert => "alert.fired",
            Decision::Escalate => "mitigation.escalated",
        }
    }

    /// The inverse of [`Decision::event_name`] — the ledger's event filter.
    pub fn from_event_name(name: &str) -> Option<Decision> {
        Some(match name {
            "gt.onset" => Decision::Onset,
            "score.signal" => Decision::Signal,
            "score.first_signal" => Decision::FirstSignal,
            "score.recidivist" => Decision::Recidivist,
            "core.suspect" => Decision::Suspect,
            "core.quarantine" => Decision::Quarantine,
            "core.confirm" => Decision::Confirm,
            "core.exonerate" => Decision::Exonerate,
            "core.restore" => Decision::Restore,
            "core.retire" => Decision::Retire,
            "detect.triage" => Decision::DeepCheck,
            "alert.fired" => Decision::Alert,
            "mitigation.escalated" => Decision::Escalate,
            _ => return None,
        })
    }

    /// Short stable token used in ledger JSONL lines.
    pub fn code(self) -> &'static str {
        match self {
            Decision::Onset => "onset",
            Decision::Signal => "signal",
            Decision::FirstSignal => "first-signal",
            Decision::Recidivist => "recidivist",
            Decision::Suspect => "suspect",
            Decision::Quarantine => "quarantine",
            Decision::Confirm => "confirm",
            Decision::Exonerate => "exonerate",
            Decision::Restore => "restore",
            Decision::Retire => "retire",
            Decision::DeepCheck => "deep-check",
            Decision::Alert => "alert",
            Decision::Escalate => "escalate",
        }
    }

    /// Human stage label for case-file chains: the incident-timeline
    /// vocabulary ([`mercurial_trace::stage_label`]) where it applies, the
    /// ledger code otherwise — so case files and `mercurial-lab trace`
    /// timelines describe the same life with the same words.
    pub fn stage(self) -> &'static str {
        mercurial_trace::stage_label(self.event_name()).unwrap_or_else(|| self.code())
    }
}

/// One appended ledger record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerEntry {
    /// Simulation hour of the decision.
    pub hour: f64,
    /// What was decided.
    pub decision: Decision,
    /// Packed `CoreUid` when the decision concerns one core (alerts and
    /// escalations are fleet-level).
    pub core: Option<u64>,
    /// Decision payload: kind index for [`Decision::Signal`], suspicion
    /// for [`Decision::Recidivist`], rule index for [`Decision::Alert`],
    /// class index for [`Decision::Escalate`]; 0.0 otherwise.
    pub value: f64,
}

/// The append-only decision ledger plus the two ground-truth-adjacent
/// series the scorer needs: the `fleet.active_mercurial` gauge (for
/// alert-justification) and the `gt.mercurial_cores` counter (for
/// conservation checks).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DecisionLedger {
    /// Decisions in simulation-time order: stable-sorted by hour, trace
    /// emission order breaking ties. Emission order alone is not canonical
    /// — a sharded fleet emits per-shard time-ordered streams whose
    /// concatenation depends on the worker count — but the time-sorted
    /// ledger is identical at any sharding because same-hour decisions are
    /// always produced by the (deterministic) aggregator in one order.
    pub entries: Vec<LedgerEntry>,
    /// `(hour, value)` samples of the `fleet.active_mercurial` gauge, in
    /// emission order.
    pub active_mercurial: Vec<(f64, f64)>,
    /// Final `gt.mercurial_cores` counter (0 when ground truth was not
    /// recorded, e.g. tracing off).
    pub gt_count: u64,
}

/// `format!("{v}")` for finite floats — the same exact shortest-roundtrip
/// formatting the trace JSONL exporter uses, which is what makes
/// replayed-and-re-exported ledgers byte-identical to in-loop ones.
fn fmt_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

impl DecisionLedger {
    /// Build the ledger from a buffered in-loop trace.
    pub fn from_trace(trace: &Trace) -> DecisionLedger {
        let mut ledger = DecisionLedger {
            gt_count: trace.metrics.counter("gt.mercurial_cores"),
            ..DecisionLedger::default()
        };
        for e in &trace.events {
            ledger.ingest_event(e);
        }
        ledger.canonicalize();
        ledger
    }

    /// Time-order the ledger (stable, so per-core causal chains — which
    /// always carry non-decreasing hours — keep their emission order on
    /// ties). Both construction paths end here, and `to_jsonl` output is
    /// already canonical, so re-parsing is a no-op sort.
    fn canonicalize(&mut self) {
        self.entries.sort_by(|a, b| a.hour.total_cmp(&b.hour));
        self.active_mercurial.sort_by(|a, b| a.0.total_cmp(&b.0));
    }

    fn ingest_event(&mut self, e: &TraceEvent) {
        match e.kind {
            EventKind::Instant => {
                if let Some(decision) = Decision::from_event_name(e.name) {
                    self.entries.push(LedgerEntry {
                        hour: e.hour,
                        decision,
                        core: e.core,
                        value: e.value,
                    });
                }
            }
            EventKind::Gauge if e.name == "fleet.active_mercurial" => {
                self.active_mercurial.push((e.hour, e.value));
            }
            _ => {}
        }
    }

    /// Rebuild the ledger offline from an exported trace JSONL file — the
    /// replay path of `mercurial-lab audit --trace`. Accepts the full
    /// export (event lines then metric lines); unknown lines are skipped,
    /// malformed lines are errors.
    ///
    /// # Errors
    ///
    /// Reports the first malformed line, 1-indexed.
    pub fn from_trace_jsonl(text: &str) -> Result<DecisionLedger, String> {
        let mut ledger = DecisionLedger::default();
        for (ix, line) in text.lines().enumerate() {
            let idx = ix + 1;
            if line.trim().is_empty() {
                continue;
            }
            let v: serde::Value =
                serde_json::from_str(line).map_err(|e| format!("line {idx}: {e}"))?;
            let num =
                |key: &str| -> Option<f64> { v.get(key).and_then(|x| f64::from_value(x).ok()) };
            let name = v
                .get("n")
                .and_then(|n| n.as_str())
                .ok_or_else(|| format!("line {idx}: missing \"n\""))?;
            if let Some(metric) = v.get("metric").and_then(|m| m.as_str()) {
                if metric == "counter" && name == "gt.mercurial_cores" {
                    let count = num("v").ok_or_else(|| format!("line {idx}: missing \"v\""))?;
                    ledger.gt_count = count as u64;
                }
                continue;
            }
            let kind = v.get("k").and_then(|k| k.as_str());
            let hour = num("h").ok_or_else(|| format!("line {idx}: missing \"h\""))?;
            match kind {
                Some("I") => {
                    if let Some(decision) = Decision::from_event_name(name) {
                        let core = v
                            .get("core")
                            .map(|c| {
                                u64::from_value(c)
                                    .map_err(|e| format!("line {idx}: bad \"core\": {e}"))
                            })
                            .transpose()?;
                        ledger.entries.push(LedgerEntry {
                            hour,
                            decision,
                            core,
                            // Instants omit "v" when the payload is 0.0.
                            value: num("v").unwrap_or(0.0),
                        });
                    }
                }
                Some("G") if name == "fleet.active_mercurial" => {
                    let value = num("v").ok_or_else(|| format!("line {idx}: missing \"v\""))?;
                    ledger.active_mercurial.push((hour, value));
                }
                _ => {}
            }
        }
        ledger.canonicalize();
        Ok(ledger)
    }

    /// Canonical ledger JSONL — one decision per line:
    /// `{"h":<hour>,"d":"<code>"[,"core":<u64>][,"v":<value>]}` ("v"
    /// omitted when 0.0). This is the byte string the replay-parity
    /// acceptance check compares.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let _ = write!(
                out,
                "{{\"h\":{},\"d\":\"{}\"",
                fmt_num(e.hour),
                e.decision.code()
            );
            if let Some(core) = e.core {
                let _ = write!(out, ",\"core\":{core}");
            }
            if e.value != 0.0 {
                let _ = write!(out, ",\"v\":{}", fmt_num(e.value));
            }
            out.push_str("}\n");
        }
        out
    }

    /// Number of ledger entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no decision was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count of one decision kind.
    pub fn count_of(&self, decision: Decision) -> usize {
        self.entries
            .iter()
            .filter(|e| e.decision == decision)
            .count()
    }

    /// Latest `fleet.active_mercurial` sample at or before `hour`, or 0
    /// before the first sample — "did the fleet still harbor known
    /// mercurial cores when this alert fired?".
    pub fn active_mercurial_at(&self, hour: f64) -> f64 {
        self.active_mercurial
            .iter()
            .take_while(|(h, _)| *h <= hour)
            .last()
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_trace::{Recorder, TraceFlags};

    fn sample_trace() -> Trace {
        let mut r = Recorder::with_flags(TraceFlags::enabled());
        r.instant(10.0, "gt.onset", Some(7), 0.0);
        r.counter_add("gt.mercurial_cores", 1);
        r.instant(50.0, "score.signal", Some(7), 3.0);
        r.instant(50.0, "score.first_signal", Some(7), 0.0);
        r.instant(60.0, "score.signal", Some(7), 0.0);
        r.instant(60.0, "score.recidivist", Some(7), 0.25);
        r.instant(90.0, "core.suspect", Some(7), 0.0);
        r.instant(90.0, "core.quarantine", Some(7), 0.0);
        r.gauge(90.0, "fleet.active_mercurial", 1.0);
        r.instant(120.0, "detect.triage", Some(7), 0.0);
        r.instant(120.0, "core.confirm", Some(7), 0.0);
        r.gauge(120.0, "fleet.active_mercurial", 0.0);
        r.instant(130.0, "alert.fired", None, 2.0);
        r.instant(140.0, "mitigation.escalated", None, 1.0);
        // Names outside the decision vocabulary are not ledgered.
        r.instant(55.0, "sim.first_corruption", Some(7), 0.0);
        r.gauge(55.0, "capacity.availability", 1.0);
        r.finish()
    }

    #[test]
    fn ledger_filters_decision_vocabulary() {
        let ledger = DecisionLedger::from_trace(&sample_trace());
        assert_eq!(ledger.len(), 11);
        assert_eq!(ledger.gt_count, 1);
        assert_eq!(ledger.count_of(Decision::Signal), 2);
        assert_eq!(ledger.count_of(Decision::Alert), 1);
        assert_eq!(ledger.active_mercurial, vec![(90.0, 1.0), (120.0, 0.0)]);
        // The out-of-vocabulary events were dropped.
        assert!(ledger.entries.iter().all(|e| e.hour != 55.0));
    }

    #[test]
    fn replayed_ledger_is_byte_identical() {
        let trace = sample_trace();
        let in_loop = DecisionLedger::from_trace(&trace);
        let replayed = DecisionLedger::from_trace_jsonl(&trace.to_jsonl()).unwrap();
        assert_eq!(in_loop, replayed);
        assert_eq!(in_loop.to_jsonl(), replayed.to_jsonl());
    }

    #[test]
    fn ledger_jsonl_format_is_stable() {
        let ledger = DecisionLedger::from_trace(&sample_trace());
        let jsonl = ledger.to_jsonl();
        let first = jsonl.lines().next().unwrap();
        assert_eq!(first, "{\"h\":10,\"d\":\"onset\",\"core\":7}");
        assert!(jsonl.contains("{\"h\":50,\"d\":\"signal\",\"core\":7,\"v\":3}"));
        // Zero payloads omit "v" (the kind-0 signal).
        assert!(jsonl.contains("{\"h\":60,\"d\":\"signal\",\"core\":7}"));
        assert!(jsonl.contains("{\"h\":130,\"d\":\"alert\",\"v\":2}"));
    }

    #[test]
    fn active_mercurial_lookup_is_latest_at_or_before() {
        let ledger = DecisionLedger::from_trace(&sample_trace());
        assert_eq!(ledger.active_mercurial_at(89.0), 0.0);
        assert_eq!(ledger.active_mercurial_at(90.0), 1.0);
        assert_eq!(ledger.active_mercurial_at(119.0), 1.0);
        assert_eq!(ledger.active_mercurial_at(500.0), 0.0);
    }

    #[test]
    fn decision_names_roundtrip() {
        for d in ALL_DECISIONS {
            assert_eq!(Decision::from_event_name(d.event_name()), Some(d));
            assert!(!d.code().is_empty());
            assert!(!d.stage().is_empty());
        }
        assert_eq!(Decision::from_event_name("loop.epoch"), None);
        // Timeline vocabulary is reused where it exists.
        assert_eq!(Decision::Onset.stage(), "onset");
        assert_eq!(Decision::DeepCheck.stage(), "detect(triage)");
        assert_eq!(Decision::Alert.stage(), "alert");
    }

    #[test]
    fn ledger_is_time_sorted_regardless_of_emission_order() {
        // A sharded fleet interleaves per-shard streams differently at
        // different worker counts; the canonical ledger must not care.
        let mut r = Recorder::with_flags(TraceFlags::enabled());
        r.instant(10.0, "gt.onset", Some(1), 0.0);
        r.instant(70.0, "score.signal", Some(2), 1.0); // shard B, late emission
        r.instant(40.0, "score.signal", Some(1), 1.0); // shard A, emitted after
        r.instant(40.0, "score.first_signal", Some(1), 0.0);
        let ledger = DecisionLedger::from_trace(&r.finish());
        let hours: Vec<f64> = ledger.entries.iter().map(|e| e.hour).collect();
        assert_eq!(hours, vec![10.0, 40.0, 40.0, 70.0]);
        // Stable: the same-hour signal/first-signal pair kept its order.
        assert_eq!(ledger.entries[1].decision, Decision::Signal);
        assert_eq!(ledger.entries[2].decision, Decision::FirstSignal);
    }

    #[test]
    fn kind_names_decode() {
        assert_eq!(signal_kind_name(3.0), "machine-check");
        assert_eq!(signal_kind_name(0.0), "app-checksum-mismatch");
        assert_eq!(signal_kind_name(7.0), "screener-failure");
        assert_eq!(signal_kind_name(42.0), "kind-42");
    }
}
