//! The attribution scorer: joining decisions against ground truth.
//!
//! Labels every core the loop acted on (or should have acted on) as a
//! true positive, false positive, or false negative; measures
//! time-to-root-cause for the confirmed; audits exonerations for the
//! paper's "in our experience, the time between a test escape and its
//! eventual detection can be months" failure mode (a mercurial core the
//! deep check cleared and never re-caught is a *test escape*); and scores
//! every signal kind and watch rule for precision/recall. The whole
//! report is a pure function of (ledger, truth, rule names), so in-loop
//! and replayed audits agree exactly.

use crate::ledger::{signal_kind_name, Decision, DecisionLedger};
use crate::truth::GroundTruth;
use mercurial_metrics::nearest_rank;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Attribution label for one core the audit has an opinion about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CaseLabel {
    /// Mercurial and quarantined at least once.
    TruePositive,
    /// Healthy but quarantined — the loop defamed it.
    FalsePositive,
    /// Mercurial but never quarantined — the loop missed it.
    FalseNegative,
}

impl CaseLabel {
    /// Two-letter tag used in reports and case files.
    pub fn tag(self) -> &'static str {
        match self {
            CaseLabel::TruePositive => "TP",
            CaseLabel::FalsePositive => "FP",
            CaseLabel::FalseNegative => "FN",
        }
    }
}

/// The audited outcome for one core.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreVerdict {
    /// Packed `CoreUid`.
    pub core: u64,
    /// Attribution label.
    pub label: CaseLabel,
    /// Ground-truth lesion onset hour (mercurial cores only).
    pub onset: Option<f64>,
    /// Hour of the first signal attributed to the core.
    pub first_signal: Option<f64>,
    /// Hour of the first quarantine.
    pub quarantine_hour: Option<f64>,
    /// Hour of the first confirmation.
    pub confirm_hour: Option<f64>,
    /// Signals ingested against this core (provenance instants).
    pub signals: u64,
    /// Times the core was exonerated.
    pub exonerations: u32,
    /// A mercurial core was exonerated at least once.
    pub false_exoneration: bool,
    /// A falsely exonerated core was later confirmed anyway.
    pub reconfirmed: bool,
    /// A falsely exonerated core was *never* confirmed — the paper's
    /// test-escape failure mode.
    pub test_escape: bool,
    /// Onset → first confirmation, in hours (confirmed mercurial only).
    pub ttrc_hours: Option<f64>,
}

/// Precision/recall of one signal kind.
#[derive(Debug, Clone, PartialEq)]
pub struct KindStats {
    /// Canonical kind name.
    pub kind: String,
    /// Signals of this kind ingested fleet-wide.
    pub signals: u64,
    /// Of those, signals attributed to ground-truth mercurial cores.
    pub mercurial_signals: u64,
    /// Distinct cores this kind accused.
    pub cores_accused: u64,
    /// Distinct ground-truth mercurial cores this kind touched.
    pub mercurial_cores_hit: u64,
}

impl KindStats {
    /// Fraction of this kind's signals that pointed at a real mercurial
    /// core.
    pub fn precision(&self) -> f64 {
        if self.signals == 0 {
            0.0
        } else {
            self.mercurial_signals as f64 / self.signals as f64
        }
    }

    /// Fraction of ground-truth mercurial cores this kind ever touched.
    pub fn recall(&self, ground_truth: usize) -> f64 {
        if ground_truth == 0 {
            0.0
        } else {
            self.mercurial_cores_hit as f64 / ground_truth as f64
        }
    }
}

/// Justified-fire accounting for one watch rule.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleStats {
    /// Rule name (index-resolved from the scenario rule set; `rule-<n>`
    /// when the index is out of range, e.g. replaying against a different
    /// scenario).
    pub rule: String,
    /// Times the rule fired.
    pub fires: u32,
    /// Fires while the fleet still harbored known-active mercurial cores
    /// (per the `fleet.active_mercurial` gauge).
    pub justified: u32,
}

impl RuleStats {
    /// Fraction of fires that were justified.
    pub fn precision(&self) -> f64 {
        if self.fires == 0 {
            0.0
        } else {
            self.justified as f64 / self.fires as f64
        }
    }
}

/// The full postmortem: attribution, latency, exoneration audit, and
/// per-kind / per-rule quality.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Ledger entries audited.
    pub decisions: usize,
    /// Ground-truth mercurial cores.
    pub ground_truth: usize,
    /// Mercurial cores the loop quarantined.
    pub true_positives: usize,
    /// Healthy cores the loop quarantined.
    pub false_positives: usize,
    /// Mercurial cores the loop never quarantined.
    pub false_negatives: usize,
    /// True positives that were also confirmed.
    pub confirmed_true: usize,
    /// Onset → first-confirm latencies (one per confirmed TP).
    pub ttrc_hours: Vec<f64>,
    /// Exoneration decisions in the ledger.
    pub exonerations: usize,
    /// Mercurial cores that were falsely exonerated at least once.
    pub false_exonerations: usize,
    /// Falsely exonerated mercurial cores never confirmed afterwards.
    pub test_escapes: usize,
    /// Mitigation escalations in the ledger.
    pub escalations: usize,
    /// Per-core verdicts, in core order.
    pub verdicts: Vec<CoreVerdict>,
    /// Per-signal-kind quality, in kind-index order.
    pub kinds: Vec<KindStats>,
    /// Per-rule justified-fire accounting, in rule-name order.
    pub rules: Vec<RuleStats>,
}

/// Mutable per-core accumulator used while scanning the ledger.
#[derive(Debug, Default, Clone)]
struct CoreAcc {
    first_signal: Option<f64>,
    quarantine_hour: Option<f64>,
    confirm_hour: Option<f64>,
    first_exoneration: Option<f64>,
    signals: u64,
    exonerations: u32,
    reconfirmed: bool,
}

impl AuditReport {
    /// Score a ledger against ground truth. `rule_names` resolves alert
    /// rule indices (pass the scenario's expanded rule set; empty slice on
    /// bare replay).
    pub fn build(
        ledger: &DecisionLedger,
        truth: &GroundTruth,
        rule_names: &[String],
    ) -> AuditReport {
        let mut cores: BTreeMap<u64, CoreAcc> = BTreeMap::new();
        let mut kinds: BTreeMap<u64, KindStats> = BTreeMap::new();
        let mut kind_cores: BTreeMap<u64, std::collections::BTreeSet<u64>> = BTreeMap::new();
        let mut rules: BTreeMap<String, RuleStats> = BTreeMap::new();
        let mut exonerations = 0usize;
        let mut escalations = 0usize;

        for e in &ledger.entries {
            match e.decision {
                Decision::Signal => {
                    let Some(core) = e.core else { continue };
                    let acc = cores.entry(core).or_default();
                    acc.signals += 1;
                    acc.first_signal = Some(acc.first_signal.map_or(e.hour, |h| h.min(e.hour)));
                    let kind_ix = e.value as u64;
                    let stats = kinds.entry(kind_ix).or_insert_with(|| KindStats {
                        kind: signal_kind_name(e.value),
                        signals: 0,
                        mercurial_signals: 0,
                        cores_accused: 0,
                        mercurial_cores_hit: 0,
                    });
                    stats.signals += 1;
                    if truth.is_mercurial(core) {
                        stats.mercurial_signals += 1;
                    }
                    kind_cores.entry(kind_ix).or_default().insert(core);
                }
                Decision::FirstSignal => {
                    // Fallback when provenance instants are absent (plain
                    // traced run audited offline): at least the first
                    // signal hour is known.
                    let Some(core) = e.core else { continue };
                    let acc = cores.entry(core).or_default();
                    acc.first_signal = Some(acc.first_signal.map_or(e.hour, |h| h.min(e.hour)));
                }
                Decision::Quarantine => {
                    let Some(core) = e.core else { continue };
                    let acc = cores.entry(core).or_default();
                    acc.quarantine_hour = acc.quarantine_hour.or(Some(e.hour));
                }
                Decision::Confirm => {
                    let Some(core) = e.core else { continue };
                    let acc = cores.entry(core).or_default();
                    acc.confirm_hour = acc.confirm_hour.or(Some(e.hour));
                    if acc.first_exoneration.is_some() {
                        acc.reconfirmed = true;
                    }
                }
                Decision::Exonerate => {
                    exonerations += 1;
                    let Some(core) = e.core else { continue };
                    let acc = cores.entry(core).or_default();
                    acc.exonerations += 1;
                    acc.first_exoneration = acc.first_exoneration.or(Some(e.hour));
                }
                Decision::Alert => {
                    let ix = e.value as usize;
                    let name = rule_names
                        .get(ix)
                        .cloned()
                        .unwrap_or_else(|| format!("rule-{ix}"));
                    let stats = rules.entry(name.clone()).or_insert(RuleStats {
                        rule: name,
                        fires: 0,
                        justified: 0,
                    });
                    stats.fires += 1;
                    if ledger.active_mercurial_at(e.hour) > 0.0 {
                        stats.justified += 1;
                    }
                }
                Decision::Escalate => escalations += 1,
                _ => {}
            }
        }

        for (kind_ix, accused) in &kind_cores {
            if let Some(stats) = kinds.get_mut(kind_ix) {
                stats.cores_accused = accused.len() as u64;
                stats.mercurial_cores_hit =
                    accused.iter().filter(|c| truth.is_mercurial(**c)).count() as u64;
            }
        }

        // Verdicts: every mercurial core, plus every quarantined healthy
        // core. Signal-only healthy cores carry no wrong decision and stay
        // out of the attribution tally.
        let mut verdict_cores: std::collections::BTreeSet<u64> =
            truth.cores().map(|(c, _)| c).collect();
        verdict_cores.extend(
            cores
                .iter()
                .filter(|(_, acc)| acc.quarantine_hour.is_some())
                .map(|(c, _)| *c),
        );

        let mut report = AuditReport {
            decisions: ledger.len(),
            ground_truth: truth.count(),
            true_positives: 0,
            false_positives: 0,
            false_negatives: 0,
            confirmed_true: 0,
            ttrc_hours: Vec::new(),
            exonerations,
            false_exonerations: 0,
            test_escapes: 0,
            escalations,
            verdicts: Vec::new(),
            kinds: kinds.into_values().collect(),
            rules: rules.into_values().collect(),
        };

        let empty = CoreAcc::default();
        for core in verdict_cores {
            let acc = cores.get(&core).unwrap_or(&empty);
            let mercurial = truth.is_mercurial(core);
            let label = match (mercurial, acc.quarantine_hour.is_some()) {
                (true, true) => CaseLabel::TruePositive,
                (true, false) => CaseLabel::FalseNegative,
                (false, true) => CaseLabel::FalsePositive,
                (false, false) => continue,
            };
            let onset = truth.onset_of(core);
            let false_exoneration = mercurial && acc.exonerations > 0;
            let test_escape = false_exoneration && acc.confirm_hour.is_none();
            let ttrc_hours = match (label, onset, acc.confirm_hour) {
                (CaseLabel::TruePositive, Some(on), Some(confirm)) => Some(confirm - on),
                _ => None,
            };
            match label {
                CaseLabel::TruePositive => {
                    report.true_positives += 1;
                    if acc.confirm_hour.is_some() {
                        report.confirmed_true += 1;
                    }
                }
                CaseLabel::FalsePositive => report.false_positives += 1,
                CaseLabel::FalseNegative => report.false_negatives += 1,
            }
            if false_exoneration {
                report.false_exonerations += 1;
            }
            if test_escape {
                report.test_escapes += 1;
            }
            if let Some(t) = ttrc_hours {
                report.ttrc_hours.push(t);
            }
            report.verdicts.push(CoreVerdict {
                core,
                label,
                onset,
                first_signal: acc.first_signal,
                quarantine_hour: acc.quarantine_hour,
                confirm_hour: acc.confirm_hour,
                signals: acc.signals,
                exonerations: acc.exonerations,
                false_exoneration,
                reconfirmed: acc.reconfirmed,
                test_escape,
                ttrc_hours,
            });
        }
        report
    }

    /// Quarantine precision: TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Quarantine recall: TP / (TP + FN).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Median time-to-root-cause, in hours.
    pub fn ttrc_p50(&self) -> Option<f64> {
        nearest_rank(0.50, &self.ttrc_hours)
    }

    /// 95th-percentile time-to-root-cause, in hours.
    pub fn ttrc_p95(&self) -> Option<f64> {
        nearest_rank(0.95, &self.ttrc_hours)
    }

    /// The conservation invariant: every ground-truth mercurial core is
    /// either caught (TP) or missed (FN), and the ledger's own
    /// ground-truth counter agrees with the onset record.
    pub fn conserves(&self, ledger: &DecisionLedger) -> bool {
        self.true_positives + self.false_negatives == self.ground_truth
            && ledger.gt_count as usize == self.ground_truth
    }

    /// Render the fleet postmortem as deterministic ASCII.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# fleet postmortem: decision audit");
        let _ = writeln!(out, "decisions ledgered ........ {}", self.decisions);
        let _ = writeln!(out, "ground-truth mercurial .... {}", self.ground_truth);
        let _ = writeln!(
            out,
            "attribution ............... TP={} FP={} FN={}  precision={:.3} recall={:.3}",
            self.true_positives,
            self.false_positives,
            self.false_negatives,
            self.precision(),
            self.recall(),
        );
        let _ = writeln!(
            out,
            "confirmed true positives .. {} of {}",
            self.confirmed_true, self.true_positives
        );
        match (self.ttrc_p50(), self.ttrc_p95()) {
            (Some(p50), Some(p95)) => {
                let _ = writeln!(
                    out,
                    "time-to-root-cause ........ p50={p50:.1}h p95={p95:.1}h (n={})",
                    self.ttrc_hours.len()
                );
            }
            _ => {
                let _ = writeln!(out, "time-to-root-cause ........ no confirmed cases");
            }
        }
        let _ = writeln!(
            out,
            "exoneration audit ......... {} exonerations, {} falsely cleared mercurial cores, {} test escapes",
            self.exonerations, self.false_exonerations, self.test_escapes
        );
        let _ = writeln!(out, "mitigation escalations .... {}", self.escalations);

        if !self.kinds.is_empty() {
            let _ = writeln!(out, "\n## signal kinds");
            let width = self
                .kinds
                .iter()
                .map(|k| k.kind.len())
                .max()
                .unwrap_or(4)
                .max(4);
            let _ = writeln!(
                out,
                "{:<width$}  {:>8}  {:>9}  {:>6}",
                "kind", "signals", "precision", "recall"
            );
            for k in &self.kinds {
                let _ = writeln!(
                    out,
                    "{:<width$}  {:>8}  {:>9.3}  {:>6.3}",
                    k.kind,
                    k.signals,
                    k.precision(),
                    k.recall(self.ground_truth),
                );
            }
        }

        if !self.rules.is_empty() {
            let _ = writeln!(out, "\n## watch rules");
            let width = self
                .rules
                .iter()
                .map(|r| r.rule.len())
                .max()
                .unwrap_or(4)
                .max(4);
            let _ = writeln!(
                out,
                "{:<width$}  {:>5}  {:>9}  {:>9}",
                "rule", "fires", "justified", "precision"
            );
            for r in &self.rules {
                let _ = writeln!(
                    out,
                    "{:<width$}  {:>5}  {:>9}  {:>9.3}",
                    r.rule,
                    r.fires,
                    r.justified,
                    r.precision(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::LedgerEntry;

    fn entry(hour: f64, decision: Decision, core: Option<u64>, value: f64) -> LedgerEntry {
        LedgerEntry {
            hour,
            decision,
            core,
            value,
        }
    }

    /// Core 7: mercurial, caught and confirmed. Core 9: mercurial, never
    /// quarantined (FN). Core 3: healthy, quarantined then exonerated
    /// (FP). Core 11: mercurial, exonerated and never re-caught (test
    /// escape).
    fn sample() -> (DecisionLedger, GroundTruth) {
        let entries = vec![
            entry(10.0, Decision::Onset, Some(7), 0.0),
            entry(12.0, Decision::Onset, Some(9), 0.0),
            entry(14.0, Decision::Onset, Some(11), 0.0),
            entry(50.0, Decision::Signal, Some(7), 3.0),
            entry(55.0, Decision::Signal, Some(3), 1.0),
            entry(60.0, Decision::Signal, Some(7), 3.0),
            entry(61.0, Decision::Signal, Some(11), 0.0),
            entry(70.0, Decision::Quarantine, Some(7), 0.0),
            entry(75.0, Decision::Quarantine, Some(3), 0.0),
            entry(76.0, Decision::Quarantine, Some(11), 0.0),
            entry(90.0, Decision::Confirm, Some(7), 0.0),
            entry(95.0, Decision::Exonerate, Some(3), 0.0),
            entry(96.0, Decision::Exonerate, Some(11), 0.0),
            entry(100.0, Decision::Alert, None, 0.0),
            entry(400.0, Decision::Alert, None, 1.0),
            entry(120.0, Decision::Escalate, None, 2.0),
        ];
        let ledger = DecisionLedger {
            entries,
            active_mercurial: vec![(0.0, 3.0), (300.0, 0.0)],
            gt_count: 3,
        };
        let truth = GroundTruth::from_ledger(&ledger);
        (ledger, truth)
    }

    #[test]
    fn attribution_labels_and_conserves() {
        let (ledger, truth) = sample();
        let rules = vec!["rule-a".to_string(), "rule-b".to_string()];
        let report = AuditReport::build(&ledger, &truth, &rules);
        assert_eq!(report.ground_truth, 3);
        assert_eq!(report.true_positives, 2); // cores 7 and 11
        assert_eq!(report.false_positives, 1); // core 3
        assert_eq!(report.false_negatives, 1); // core 9
        assert!(report.conserves(&ledger));
        assert_eq!(report.confirmed_true, 1);
        assert_eq!(report.ttrc_hours, vec![80.0]); // 90 - 10
        assert_eq!(report.ttrc_p50(), Some(80.0));
        // Exoneration audit: cores 3 (rightly) and 11 (falsely) cleared.
        assert_eq!(report.exonerations, 2);
        assert_eq!(report.false_exonerations, 1);
        assert_eq!(report.test_escapes, 1);
        assert!((report.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((report.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kind_and_rule_stats() {
        let (ledger, truth) = sample();
        let rules = vec!["rule-a".to_string()];
        let report = AuditReport::build(&ledger, &truth, &rules);
        let mce = report
            .kinds
            .iter()
            .find(|k| k.kind == "machine-check")
            .unwrap();
        assert_eq!(mce.signals, 2);
        assert_eq!(mce.mercurial_signals, 2);
        assert_eq!(mce.cores_accused, 1);
        assert_eq!(mce.mercurial_cores_hit, 1);
        assert_eq!(mce.precision(), 1.0);
        assert!((mce.recall(3) - 1.0 / 3.0).abs() < 1e-12);
        let crash = report
            .kinds
            .iter()
            .find(|k| k.kind == "process-crash")
            .unwrap();
        assert_eq!(crash.precision(), 0.0); // only accused healthy core 3
                                            // Rule 0 resolved by name and justified (3 active mercurial at
                                            // h100); rule 1 out of range → placeholder name, fired at h400
                                            // after the gauge dropped to 0 → unjustified.
        let a = report.rules.iter().find(|r| r.rule == "rule-a").unwrap();
        assert_eq!((a.fires, a.justified), (1, 1));
        let b = report.rules.iter().find(|r| r.rule == "rule-1").unwrap();
        assert_eq!((b.fires, b.justified), (1, 0));
    }

    #[test]
    fn reconfirmation_is_tracked() {
        let entries = vec![
            entry(10.0, Decision::Onset, Some(5), 0.0),
            entry(70.0, Decision::Quarantine, Some(5), 0.0),
            entry(80.0, Decision::Exonerate, Some(5), 0.0),
            entry(200.0, Decision::Quarantine, Some(5), 0.0),
            entry(220.0, Decision::Confirm, Some(5), 0.0),
        ];
        let ledger = DecisionLedger {
            entries,
            gt_count: 1,
            ..DecisionLedger::default()
        };
        let truth = GroundTruth::from_ledger(&ledger);
        let report = AuditReport::build(&ledger, &truth, &[]);
        let v = &report.verdicts[0];
        assert_eq!(v.label, CaseLabel::TruePositive);
        assert!(v.false_exoneration);
        assert!(v.reconfirmed);
        assert!(!v.test_escape);
        assert_eq!(report.test_escapes, 0);
        assert_eq!(v.ttrc_hours, Some(210.0));
    }

    #[test]
    fn postmortem_renders_deterministically() {
        let (ledger, truth) = sample();
        let rules = vec!["rule-a".to_string(), "rule-b".to_string()];
        let report = AuditReport::build(&ledger, &truth, &rules);
        let text = report.render();
        assert!(text.contains("# fleet postmortem"));
        assert!(text.contains("TP=2 FP=1 FN=1"));
        assert!(text.contains("machine-check"));
        assert!(text.contains("rule-a"));
        assert!(text.contains("1 test escapes"));
        assert_eq!(text, report.render());
    }
}
