//! The injector: deterministic application of a core's fault profile to a
//! stream of operations.
//!
//! Consumers (the CPU simulator's execution loop, the fleet's analytic
//! workload model) describe each operation with an [`OpContext`] and hand
//! the *correct* result to [`Injector::apply`]; the injector decides —
//! deterministically, from `(seed, core, sequence-number)` — whether any
//! lesion fires and what comes out of the broken unit.
//!
//! Determinism matters twice over: it makes experiments replayable, and it
//! reproduces the paper's observation that some CEEs have stable signatures
//! ("in just a few cases, we can reproduce the errors deterministically;
//! usually the implementation-level and environmental details have to line
//! up").

use crate::activation::Activation;
use crate::lesion::{Lesion, LockFailureMode};
use crate::oppoint::OperatingPoint;
use crate::profile::{CoreFaultProfile, CoreUid};
use crate::rng::CounterRng;
use crate::unit::FunctionalUnit;

/// Everything the injector needs to know about one operation.
#[derive(Debug, Clone, Copy)]
pub struct OpContext {
    /// Which core is executing.
    pub core: CoreUid,
    /// Which functional unit the operation uses.
    pub unit: FunctionalUnit,
    /// Operating point at execution time.
    pub point: OperatingPoint,
    /// Core age in hours of service (drives latent onset and degradation).
    pub age_hours: f64,
    /// First source operand (gates data patterns; carrier for skipped ops).
    pub operand: u64,
    /// Per-core monotonically increasing operation sequence number.
    pub seq: u64,
}

impl OpContext {
    /// A context at nominal conditions, useful in tests and examples.
    pub fn nominal(core: CoreUid, unit: FunctionalUnit, operand: u64, seq: u64) -> OpContext {
        OpContext {
            core,
            unit,
            point: OperatingPoint::NOMINAL,
            age_hours: 0.0,
            operand,
            seq,
        }
    }
}

/// The outcome of pushing one operation through the injector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpOutcome {
    /// The (possibly corrupted) result.
    pub value: u64,
    /// Index into the profile's lesion list of the lesion that fired, if any.
    pub fired: Option<usize>,
}

impl OpOutcome {
    /// Whether any lesion fired on this operation.
    pub fn corrupted(&self) -> bool {
        self.fired.is_some()
    }
}

/// Applies a [`CoreFaultProfile`] to a stream of operations.
///
/// The injector carries a small amount of per-unit state (the previous
/// output of each unit, for [`Lesion::LatchedValue`]); everything else is
/// a pure function of the fault seed and the operation context.
///
/// # Examples
///
/// ```
/// use mercurial_fault::{
///     Activation, CoreFaultProfile, CoreUid, FunctionalUnit, Injector, Lesion, OpContext,
/// };
///
/// let profile = CoreFaultProfile::single(
///     "demo",
///     FunctionalUnit::ScalarAlu,
///     Lesion::FlipBit { bit: 0 },
///     Activation::always(),
/// );
/// let mut inj = Injector::new(1234, profile);
/// let ctx = OpContext::nominal(CoreUid::new(0, 0, 0), FunctionalUnit::ScalarAlu, 2, 0);
/// let out = inj.apply(ctx, 2 + 2);
/// assert_eq!(out.value, 5); // bit 0 flipped
/// assert!(out.corrupted());
/// ```
#[derive(Debug, Clone)]
pub struct Injector {
    seed: u64,
    profile: CoreFaultProfile,
    prev_output: [u64; FunctionalUnit::ALL.len()],
    fired_count: u64,
}

impl Injector {
    /// Creates an injector for one core's profile.
    pub fn new(seed: u64, profile: CoreFaultProfile) -> Injector {
        Injector {
            seed,
            profile,
            prev_output: [0; FunctionalUnit::ALL.len()],
            fired_count: 0,
        }
    }

    /// The profile being injected.
    pub fn profile(&self) -> &CoreFaultProfile {
        &self.profile
    }

    /// How many lesion firings have occurred so far.
    pub fn fired_count(&self) -> u64 {
        self.fired_count
    }

    /// The deterministic activation draw for lesion `idx` at operation
    /// `ctx.seq` on `ctx.core`.
    fn draw(&self, ctx: &OpContext, idx: usize) -> f64 {
        CounterRng::from_parts(self.seed, ctx.core.as_u64(), idx as u64, 0).uniform_at(ctx.seq)
    }

    /// Entropy word for non-deterministic lesions.
    fn entropy(&self, ctx: &OpContext, idx: usize) -> u64 {
        CounterRng::from_parts(self.seed, ctx.core.as_u64(), idx as u64, 1).at(ctx.seq)
    }

    /// Whether lesion `idx` fires for this operation.
    fn fires(&self, ctx: &OpContext, idx: usize, activation: &Activation) -> bool {
        let p = activation.probability(ctx.point, ctx.operand, ctx.age_hours);
        p > 0.0 && self.draw(ctx, idx) < p
    }

    /// Pushes one scalar operation through the injector.
    ///
    /// `correct` is the architecturally correct result. If several lesions
    /// afflict the unit and fire simultaneously, the first (by profile
    /// order) wins — real defects do not compose neatly either.
    pub fn apply(&mut self, ctx: OpContext, correct: u64) -> OpOutcome {
        self.apply_inner(ctx, correct, false)
    }

    /// Like [`Injector::apply`], but skipping [`Lesion::CorruptCopy`]
    /// lesions.
    ///
    /// Bulk-copy execution paths handle copy lesions through
    /// [`Injector::copy_corruption`] (which honors the lesion's stride);
    /// they use this entry point for the unit's *other* lesions so a copy
    /// lesion cannot fire twice for one word.
    pub fn apply_excluding_copy(&mut self, ctx: OpContext, correct: u64) -> OpOutcome {
        self.apply_inner(ctx, correct, true)
    }

    fn apply_inner(&mut self, ctx: OpContext, correct: u64, skip_copy: bool) -> OpOutcome {
        let mut outcome = OpOutcome {
            value: correct,
            fired: None,
        };
        for (idx, fl) in self.profile.lesions.iter().enumerate() {
            if fl.unit != ctx.unit {
                continue;
            }
            if skip_copy && matches!(fl.lesion, Lesion::CorruptCopy { .. }) {
                continue;
            }
            if self.fires(&ctx, idx, &fl.activation) {
                let prev = self.prev_output[ctx.unit.index()];
                let entropy = self.entropy(&ctx, idx);
                outcome.value = fl.lesion.apply_scalar(correct, prev, ctx.operand, entropy);
                outcome.fired = Some(idx);
                break;
            }
        }
        if outcome.fired.is_some() {
            self.fired_count += 1;
        }
        // The unit's previous-output latch tracks what actually came out.
        self.prev_output[ctx.unit.index()] = outcome.value;
        outcome
    }

    /// Asks whether an atomic operation fails, and how.
    ///
    /// Returns the [`LockFailureMode`] of the first firing lock-violation
    /// lesion on [`FunctionalUnit::Atomics`], if any.
    pub fn lock_failure(&mut self, ctx: OpContext) -> Option<LockFailureMode> {
        for (idx, fl) in self.profile.lesions.iter().enumerate() {
            if fl.unit != FunctionalUnit::Atomics {
                continue;
            }
            if let Lesion::LockViolation { mode } = fl.lesion {
                if self.fires(&ctx, idx, &fl.activation) {
                    self.fired_count += 1;
                    return Some(mode);
                }
            }
        }
        None
    }

    /// The 128-bit mask corrupting a cryptographic round, if a crypto-unit
    /// round lesion fires for this operation.
    ///
    /// The *same* mask is returned for the encrypt and decrypt directions,
    /// which is exactly what makes the paper's AES case self-inverting on
    /// the defective core.
    pub fn crypto_round_mask(&mut self, ctx: OpContext) -> Option<u128> {
        for (idx, fl) in self.profile.lesions.iter().enumerate() {
            if fl.unit != FunctionalUnit::CryptoUnit {
                continue;
            }
            if let Some(mask) = fl.lesion.round_mask() {
                if self.fires(&ctx, idx, &fl.activation) {
                    self.fired_count += 1;
                    return Some(mask);
                }
            }
        }
        None
    }

    /// The corruption mask for word `word_index` of a bulk copy, if a
    /// copy lesion on the vector pipe fires.
    pub fn copy_corruption(&mut self, ctx: OpContext, word_index: u64) -> Option<u64> {
        for (idx, fl) in self.profile.lesions.iter().enumerate() {
            if fl.unit != FunctionalUnit::VectorPipe {
                continue;
            }
            if let Lesion::CorruptCopy {
                stride,
                offset,
                mask,
            } = fl.lesion
            {
                let stride = stride.max(1) as u64;
                if word_index % stride == offset as u64 % stride
                    && self.fires(&ctx, idx, &fl.activation)
                {
                    self.fired_count += 1;
                    return Some(mask);
                }
            }
        }
        None
    }

    /// The analytic per-operation corruption probability on a unit at the
    /// given conditions, summed over the unit's lesions (clamped to 1).
    ///
    /// Fleet-scale simulations use this closed form instead of simulating
    /// every instruction.
    pub fn corruption_rate(
        &self,
        unit: FunctionalUnit,
        point: OperatingPoint,
        operand: u64,
        age_hours: f64,
    ) -> f64 {
        let p_ok: f64 = self
            .profile
            .lesions
            .iter()
            .filter(|fl| fl.unit == unit)
            .map(|fl| 1.0 - fl.activation.probability(point, operand, age_hours))
            .product();
        1.0 - p_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::{Activation, AgingModel};
    use crate::profile::FaultLesion;

    fn core() -> CoreUid {
        CoreUid::new(7, 0, 3)
    }

    fn ctx(unit: FunctionalUnit, operand: u64, seq: u64) -> OpContext {
        OpContext::nominal(core(), unit, operand, seq)
    }

    #[test]
    fn clean_unit_passes_through() {
        let p = CoreFaultProfile::single(
            "alu-only",
            FunctionalUnit::ScalarAlu,
            Lesion::FlipBit { bit: 1 },
            Activation::always(),
        );
        let mut inj = Injector::new(1, p);
        // FMA is unafflicted: results pass through untouched.
        let out = inj.apply(ctx(FunctionalUnit::Fma, 0, 0), 42);
        assert_eq!(out.value, 42);
        assert!(!out.corrupted());
    }

    #[test]
    fn always_lesion_corrupts_every_op() {
        let p = CoreFaultProfile::single(
            "hot",
            FunctionalUnit::MulDiv,
            Lesion::XorMask { mask: 0xf0 },
            Activation::always(),
        );
        let mut inj = Injector::new(2, p);
        for seq in 0..50 {
            let out = inj.apply(ctx(FunctionalUnit::MulDiv, 9, seq), 100);
            assert_eq!(out.value, 100 ^ 0xf0);
        }
        assert_eq!(inj.fired_count(), 50);
    }

    #[test]
    fn probabilistic_lesion_rate_is_calibrated() {
        let p = CoreFaultProfile::single(
            "rare",
            FunctionalUnit::ScalarAlu,
            Lesion::FlipBit { bit: 0 },
            Activation::with_prob(0.05),
        );
        let mut inj = Injector::new(3, p);
        let n = 200_000;
        let mut fired = 0;
        for seq in 0..n {
            if inj
                .apply(ctx(FunctionalUnit::ScalarAlu, 0, seq), 7)
                .corrupted()
            {
                fired += 1;
            }
        }
        let rate = fired as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate was {rate}");
    }

    #[test]
    fn injection_is_replayable() {
        let p = CoreFaultProfile::single(
            "replay",
            FunctionalUnit::VectorPipe,
            Lesion::CorruptValue,
            Activation::with_prob(0.3),
        );
        let run = |seed| {
            let mut inj = Injector::new(seed, p.clone());
            (0..100)
                .map(|seq| inj.apply(ctx(FunctionalUnit::VectorPipe, seq, seq), seq * 3))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn latched_value_replays_previous_output() {
        let p = CoreFaultProfile::single(
            "latch",
            FunctionalUnit::Fma,
            Lesion::LatchedValue,
            Activation::always(),
        );
        let mut inj = Injector::new(5, p);
        let first = inj.apply(ctx(FunctionalUnit::Fma, 0, 0), 111);
        // First op latches whatever was in the unit (initially 0).
        assert_eq!(first.value, 0);
        let second = inj.apply(ctx(FunctionalUnit::Fma, 0, 1), 222);
        assert_eq!(second.value, 0); // previous actual output was 0
    }

    #[test]
    fn lock_failure_only_from_lock_lesions() {
        let p = CoreFaultProfile::single(
            "locks",
            FunctionalUnit::Atomics,
            Lesion::LockViolation {
                mode: LockFailureMode::PhantomSuccess,
            },
            Activation::always(),
        );
        let mut inj = Injector::new(6, p);
        assert_eq!(
            inj.lock_failure(ctx(FunctionalUnit::Atomics, 0, 0)),
            Some(LockFailureMode::PhantomSuccess)
        );

        let p2 = CoreFaultProfile::single(
            "not-locks",
            FunctionalUnit::Atomics,
            Lesion::FlipBit { bit: 0 },
            Activation::always(),
        );
        let mut inj2 = Injector::new(6, p2);
        assert_eq!(inj2.lock_failure(ctx(FunctionalUnit::Atomics, 0, 0)), None);
    }

    #[test]
    fn crypto_round_mask_stable_across_directions() {
        let p = CoreFaultProfile::single(
            "aes",
            FunctionalUnit::CryptoUnit,
            Lesion::RoundXor {
                mask_hi: 0xdead,
                mask_lo: 0xbeef,
            },
            Activation::always(),
        );
        let mut inj = Injector::new(7, p);
        let m1 = inj.crypto_round_mask(ctx(FunctionalUnit::CryptoUnit, 0, 0));
        let m2 = inj.crypto_round_mask(ctx(FunctionalUnit::CryptoUnit, 0, 0));
        assert_eq!(m1, m2);
        assert_eq!(m1, Some((0xdead_u128 << 64) | 0xbeef));
    }

    #[test]
    fn copy_corruption_strides() {
        let p = CoreFaultProfile::single(
            "copy",
            FunctionalUnit::VectorPipe,
            Lesion::CorruptCopy {
                stride: 4,
                offset: 1,
                mask: 0xff,
            },
            Activation::always(),
        );
        let mut inj = Injector::new(8, p);
        let c = ctx(FunctionalUnit::VectorPipe, 0, 0);
        assert_eq!(inj.copy_corruption(c, 0), None);
        assert_eq!(inj.copy_corruption(c, 1), Some(0xff));
        assert_eq!(inj.copy_corruption(c, 2), None);
        assert_eq!(inj.copy_corruption(c, 5), Some(0xff));
    }

    #[test]
    fn apply_excluding_copy_skips_copy_lesions_only() {
        let p = CoreFaultProfile::new(
            "copy-and-flip",
            vec![
                FaultLesion {
                    unit: FunctionalUnit::VectorPipe,
                    lesion: Lesion::CorruptCopy {
                        stride: 1,
                        offset: 0,
                        mask: 0xff,
                    },
                    activation: Activation::always(),
                },
                FaultLesion {
                    unit: FunctionalUnit::VectorPipe,
                    lesion: Lesion::FlipBit { bit: 4 },
                    activation: Activation::always(),
                },
            ],
        );
        let mut inj = Injector::new(11, p);
        let c = ctx(FunctionalUnit::VectorPipe, 0, 0);
        // Excluding copy lesions, the flip-bit lesion still fires.
        let out = inj.apply_excluding_copy(c, 0);
        assert_eq!(out.value, 1 << 4);
        assert_eq!(out.fired, Some(1));
        // The plain path hits the copy lesion first.
        let out2 = inj.apply(ctx(FunctionalUnit::VectorPipe, 0, 1), 0);
        assert_eq!(out2.value, 0xff);
        assert_eq!(out2.fired, Some(0));
    }

    #[test]
    fn latent_profile_fires_only_after_onset() {
        let p = CoreFaultProfile::single(
            "latent",
            FunctionalUnit::ScalarAlu,
            Lesion::FlipBit { bit: 2 },
            Activation {
                aging: AgingModel {
                    onset_hours: 100.0,
                    growth_per_year: 1.0,
                },
                ..Activation::always()
            },
        );
        let mut inj = Injector::new(9, p);
        let mut young = ctx(FunctionalUnit::ScalarAlu, 0, 0);
        young.age_hours = 50.0;
        assert!(!inj.apply(young, 5).corrupted());
        let mut old = ctx(FunctionalUnit::ScalarAlu, 0, 1);
        old.age_hours = 150.0;
        assert!(inj.apply(old, 5).corrupted());
    }

    #[test]
    fn corruption_rate_closed_form() {
        let p = CoreFaultProfile::new(
            "two",
            vec![
                FaultLesion {
                    unit: FunctionalUnit::ScalarAlu,
                    lesion: Lesion::FlipBit { bit: 0 },
                    activation: Activation::with_prob(0.1),
                },
                FaultLesion {
                    unit: FunctionalUnit::ScalarAlu,
                    lesion: Lesion::FlipBit { bit: 1 },
                    activation: Activation::with_prob(0.2),
                },
            ],
        );
        let inj = Injector::new(10, p);
        let rate = inj.corruption_rate(FunctionalUnit::ScalarAlu, OperatingPoint::NOMINAL, 0, 0.0);
        // 1 - (1-0.1)(1-0.2) = 0.28.
        assert!((rate - 0.28).abs() < 1e-12);
        assert_eq!(
            inj.corruption_rate(FunctionalUnit::Fma, OperatingPoint::NOMINAL, 0, 0.0),
            0.0
        );
    }
}
