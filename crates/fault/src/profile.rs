//! Core fault profiles: the complete defect description of one core.
//!
//! §1: CEEs "typically afflict specific cores on multi-core CPUs, rather
//! than the entire chip". A [`CoreFaultProfile`] is therefore attached to a
//! single [`CoreUid`]; healthy cores simply have no profile.

use crate::activation::Activation;
use crate::lesion::Lesion;
use crate::unit::FunctionalUnit;
use serde::{Deserialize, Serialize};

/// A fleet-unique core identifier: `(machine, socket, core-on-socket)`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct CoreUid {
    /// Machine index within the fleet.
    pub machine: u32,
    /// Socket index within the machine.
    pub socket: u8,
    /// Core index within the socket.
    pub core: u16,
}

impl CoreUid {
    /// Creates a core identifier.
    pub fn new(machine: u32, socket: u8, core: u16) -> CoreUid {
        CoreUid {
            machine,
            socket,
            core,
        }
    }

    /// A stable 64-bit encoding, used to key deterministic random streams.
    pub fn as_u64(self) -> u64 {
        ((self.machine as u64) << 32) | ((self.socket as u64) << 16) | self.core as u64
    }

    /// Inverse of [`CoreUid::as_u64`].
    pub fn from_u64(v: u64) -> CoreUid {
        CoreUid {
            machine: (v >> 32) as u32,
            socket: ((v >> 16) & 0xff) as u8,
            core: (v & 0xffff) as u16,
        }
    }
}

impl std::fmt::Display for CoreUid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}s{}c{}", self.machine, self.socket, self.core)
    }
}

/// One defect: a lesion on a unit with an activation model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultLesion {
    /// The afflicted functional unit.
    pub unit: FunctionalUnit,
    /// What the unit does when the defect fires.
    pub lesion: Lesion,
    /// When the defect fires.
    pub activation: Activation,
}

/// The complete fault description of one mercurial core.
///
/// Most mercurial cores have a single lesion; the §5 shared-hardware cases
/// naturally appear as a single [`FaultLesion`] on
/// [`FunctionalUnit::VectorPipe`] (which also serves copies), but profiles
/// with several independent lesions are supported because the paper reports
/// cores exhibiting "both wrong results and exceptions".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreFaultProfile {
    /// A human-readable name for the defect (from the [`crate::library`]
    /// catalog, or synthesized by the fleet sampler).
    pub name: String,
    /// The individual defects.
    pub lesions: Vec<FaultLesion>,
}

impl CoreFaultProfile {
    /// Creates a profile from its parts.
    pub fn new(name: impl Into<String>, lesions: Vec<FaultLesion>) -> CoreFaultProfile {
        CoreFaultProfile {
            name: name.into(),
            lesions,
        }
    }

    /// A profile with one lesion.
    pub fn single(
        name: impl Into<String>,
        unit: FunctionalUnit,
        lesion: Lesion,
        activation: Activation,
    ) -> CoreFaultProfile {
        CoreFaultProfile::new(
            name,
            vec![FaultLesion {
                unit,
                lesion,
                activation,
            }],
        )
    }

    /// The lesions afflicting a given unit.
    pub fn lesions_on(&self, unit: FunctionalUnit) -> impl Iterator<Item = &FaultLesion> {
        self.lesions.iter().filter(move |l| l.unit == unit)
    }

    /// Whether any lesion afflicts the given unit.
    pub fn afflicts(&self, unit: FunctionalUnit) -> bool {
        self.lesions.iter().any(|l| l.unit == unit)
    }

    /// The set of afflicted units (deduplicated, stable order).
    pub fn afflicted_units(&self) -> Vec<FunctionalUnit> {
        let mut units: Vec<FunctionalUnit> = self.lesions.iter().map(|l| l.unit).collect();
        units.sort_unstable();
        units.dedup();
        units
    }

    /// Whether the whole profile is still latent (no lesion has reached its
    /// onset age).
    pub fn is_latent(&self, age_hours: f64) -> bool {
        self.lesions
            .iter()
            .all(|l| !l.activation.aging.is_active(age_hours))
    }

    /// The earliest onset age over all lesions, in hours.
    pub fn earliest_onset_hours(&self) -> f64 {
        self.lesions
            .iter()
            .map(|l| l.activation.aging.onset_hours)
            .fold(f64::INFINITY, f64::min)
    }

    /// The next age at which any lesion's aging multiplier can switch
    /// from zero to non-zero, if any (see
    /// [`AgingModel::next_transition_age`]).
    ///
    /// `None` means no future onset remains: a core whose effective rates
    /// are all zero at `age_hours` will keep them zero forever, so the
    /// sparse simulation clock never needs to wake it again.
    pub fn next_transition_age(&self, age_hours: f64) -> Option<f64> {
        self.lesions
            .iter()
            .filter_map(|l| l.activation.aging.next_transition_age(age_hours))
            .fold(None, |acc, t| Some(acc.map_or(t, |best: f64| best.min(t))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::AgingModel;

    fn lesion(unit: FunctionalUnit, onset: f64) -> FaultLesion {
        FaultLesion {
            unit,
            lesion: Lesion::FlipBit { bit: 5 },
            activation: Activation {
                aging: AgingModel {
                    onset_hours: onset,
                    growth_per_year: 1.0,
                },
                ..Activation::always()
            },
        }
    }

    #[test]
    fn core_uid_u64_roundtrip() {
        let uid = CoreUid::new(123_456, 3, 77);
        assert_eq!(CoreUid::from_u64(uid.as_u64()), uid);
    }

    #[test]
    fn core_uid_u64_is_injective_on_components() {
        let a = CoreUid::new(1, 0, 0).as_u64();
        let b = CoreUid::new(0, 1, 0).as_u64();
        let c = CoreUid::new(0, 0, 1).as_u64();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn display_format() {
        assert_eq!(CoreUid::new(9, 1, 30).to_string(), "m9s1c30");
    }

    #[test]
    fn afflicted_units_dedup() {
        let p = CoreFaultProfile::new(
            "multi",
            vec![
                lesion(FunctionalUnit::VectorPipe, 0.0),
                lesion(FunctionalUnit::VectorPipe, 0.0),
                lesion(FunctionalUnit::ScalarAlu, 0.0),
            ],
        );
        assert_eq!(
            p.afflicted_units(),
            vec![FunctionalUnit::ScalarAlu, FunctionalUnit::VectorPipe]
        );
        assert!(p.afflicts(FunctionalUnit::VectorPipe));
        assert!(!p.afflicts(FunctionalUnit::Fma));
    }

    #[test]
    fn latency_and_onset() {
        let p = CoreFaultProfile::new(
            "latent",
            vec![
                lesion(FunctionalUnit::Fma, 2000.0),
                lesion(FunctionalUnit::MulDiv, 500.0),
            ],
        );
        assert!(p.is_latent(100.0));
        assert!(!p.is_latent(600.0));
        assert_eq!(p.earliest_onset_hours(), 500.0);
    }

    #[test]
    fn next_transition_age_takes_the_earliest_pending_onset() {
        let p = CoreFaultProfile::new(
            "latent",
            vec![
                lesion(FunctionalUnit::Fma, 2000.0),
                lesion(FunctionalUnit::MulDiv, 500.0),
            ],
        );
        assert_eq!(p.next_transition_age(0.0), Some(500.0));
        assert_eq!(p.next_transition_age(500.0), Some(2000.0));
        assert_eq!(p.next_transition_age(2000.0), None);
        let born = CoreFaultProfile::new("born", vec![lesion(FunctionalUnit::Fma, 0.0)]);
        assert_eq!(born.next_transition_age(0.0), None);
    }

    #[test]
    fn lesions_on_filters() {
        let p = CoreFaultProfile::new(
            "x",
            vec![
                lesion(FunctionalUnit::Fma, 0.0),
                lesion(FunctionalUnit::MulDiv, 0.0),
            ],
        );
        assert_eq!(p.lesions_on(FunctionalUnit::Fma).count(), 1);
        assert_eq!(p.lesions_on(FunctionalUnit::CryptoUnit).count(), 0);
    }
}
