//! A catalog of named fault profiles reproducing the paper's case studies.
//!
//! §2 lists "some specific examples where we have seen CEE"; each function
//! here builds a [`CoreFaultProfile`] with that example's observable
//! behavior. The fleet sampler mixes these archetypes (with randomized
//! parameters) when seeding mercurial cores into a simulated population.

use crate::activation::{Activation, AgingModel, DataPattern, FreqResponse};
use crate::lesion::{Lesion, LockFailureMode};
use crate::profile::{CoreFaultProfile, FaultLesion};
use crate::rng::CounterRng;
use crate::unit::FunctionalUnit;

/// §2: "A deterministic AES mis-computation, which was 'self-inverting':
/// encrypting and decrypting on the same core yielded the identity function,
/// but decryption elsewhere yielded gibberish."
///
/// The lesion XORs a fixed mask into one round of the crypto unit's data
/// path, identically for the encrypt and decrypt directions, so the two
/// passes cancel on the defective core only. Activation is `always`: the
/// paper calls this case *deterministic*.
pub fn self_inverting_aes() -> CoreFaultProfile {
    CoreFaultProfile::single(
        "self-inverting-aes",
        FunctionalUnit::CryptoUnit,
        Lesion::RoundXor {
            mask_hi: 0x0000_0400_0000_0000,
            mask_lo: 0x0000_0000_0002_0000,
        },
        Activation::always(),
    )
}

/// §2: "Repeated bit-flips in strings, at a particular bit position (which
/// stuck out as unlikely to be coding bugs)."
///
/// A stuck-at defect in the vector pipe (string/copy operations execute
/// there), firing intermittently.
pub fn string_bitflip(bit: u8, rate: f64) -> CoreFaultProfile {
    CoreFaultProfile::single(
        "string-bitflip",
        FunctionalUnit::VectorPipe,
        Lesion::StuckBit {
            bit: bit & 63,
            value: true,
        },
        Activation::with_prob(rate),
    )
}

/// §2: "Violations of lock semantics leading to application data corruption
/// and crashes."
pub fn lock_violator(rate: f64) -> CoreFaultProfile {
    CoreFaultProfile::single(
        "lock-violator",
        FunctionalUnit::Atomics,
        Lesion::LockViolation {
            mode: LockFailureMode::PhantomSuccess,
        },
        Activation::with_prob(rate),
    )
}

/// §5: "the same mercurial core manifests CEEs both with certain data-copy
/// operations and with certain vector operations … both kinds of operations
/// share the same hardware logic."
///
/// A single vector-pipe profile with two lesions: a copy-corruption lesion
/// and a lane corruption for explicit vector ops. Because the simulated ISA
/// routes both instruction families through the vector pipe, one physical
/// defect disrupts both — and a "small code change" that switches a library
/// from scalar to vector copies suddenly exposes it.
pub fn vector_copy_coupled(rate: f64) -> CoreFaultProfile {
    CoreFaultProfile::new(
        "vector-copy-coupled",
        vec![
            FaultLesion {
                unit: FunctionalUnit::VectorPipe,
                lesion: Lesion::CorruptCopy {
                    stride: 8,
                    offset: 3,
                    mask: 0x0000_0000_0100_0000,
                },
                activation: Activation::with_prob(rate),
            },
            FaultLesion {
                unit: FunctionalUnit::VectorPipe,
                lesion: Lesion::FlipBit { bit: 24 },
                activation: Activation::with_prob(rate),
            },
        ],
    )
}

/// §5: a strongly frequency-sensitive defect — fails under turbo.
pub fn freq_sensitive_fma(rate_at_turbo: f64) -> CoreFaultProfile {
    CoreFaultProfile::single(
        "freq-sensitive-fma",
        FunctionalUnit::Fma,
        Lesion::CorruptValue,
        Activation {
            base_prob: rate_at_turbo / 100.0,
            freq: FreqResponse::HighFreq {
                knee_mhz: 2600,
                sat_mhz: 3200,
                max_boost: 100.0,
            },
            ..Activation::always()
        },
    )
}

/// §5: the surprising case — *lower* frequency increases the failure rate,
/// because DVFS drops voltage along with frequency.
pub fn low_freq_worse_alu(rate_at_floor: f64) -> CoreFaultProfile {
    CoreFaultProfile::single(
        "low-freq-worse-alu",
        FunctionalUnit::ScalarAlu,
        Lesion::FlipBit { bit: 13 },
        Activation {
            base_prob: rate_at_floor / 50.0,
            freq: FreqResponse::LowFreq {
                knee_mhz: 2200,
                floor_mhz: 1200,
                max_boost: 50.0,
            },
            ..Activation::always()
        },
    )
}

/// §2/§6: a defect that stays latent until well into the core's service
/// life, then degrades — the reason "testing becomes part of the full
/// lifecycle of a CPU".
pub fn late_onset_muldiv(onset_hours: f64, rate: f64) -> CoreFaultProfile {
    CoreFaultProfile::single(
        "late-onset-muldiv",
        FunctionalUnit::MulDiv,
        Lesion::XorMask { mask: 0x8000_0000 },
        Activation {
            base_prob: rate,
            aging: AgingModel {
                onset_hours,
                growth_per_year: 3.0,
            },
            ..Activation::always()
        },
    )
}

/// §2: data-pattern-dependent corruption — fires only on high-toggle
/// operands (a voltage-droop-like trigger).
pub fn data_pattern_vector(rate: f64) -> CoreFaultProfile {
    CoreFaultProfile::single(
        "data-pattern-vector",
        FunctionalUnit::VectorPipe,
        Lesion::FlipBit { bit: 51 },
        Activation {
            base_prob: rate,
            pattern: DataPattern::PopcountAtLeast(40),
            ..Activation::always()
        },
    )
}

/// §2: "Corruption of kernel state resulting in process and kernel crashes"
/// — a control-path defect in address generation that mostly produces loud
/// failures (segfaults, machine checks) rather than silent corruption.
pub fn addressgen_crasher(rate: f64) -> CoreFaultProfile {
    CoreFaultProfile::single(
        "addressgen-crasher",
        FunctionalUnit::AddressGen,
        Lesion::FlipBit { bit: 33 },
        Activation::with_prob(rate),
    )
}

/// §2: "Data corruptions exhibited by various load, store … operations."
pub fn loadstore_corruptor(rate: f64) -> CoreFaultProfile {
    CoreFaultProfile::single(
        "loadstore-corruptor",
        FunctionalUnit::LoadStore,
        Lesion::CorruptValue,
        Activation::with_prob(rate),
    )
}

/// The archetype identifiers in the catalog, for samplers and reports.
pub const ARCHETYPES: [&str; 10] = [
    "self-inverting-aes",
    "string-bitflip",
    "lock-violator",
    "vector-copy-coupled",
    "freq-sensitive-fma",
    "low-freq-worse-alu",
    "late-onset-muldiv",
    "data-pattern-vector",
    "addressgen-crasher",
    "loadstore-corruptor",
];

/// Samples a randomized mercurial-core profile.
///
/// Draws an archetype and then randomizes its key parameters: the
/// per-operation rate is **log-uniform over six decades** (1e-9 .. 1e-3),
/// reproducing §2's "corruption rates vary by many orders of magnitude …
/// across defective cores"; onset ages for latent defects are spread over
/// the first four years of service.
pub fn sample_profile(seed: u64, draw_id: u64) -> CoreFaultProfile {
    let mut rng = CounterRng::from_parts(seed, draw_id, 0x9e37, 0);
    let rate = 10f64.powf(-9.0 + 6.0 * rng.next_uniform());
    let archetype = ARCHETYPES[rng.next_below(ARCHETYPES.len() as u64) as usize];
    let mut profile = match archetype {
        "self-inverting-aes" => {
            // Randomize the round mask so distinct cores have distinct
            // signatures; keep it deterministic (always fires) as in §2.
            let hi = rng.next_u64_raw();
            let lo = rng.next_u64_raw();
            CoreFaultProfile::single(
                "self-inverting-aes",
                FunctionalUnit::CryptoUnit,
                Lesion::RoundXor {
                    mask_hi: hi,
                    mask_lo: lo | 1,
                },
                Activation::always(),
            )
        }
        "string-bitflip" => string_bitflip(rng.next_below(64) as u8, rate),
        "lock-violator" => lock_violator(rate),
        "vector-copy-coupled" => vector_copy_coupled(rate),
        "freq-sensitive-fma" => freq_sensitive_fma((rate * 100.0).min(1.0)),
        "low-freq-worse-alu" => low_freq_worse_alu((rate * 50.0).min(1.0)),
        "late-onset-muldiv" => {
            let onset = rng.next_uniform() * 4.0 * 365.25 * 24.0;
            late_onset_muldiv(onset, rate)
        }
        "data-pattern-vector" => data_pattern_vector(rate),
        "addressgen-crasher" => addressgen_crasher(rate),
        "loadstore-corruptor" => loadstore_corruptor(rate),
        _ => unreachable!("archetype list and match arms agree"),
    };
    // A minority of sampled defects are additionally latent even when the
    // archetype itself is not aging-specific (§6: "some cores only become
    // defective after considerable time has passed").
    if profile.name != "late-onset-muldiv" && rng.next_bool(0.25) {
        let onset = rng.next_uniform() * 3.0 * 365.25 * 24.0;
        for l in &mut profile.lesions {
            l.activation.aging = AgingModel {
                onset_hours: onset,
                growth_per_year: 2.0,
            };
        }
    }
    profile
}

impl CounterRng {
    /// A raw `u64` draw advancing the counter (local helper used by the
    /// sampler; kept out of the public surface of `rng`).
    fn next_u64_raw(&mut self) -> u64 {
        use rand::RngCore;
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_paper_case() {
        // One profile per §2/§5 case study, each touching the right unit.
        assert!(self_inverting_aes().afflicts(FunctionalUnit::CryptoUnit));
        assert!(string_bitflip(7, 0.01).afflicts(FunctionalUnit::VectorPipe));
        assert!(lock_violator(0.01).afflicts(FunctionalUnit::Atomics));
        assert!(vector_copy_coupled(0.01).afflicts(FunctionalUnit::VectorPipe));
        assert!(freq_sensitive_fma(0.5).afflicts(FunctionalUnit::Fma));
        assert!(low_freq_worse_alu(0.5).afflicts(FunctionalUnit::ScalarAlu));
        assert!(late_onset_muldiv(100.0, 0.1).afflicts(FunctionalUnit::MulDiv));
        assert!(data_pattern_vector(0.1).afflicts(FunctionalUnit::VectorPipe));
        assert!(addressgen_crasher(0.1).afflicts(FunctionalUnit::AddressGen));
        assert!(loadstore_corruptor(0.1).afflicts(FunctionalUnit::LoadStore));
    }

    #[test]
    fn self_inverting_profile_is_deterministic_and_self_inverting() {
        let p = self_inverting_aes();
        assert_eq!(p.lesions.len(), 1);
        assert!(p.lesions[0].lesion.is_self_inverting());
        assert_eq!(p.lesions[0].activation.base_prob, 1.0);
    }

    #[test]
    fn sampler_is_deterministic() {
        for id in 0..20 {
            assert_eq!(sample_profile(99, id), sample_profile(99, id));
        }
        assert_ne!(sample_profile(99, 0), sample_profile(100, 0));
    }

    #[test]
    fn sampler_spans_orders_of_magnitude() {
        // §2: "corruption rates vary by many orders of magnitude".
        let mut min_rate = f64::INFINITY;
        let mut max_rate = 0.0f64;
        for id in 0..500 {
            let p = sample_profile(7, id);
            for l in &p.lesions {
                if l.activation.base_prob < 1.0 {
                    min_rate = min_rate.min(l.activation.base_prob);
                    max_rate = max_rate.max(l.activation.base_prob);
                }
            }
        }
        assert!(
            max_rate / min_rate > 1e3,
            "spread was only {:.1e}x",
            max_rate / min_rate
        );
    }

    #[test]
    fn sampler_hits_every_archetype() {
        let mut seen = std::collections::HashSet::new();
        for id in 0..400 {
            seen.insert(sample_profile(3, id).name.clone());
        }
        for a in ARCHETYPES {
            assert!(seen.contains(a), "archetype {a} never sampled");
        }
    }

    #[test]
    fn some_sampled_profiles_are_latent() {
        let mut latent = 0;
        for id in 0..300 {
            if sample_profile(5, id).is_latent(0.0) {
                latent += 1;
            }
        }
        // Roughly 25% latency plus the late-onset archetype.
        assert!(latent > 30, "only {latent} latent profiles out of 300");
    }
}
