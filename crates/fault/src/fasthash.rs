//! A fast, deterministic hasher for hot-path maps keyed by small ids.
//!
//! `std`'s default `HashMap` hasher (SipHash) is keyed per-process for
//! HashDoS resistance, which this simulator neither needs (keys are
//! internal ids, not attacker-controlled input) nor wants: at fleet-study
//! scale the driver performs millions of map operations per run, and
//! SipHash's per-lookup cost dominates. `FxHasher` is a Fowler–Noll–Vo /
//! multiply-mix hybrid in the spirit of rustc's `FxHashMap`: a wrapping
//! multiply plus xor-shift per word, fully deterministic across runs and
//! platforms.
//!
//! Determinism note: swapping the hasher changes only *iteration order*
//! of maps, never their contents. Every consumer in this workspace
//! either sorts before emitting or only performs point lookups, so the
//! §4.1 bit-for-bit contract is unaffected — but new consumers must keep
//! that discipline (never emit map iteration order directly).

use std::hash::{BuildHasherDefault, Hasher};

/// A deterministic multiply-mix hasher for internal ids.
///
/// Not HashDoS-resistant; use only for maps keyed by trusted internal
/// values such as [`CoreUid`](crate::CoreUid) or machine indices.
#[derive(Default)]
pub struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        // splitmix64-style finalizer step: multiply then xor-shift. One
        // round per written word is plenty for well-distributed ids.
        let mut x = self.0 ^ word;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        self.0 = x;
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the deterministic fast hasher.
pub type FastMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the deterministic fast hasher.
pub type FastSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreUid;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_builders() {
        let uid = CoreUid::new(123_456, 1, 17);
        assert_eq!(hash_of(&uid), hash_of(&uid));
        assert_ne!(hash_of(&uid), hash_of(&CoreUid::new(123_456, 1, 18)));
    }

    #[test]
    fn nearby_ids_spread() {
        // Sequential machine ids must not collide in the low bits, or
        // every fleet map degenerates to a few buckets.
        // 1000 uniform draws into 4096 buckets leave ~887 distinct by the
        // birthday bound; far fewer means the low bits are degenerate.
        let mut low_bits = std::collections::HashSet::new();
        for m in 0..1000u32 {
            low_bits.insert(hash_of(&m) & 0xfff);
        }
        assert!(low_bits.len() > 800, "only {} distinct", low_bits.len());
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FastMap<CoreUid, u64> = FastMap::default();
        let mut set: FastSet<CoreUid> = FastSet::default();
        for m in 0..100 {
            map.insert(CoreUid::new(m, 0, 0), m as u64);
            set.insert(CoreUid::new(m, 1, 1));
        }
        assert_eq!(map[&CoreUid::new(42, 0, 0)], 42);
        assert!(set.contains(&CoreUid::new(42, 1, 1)));
        assert!(!set.contains(&CoreUid::new(42, 0, 0)));
    }
}
