//! Functional units of a core.
//!
//! The paper (§5) explains that "CPUs are gradually becoming sets of discrete
//! accelerators around a shared register file", which makes CEEs "highly
//! specific in the behavior they disrupt, while the majority of the core
//! remains correct". We therefore model a core as a collection of functional
//! units; every lesion attaches to one unit, and every instruction executes
//! on one unit.
//!
//! Crucially, the instruction → unit mapping is *not* one-to-one with the
//! architectural taxonomy: the paper found "more than one case where the same
//! mercurial core manifests CEEs both with certain data-copy operations and
//! with certain vector operations […] both kinds of operations share the same
//! hardware logic". Our simulated ISA routes bulk-copy instructions through
//! [`FunctionalUnit::VectorPipe`], so a single vector-pipe lesion disrupts
//! both instruction families, just as observed in production.

use serde::{Deserialize, Serialize};

/// An execution unit within a core to which a defect can be localized.
///
/// The set is deliberately coarse: it matches the granularity at which the
/// paper could attribute failures from the outside ("the mapping of
/// instructions to possibly-defective hardware is non-obvious"), not the
/// true microarchitectural block diagram (which the authors note they do not
/// have access to either).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FunctionalUnit {
    /// Scalar integer ALU: add/sub/logic/shift/compare.
    ScalarAlu,
    /// Integer multiply and divide.
    MulDiv,
    /// SIMD/vector pipe. Bulk copy operations also execute here (§5).
    VectorPipe,
    /// Floating-point add/multiply/FMA pipeline.
    Fma,
    /// Load/store unit: ordinary memory accesses.
    LoadStore,
    /// Atomic/locked operations: compare-and-swap, fetch-and-add, fences.
    Atomics,
    /// Cryptographic accelerator: AES rounds, carry-less multiply.
    CryptoUnit,
    /// Branch resolution and indirect-target computation.
    BranchUnit,
    /// Effective-address generation (base + index*scale + displacement).
    AddressGen,
}

impl FunctionalUnit {
    /// All functional units, in a stable order.
    pub const ALL: [FunctionalUnit; 9] = [
        FunctionalUnit::ScalarAlu,
        FunctionalUnit::MulDiv,
        FunctionalUnit::VectorPipe,
        FunctionalUnit::Fma,
        FunctionalUnit::LoadStore,
        FunctionalUnit::Atomics,
        FunctionalUnit::CryptoUnit,
        FunctionalUnit::BranchUnit,
        FunctionalUnit::AddressGen,
    ];

    /// A stable small integer identifier, usable as an array index.
    pub fn index(self) -> usize {
        match self {
            FunctionalUnit::ScalarAlu => 0,
            FunctionalUnit::MulDiv => 1,
            FunctionalUnit::VectorPipe => 2,
            FunctionalUnit::Fma => 3,
            FunctionalUnit::LoadStore => 4,
            FunctionalUnit::Atomics => 5,
            FunctionalUnit::CryptoUnit => 6,
            FunctionalUnit::BranchUnit => 7,
            FunctionalUnit::AddressGen => 8,
        }
    }

    /// Inverse of [`FunctionalUnit::index`].
    ///
    /// Returns `None` for out-of-range indices.
    pub fn from_index(index: usize) -> Option<FunctionalUnit> {
        FunctionalUnit::ALL.get(index).copied()
    }

    /// A short, stable, lowercase name (used in reports and scenario files).
    pub fn name(self) -> &'static str {
        match self {
            FunctionalUnit::ScalarAlu => "scalar-alu",
            FunctionalUnit::MulDiv => "mul-div",
            FunctionalUnit::VectorPipe => "vector-pipe",
            FunctionalUnit::Fma => "fma",
            FunctionalUnit::LoadStore => "load-store",
            FunctionalUnit::Atomics => "atomics",
            FunctionalUnit::CryptoUnit => "crypto",
            FunctionalUnit::BranchUnit => "branch",
            FunctionalUnit::AddressGen => "address-gen",
        }
    }

    /// Parses the output of [`FunctionalUnit::name`].
    pub fn from_name(name: &str) -> Option<FunctionalUnit> {
        FunctionalUnit::ALL
            .iter()
            .copied()
            .find(|u| u.name() == name)
    }

    /// Whether a lesion in this unit tends to produce *architecturally loud*
    /// failures (exceptions, machine checks) rather than purely silent wrong
    /// answers.
    ///
    /// Defects in address generation or branching corrupt control flow and
    /// addresses, so they frequently trip segmentation faults; defects in
    /// data-computation units mostly produce silent wrong values. This mirrors
    /// the paper's observation (§2) that "defective cores appear to exhibit
    /// both wrong results and exceptions", with the mix depending on what
    /// malfunctions.
    pub fn is_control_path(self) -> bool {
        matches!(
            self,
            FunctionalUnit::BranchUnit | FunctionalUnit::AddressGen | FunctionalUnit::LoadStore
        )
    }
}

impl std::fmt::Display for FunctionalUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for unit in FunctionalUnit::ALL {
            assert_eq!(FunctionalUnit::from_index(unit.index()), Some(unit));
        }
        assert_eq!(FunctionalUnit::from_index(FunctionalUnit::ALL.len()), None);
    }

    #[test]
    fn name_roundtrip() {
        for unit in FunctionalUnit::ALL {
            assert_eq!(FunctionalUnit::from_name(unit.name()), Some(unit));
        }
        assert_eq!(FunctionalUnit::from_name("made-up"), None);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; FunctionalUnit::ALL.len()];
        for unit in FunctionalUnit::ALL {
            assert!(!seen[unit.index()], "duplicate index for {unit}");
            seen[unit.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(FunctionalUnit::VectorPipe.to_string(), "vector-pipe");
    }

    #[test]
    fn control_path_classification() {
        assert!(FunctionalUnit::BranchUnit.is_control_path());
        assert!(FunctionalUnit::AddressGen.is_control_path());
        assert!(!FunctionalUnit::CryptoUnit.is_control_path());
        assert!(!FunctionalUnit::VectorPipe.is_control_path());
    }
}
