//! Deterministic, order-independent randomness.
//!
//! Fleet simulations interleave millions of operations across thousands of
//! simulated cores; if activation draws came from one shared sequential RNG,
//! any change in iteration order (a new screener, a reordered scheduler
//! decision) would perturb *every* downstream draw and make experiments
//! impossible to compare. Instead we use a **counter-based** generator: each
//! draw is a pure function of `(seed, stream, counter)`, in the spirit of
//! SplitMix64. Two runs that perform the same logical operation get the same
//! draw no matter what happened in between.

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// SplitMix64's finalizer: a high-quality 64-bit mixing function.
///
/// This passes the usual avalanche tests and is the standard tool for
/// counter-based generation (Steele et al., "Fast Splittable Pseudorandom
/// Number Generators").
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Combines a seed with up to three stream identifiers into one 64-bit key.
#[inline]
pub fn stream_key(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    // Each component is mixed before combination so that low-entropy ids
    // (small integers) still decorrelate the streams.
    mix64(seed)
        ^ mix64(a.wrapping_mul(0xd6e8_feb8_6659_fd93))
        ^ mix64(b.wrapping_mul(0xa076_1d64_78bd_642f))
        ^ mix64(c.wrapping_mul(0xe703_7ed1_a0b4_28db))
}

/// A counter-based pseudorandom generator.
///
/// `CounterRng` is `Copy`-cheap to construct, has no heap state, and every
/// output is a pure function of `(key, counter)`. It implements
/// [`rand::RngCore`] so it can drive the `rand` distribution machinery.
///
/// # Examples
///
/// ```
/// use mercurial_fault::CounterRng;
/// use rand::RngCore;
///
/// let mut a = CounterRng::from_parts(42, 7, 3, 0);
/// let mut b = CounterRng::from_parts(42, 7, 3, 0);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterRng {
    key: u64,
    counter: u64,
}

impl CounterRng {
    /// Creates a generator for a given key, starting at counter zero.
    pub fn new(key: u64) -> CounterRng {
        CounterRng { key, counter: 0 }
    }

    /// Creates a generator keyed on `(seed, a, b, c)` stream identifiers.
    pub fn from_parts(seed: u64, a: u64, b: u64, c: u64) -> CounterRng {
        CounterRng::new(stream_key(seed, a, b, c))
    }

    /// The draw at an explicit counter value, without advancing state.
    #[inline]
    pub fn at(&self, counter: u64) -> u64 {
        mix64(self.key ^ counter.wrapping_mul(0x2545_f491_4f6c_dd1d))
    }

    /// A uniform `f64` in `[0, 1)` at an explicit counter value.
    #[inline]
    pub fn uniform_at(&self, counter: u64) -> f64 {
        // 53 bits of mantissa.
        (self.at(counter) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The current counter value.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// A uniform `f64` in `[0, 1)`, advancing the counter.
    #[inline]
    pub fn next_uniform(&mut self) -> f64 {
        let v = self.uniform_at(self.counter);
        self.counter = self.counter.wrapping_add(1);
        v
    }

    /// A Bernoulli draw with probability `p`, advancing the counter.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_uniform() < p
    }

    /// A uniform integer in `[0, n)`, advancing the counter.
    ///
    /// Uses the widening-multiply method; bias is negligible for the `n`
    /// values used in simulation (far below 2^32).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0) is meaningless");
        let raw = self.at(self.counter);
        self.counter = self.counter.wrapping_add(1);
        ((raw as u128 * n as u128) >> 64) as u64
    }

    /// An exponentially distributed draw with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    #[inline]
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = self.next_uniform();
        // `1 - u` is in (0, 1], so the log is finite.
        -(1.0 - u).ln() / rate
    }

    /// A standard normal draw (Box–Muller, consuming two counter values).
    pub fn next_normal(&mut self) -> f64 {
        let u1 = self.next_uniform();
        let u2 = self.next_uniform();
        let r = (-2.0 * (1.0 - u1).ln()).sqrt();
        r * (std::f64::consts::TAU * u2).cos()
    }

    /// A log-normal draw with the given parameters of the underlying normal.
    pub fn next_lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.next_normal()).exp()
    }
}

impl RngCore for CounterRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let v = self.at(self.counter);
        self.counter = self.counter.wrapping_add(1);
        v
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a = CounterRng::from_parts(1, 2, 3, 4);
        let b = CounterRng::from_parts(1, 2, 3, 4);
        for c in 0..100 {
            assert_eq!(a.at(c), b.at(c));
        }
    }

    #[test]
    fn different_streams_decorrelate() {
        let a = CounterRng::from_parts(1, 2, 3, 4);
        let b = CounterRng::from_parts(1, 2, 3, 5);
        let same = (0..1000).filter(|&c| a.at(c) == b.at(c)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = CounterRng::new(99);
        for _ in 0..10_000 {
            let u = rng.next_uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = CounterRng::new(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_uniform()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn bernoulli_rate_matches() {
        let mut rng = CounterRng::new(11);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.next_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate was {rate}");
    }

    #[test]
    fn next_below_covers_range() {
        let mut rng = CounterRng::new(13);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.next_below(10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn next_below_zero_panics() {
        CounterRng::new(0).next_below(0);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = CounterRng::new(17);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_exp(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = CounterRng::new(19);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.next_normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean was {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance was {var}");
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = CounterRng::new(23);
        let mut b = CounterRng::new(23);
        let mut ba = [0u8; 17];
        let mut bb = [0u8; 17];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn mix64_avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let x = 0x0123_4567_89ab_cdefu64;
        let flipped = (mix64(x) ^ mix64(x ^ 1)).count_ones();
        assert!((16..=48).contains(&flipped), "flipped {flipped} bits");
    }
}
