//! # mercurial-fault
//!
//! Models of *corrupt execution errors* (CEEs) — the silent, intermittent,
//! core-specific computational defects described in "Cores that don't count"
//! (Hochschild et al., HotOS '21).
//!
//! The paper observes that mercurial cores:
//!
//! * afflict **specific cores** on multi-core CPUs, not whole chips (§1);
//! * are correlated with **specific execution units** within a core, so that
//!   seemingly unrelated instructions (e.g. data-copy and vector ops) fail
//!   together because they share hardware (§5);
//! * fail **non-deterministically at variable rate**, with rates spanning
//!   orders of magnitude across cores, workloads and operating points (§2);
//! * are sensitive to **frequency, voltage and temperature** in complex,
//!   sometimes non-monotone ways — "lower frequency sometimes (surprisingly)
//!   increases the failure rate" (§5);
//! * may stay **latent** and only manifest after years of service, and often
//!   **get worse with time** (§2, §4);
//! * can depend on **data patterns** (§2).
//!
//! This crate provides the vocabulary for all of that:
//!
//! * [`unit::FunctionalUnit`] — the execution units faults attach to;
//! * [`lesion::Lesion`] — *what* a defective unit does to a result;
//! * [`activation::Activation`] — *when* the defect fires (operating point,
//!   data patterns, aging, duty cycle);
//! * [`profile::CoreFaultProfile`] — the complete description of one
//!   mercurial core;
//! * [`library`] — a catalog of named profiles reproducing every concrete
//!   case study in §2 of the paper;
//! * [`inject::Injector`] — deterministic, replayable fault application;
//! * [`symptom::SymptomClass`] — the paper's §2 risk taxonomy of outcomes.
//!
//! Everything is deterministic given a seed: activation draws use a
//! counter-based generator keyed on `(seed, core, op-sequence)`, so a fleet
//! simulation can be replayed bit-for-bit regardless of scheduling order.
#![warn(missing_docs)]

pub mod activation;
pub mod fasthash;
pub mod inject;
pub mod lesion;
pub mod library;
pub mod oppoint;
pub mod profile;
pub mod rng;
pub mod symptom;
pub mod unit;

pub use activation::{Activation, AgingModel, DataPattern, FreqResponse};
pub use fasthash::{FastMap, FastSet, FxBuildHasher, FxHasher};
pub use inject::{Injector, OpContext, OpOutcome};
pub use lesion::{Lesion, LockFailureMode};
pub use oppoint::{DvfsCurve, OperatingPoint};
pub use profile::{CoreFaultProfile, CoreUid, FaultLesion};
pub use rng::CounterRng;
pub use symptom::SymptomClass;
pub use unit::FunctionalUnit;
