//! Operating points: frequency, voltage, temperature.
//!
//! The paper (§2) notes that operators "partially control operating
//! conditions (frequency, voltage, temperature, or 'f, V, T')", and footnote
//! 1 explains that "modern CPUs tightly couple f and V; these are not
//! normally independently adjustable by users, while T is somewhat
//! controllable". [`DvfsCurve`] models that coupling; screening code sweeps
//! [`OperatingPoint`]s through the reachable envelope.

use serde::{Deserialize, Serialize};

/// A core's operating condition: the paper's "(f, V, T)" triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Core clock frequency in MHz.
    pub freq_mhz: u32,
    /// Supply voltage in millivolts.
    pub voltage_mv: u32,
    /// Die temperature in degrees Celsius.
    pub temp_c: i32,
}

impl OperatingPoint {
    /// A typical server nominal operating point.
    pub const NOMINAL: OperatingPoint = OperatingPoint {
        freq_mhz: 2600,
        voltage_mv: 950,
        temp_c: 65,
    };

    /// Creates an operating point.
    pub fn new(freq_mhz: u32, voltage_mv: u32, temp_c: i32) -> OperatingPoint {
        OperatingPoint {
            freq_mhz,
            voltage_mv,
            temp_c,
        }
    }
}

impl Default for OperatingPoint {
    fn default() -> OperatingPoint {
        OperatingPoint::NOMINAL
    }
}

impl std::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} MHz / {} mV / {} C",
            self.freq_mhz, self.voltage_mv, self.temp_c
        )
    }
}

/// A dynamic-frequency-and-voltage-scaling curve coupling f and V.
///
/// Users (and our simulated scheduler/screeners) pick a *frequency step*;
/// the hardware then selects the matching voltage. This reproduces the
/// paper's footnote 1: f and V are not independently adjustable, which is
/// "one of several reasons why lower frequency sometimes (surprisingly)
/// increases the failure rate" — at a lower DVFS step the voltage also
/// drops, shrinking timing margin for some defects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsCurve {
    /// `(freq_mhz, voltage_mv)` pairs, sorted by ascending frequency.
    steps: Vec<(u32, u32)>,
}

impl DvfsCurve {
    /// Builds a curve from `(freq_mhz, voltage_mv)` pairs.
    ///
    /// Pairs are sorted by frequency; duplicate frequencies keep the last
    /// entry.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty.
    pub fn new(mut steps: Vec<(u32, u32)>) -> DvfsCurve {
        assert!(!steps.is_empty(), "a DVFS curve needs at least one step");
        steps.sort_by_key(|&(f, _)| f);
        steps.dedup_by_key(|&mut (f, _)| f);
        DvfsCurve { steps }
    }

    /// A representative server DVFS curve (five P-states).
    pub fn typical_server() -> DvfsCurve {
        DvfsCurve::new(vec![
            (1200, 750),
            (1800, 820),
            (2200, 880),
            (2600, 950),
            (3200, 1080),
        ])
    }

    /// Number of frequency steps.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// All `(freq_mhz, voltage_mv)` steps, ascending by frequency.
    pub fn steps(&self) -> &[(u32, u32)] {
        &self.steps
    }

    /// The operating point at a given step index (clamped to range) with the
    /// provided temperature.
    pub fn point_at_step(&self, step: usize, temp_c: i32) -> OperatingPoint {
        let (f, v) = self.steps[step.min(self.steps.len() - 1)];
        OperatingPoint::new(f, v, temp_c)
    }

    /// The voltage the hardware selects for a requested frequency: the
    /// voltage of the lowest step whose frequency is >= the request, or the
    /// top step's voltage if the request exceeds the curve.
    pub fn voltage_for(&self, freq_mhz: u32) -> u32 {
        for &(f, v) in &self.steps {
            if f >= freq_mhz {
                return v;
            }
        }
        self.steps.last().expect("curve is non-empty").1
    }

    /// The highest-frequency step.
    pub fn max_point(&self, temp_c: i32) -> OperatingPoint {
        self.point_at_step(self.steps.len() - 1, temp_c)
    }

    /// The lowest-frequency step.
    pub fn min_point(&self, temp_c: i32) -> OperatingPoint {
        self.point_at_step(0, temp_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_sorts_and_dedups() {
        let c = DvfsCurve::new(vec![(2600, 950), (1200, 750), (2600, 940)]);
        assert_eq!(c.step_count(), 2);
        assert_eq!(c.steps()[0], (1200, 750));
    }

    #[test]
    fn voltage_tracks_frequency() {
        let c = DvfsCurve::typical_server();
        assert_eq!(c.voltage_for(1200), 750);
        assert_eq!(c.voltage_for(2000), 880); // next step up
        assert_eq!(c.voltage_for(9000), 1080); // clamped to top
    }

    #[test]
    fn point_at_step_clamps() {
        let c = DvfsCurve::typical_server();
        let top = c.point_at_step(999, 70);
        assert_eq!(top.freq_mhz, 3200);
        assert_eq!(top.temp_c, 70);
    }

    #[test]
    fn lower_step_means_lower_voltage() {
        // The coupling behind the paper's "lower frequency sometimes
        // increases the failure rate": stepping down drops voltage too.
        let c = DvfsCurve::typical_server();
        let lo = c.min_point(65);
        let hi = c.max_point(65);
        assert!(lo.voltage_mv < hi.voltage_mv);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_curve_panics() {
        let _ = DvfsCurve::new(vec![]);
    }

    #[test]
    fn display_formats() {
        let p = OperatingPoint::NOMINAL;
        assert_eq!(p.to_string(), "2600 MHz / 950 mV / 65 C");
    }
}
