//! Lesions: what a defective unit does to a result when the defect fires.
//!
//! Each variant reproduces a concrete failure mode reported in §2 of the
//! paper:
//!
//! * "Repeated bit-flips in strings, at a particular bit position (which
//!   stuck out as unlikely to be coding bugs)" → [`Lesion::FlipBit`],
//!   [`Lesion::StuckBit`];
//! * "A deterministic AES mis-computation, which was 'self-inverting'" →
//!   [`Lesion::RoundXor`] on the crypto unit (the XOR perturbs both the
//!   encrypt and decrypt round paths identically, so encrypt-then-decrypt on
//!   the same core is the identity while decryption elsewhere yields
//!   gibberish);
//! * "Violations of lock semantics leading to application data corruption
//!   and crashes" → [`Lesion::LockViolation`];
//! * "Data corruptions exhibited by various load, store, vector, and
//!   coherence operations" → [`Lesion::CorruptValue`], [`Lesion::SkippedOp`],
//!   [`Lesion::LatchedValue`].

use serde::{Deserialize, Serialize};

/// How a defective atomic unit violates lock semantics (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LockFailureMode {
    /// A compare-and-swap reports success without performing the store:
    /// two threads can both believe they hold the lock.
    PhantomSuccess,
    /// A compare-and-swap performs the store but reports failure: the lock
    /// is taken yet nobody believes they own it (leading to deadlock or a
    /// retry storm).
    PhantomFailure,
    /// A store that should be atomic is torn: only the low half lands.
    TornStore,
}

/// A specific defect behavior attached to one functional unit.
///
/// Lesions describe the *transfer function* of the broken hardware: given
/// the correct 64-bit result of an operation, what comes out instead. (The
/// per-lane application to vector operations and special handling for locks
/// and crypto rounds live in the consumers — `mercurial-simcpu` and the
/// fleet's analytic workload model.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Lesion {
    /// Output bit `bit` is stuck at `value`.
    ///
    /// Models a defective output latch; produces the paper's "repeated
    /// bit-flips … at a particular bit position" whenever the correct value
    /// disagrees with the stuck level.
    StuckBit {
        /// Bit position, 0–63.
        bit: u8,
        /// The level the bit is stuck at.
        value: bool,
    },
    /// Output bit `bit` is inverted when the lesion fires.
    FlipBit {
        /// Bit position, 0–63.
        bit: u8,
    },
    /// The result is XORed with a fixed mask.
    ///
    /// Deterministic data corruption with a stable signature: repeated runs
    /// of the same computation mis-compute the same way, matching the
    /// "deterministic … mis-computation" cases in §2.
    XorMask {
        /// The corruption mask.
        mask: u64,
    },
    /// A cryptographic *round* output is XORed with a fixed mask.
    ///
    /// Because the same mask perturbs the corresponding round of both the
    /// encryption and decryption data paths, encrypt-then-decrypt **on the
    /// same core** cancels out (the identity function), while ciphertext
    /// produced on this core decrypts to gibberish anywhere else — the
    /// paper's self-inverting AES case study.
    RoundXor {
        /// Mask applied to the 128-bit round state, as two 64-bit halves.
        mask_hi: u64,
        /// Low half of the mask.
        mask_lo: u64,
    },
    /// The operation is skipped: the result is the first source operand
    /// passed through unchanged.
    SkippedOp,
    /// The unit re-emits the result of the *previous* operation it executed
    /// (a latched pipeline register).
    LatchedValue,
    /// The result is replaced by a pseudorandom corruption of itself
    /// (result XOR a draw keyed on the operand), modeling noisy datapath
    /// failures with no stable signature.
    CorruptValue,
    /// An atomic operation violates lock semantics.
    LockViolation {
        /// Which way the semantics break.
        mode: LockFailureMode,
    },
    /// During bulk copies, every `stride`-th word is XORed with `mask`.
    ///
    /// Models the §5 case where copy operations and vector operations fail
    /// together: in our ISA both execute on the vector pipe, and this lesion
    /// corrupts lane `offset` of each affected beat.
    CorruptCopy {
        /// Corrupt every `stride`-th word (must be >= 1).
        stride: u32,
        /// Lane offset within the beat.
        offset: u32,
        /// Corruption mask.
        mask: u64,
    },
}

impl Lesion {
    /// Applies the lesion's transfer function to a correct scalar result.
    ///
    /// `prev` is the unit's previous output (for [`Lesion::LatchedValue`]);
    /// `src` is the first source operand (for [`Lesion::SkippedOp`]);
    /// `entropy` is a per-operation pseudorandom word (for
    /// [`Lesion::CorruptValue`]).
    ///
    /// Lesions with special carriers ([`Lesion::RoundXor`],
    /// [`Lesion::LockViolation`], [`Lesion::CorruptCopy`]) corrupt the
    /// scalar view with their mask material so that every lesion kind still
    /// perturbs plain results when attached to a scalar unit.
    pub fn apply_scalar(&self, correct: u64, prev: u64, src: u64, entropy: u64) -> u64 {
        match *self {
            Lesion::StuckBit { bit, value } => {
                let mask = 1u64 << (bit & 63);
                if value {
                    correct | mask
                } else {
                    correct & !mask
                }
            }
            Lesion::FlipBit { bit } => correct ^ (1u64 << (bit & 63)),
            Lesion::XorMask { mask } => correct ^ mask,
            Lesion::RoundXor { mask_hi, mask_lo } => correct ^ mask_hi ^ mask_lo,
            Lesion::SkippedOp => src,
            Lesion::LatchedValue => prev,
            Lesion::CorruptValue => correct ^ (entropy | 1),
            Lesion::LockViolation { .. } => correct ^ 1,
            Lesion::CorruptCopy { mask, .. } => correct ^ mask,
        }
    }

    /// Whether the lesion produces the *same* wrong answer every time it
    /// fires on the same input (a stable corruption signature).
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, Lesion::LatchedValue | Lesion::CorruptValue)
    }

    /// Whether repeated application on the same core composes to the
    /// identity for inverse-pair operations (the self-inverting property).
    pub fn is_self_inverting(&self) -> bool {
        matches!(self, Lesion::RoundXor { .. })
    }

    /// A short stable label for reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Lesion::StuckBit { .. } => "stuck-bit",
            Lesion::FlipBit { .. } => "flip-bit",
            Lesion::XorMask { .. } => "xor-mask",
            Lesion::RoundXor { .. } => "round-xor",
            Lesion::SkippedOp => "skipped-op",
            Lesion::LatchedValue => "latched-value",
            Lesion::CorruptValue => "corrupt-value",
            Lesion::LockViolation { .. } => "lock-violation",
            Lesion::CorruptCopy { .. } => "corrupt-copy",
        }
    }

    /// The 128-bit mask of a [`Lesion::RoundXor`], if that is what this is.
    pub fn round_mask(&self) -> Option<u128> {
        match *self {
            Lesion::RoundXor { mask_hi, mask_lo } => {
                Some(((mask_hi as u128) << 64) | mask_lo as u128)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stuck_bit_forces_level() {
        let l = Lesion::StuckBit {
            bit: 3,
            value: true,
        };
        assert_eq!(l.apply_scalar(0, 0, 0, 0), 0b1000);
        assert_eq!(l.apply_scalar(0b1000, 0, 0, 0), 0b1000);
        let l0 = Lesion::StuckBit {
            bit: 3,
            value: false,
        };
        assert_eq!(l0.apply_scalar(0b1111, 0, 0, 0), 0b0111);
    }

    #[test]
    fn stuck_bit_only_corrupts_when_disagreeing() {
        // The "repeated bit-flips at a particular position" signature: the
        // observed corruption is always the same single bit.
        let l = Lesion::StuckBit {
            bit: 17,
            value: true,
        };
        for v in [0u64, 1, 0xdead_beef, u64::MAX] {
            let out = l.apply_scalar(v, 0, 0, 0);
            let diff = v ^ out;
            assert!(diff == 0 || diff == 1 << 17);
        }
    }

    #[test]
    fn flip_bit_is_involutive() {
        let l = Lesion::FlipBit { bit: 42 };
        let v = 0x0123_4567_89ab_cdef;
        assert_eq!(l.apply_scalar(l.apply_scalar(v, 0, 0, 0), 0, 0, 0), v);
    }

    #[test]
    fn xor_mask_has_stable_signature() {
        let l = Lesion::XorMask { mask: 0xff00 };
        assert_eq!(l.apply_scalar(5, 0, 0, 0) ^ 5, 0xff00);
        assert_eq!(l.apply_scalar(999, 1, 2, 3) ^ 999, 0xff00);
    }

    #[test]
    fn skipped_op_passes_source() {
        let l = Lesion::SkippedOp;
        assert_eq!(l.apply_scalar(100, 7, 55, 0), 55);
    }

    #[test]
    fn latched_value_returns_previous() {
        let l = Lesion::LatchedValue;
        assert_eq!(l.apply_scalar(100, 77, 0, 0), 77);
    }

    #[test]
    fn corrupt_value_always_differs() {
        let l = Lesion::CorruptValue;
        for e in 0..100u64 {
            assert_ne!(l.apply_scalar(12345, 0, 0, e), 12345);
        }
    }

    #[test]
    fn determinism_classification() {
        assert!(Lesion::StuckBit {
            bit: 0,
            value: true
        }
        .is_deterministic());
        assert!(Lesion::XorMask { mask: 1 }.is_deterministic());
        assert!(!Lesion::LatchedValue.is_deterministic());
        assert!(!Lesion::CorruptValue.is_deterministic());
    }

    #[test]
    fn self_inverting_is_round_xor_only() {
        assert!(Lesion::RoundXor {
            mask_hi: 1,
            mask_lo: 2
        }
        .is_self_inverting());
        assert!(!Lesion::XorMask { mask: 3 }.is_self_inverting());
    }

    #[test]
    fn round_mask_extraction() {
        let l = Lesion::RoundXor {
            mask_hi: 0xaa,
            mask_lo: 0xbb,
        };
        assert_eq!(l.round_mask(), Some((0xaa_u128 << 64) | 0xbb));
        assert_eq!(Lesion::SkippedOp.round_mask(), None);
    }

    #[test]
    fn kind_names_are_distinct() {
        let kinds = [
            Lesion::StuckBit {
                bit: 0,
                value: false,
            }
            .kind_name(),
            Lesion::FlipBit { bit: 0 }.kind_name(),
            Lesion::XorMask { mask: 0 }.kind_name(),
            Lesion::RoundXor {
                mask_hi: 0,
                mask_lo: 0,
            }
            .kind_name(),
            Lesion::SkippedOp.kind_name(),
            Lesion::LatchedValue.kind_name(),
            Lesion::CorruptValue.kind_name(),
            Lesion::LockViolation {
                mode: LockFailureMode::PhantomSuccess,
            }
            .kind_name(),
            Lesion::CorruptCopy {
                stride: 1,
                offset: 0,
                mask: 0,
            }
            .kind_name(),
        ];
        let mut sorted = kinds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), kinds.len());
    }
}
