//! Activation: when a lesion fires.
//!
//! The paper is emphatic that CEE rates are not constants: "Corruption rates
//! vary by many orders of magnitude … across defective cores, and for any
//! given core can be highly dependent on workload and on f, V, T" (§2);
//! failures "mostly appear non-deterministically at variable rate", cores
//! "often get worse with time", "we have some evidence that aging is a
//! factor" (§2), and defects can stay latent — "some cores only become
//! defective after considerable time has passed" (§6). [`Activation`]
//! captures all of these as a per-operation firing probability modulated by
//! operating point, data pattern, and age.

use crate::oppoint::OperatingPoint;
use serde::{Deserialize, Serialize};

/// How the firing probability responds to clock frequency.
///
/// §5: "some mercurial core CEE rates are strongly frequency-sensitive,
/// some aren't", and "lower frequency sometimes (surprisingly) increases the
/// failure rate".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FreqResponse {
    /// No frequency dependence.
    Insensitive,
    /// Fails more as frequency rises above a knee (classic timing-margin
    /// defect): multiplier grows linearly from 0 at `knee_mhz` to
    /// `max_boost` at `sat_mhz`.
    HighFreq {
        /// Frequency at which the defect starts to matter.
        knee_mhz: u32,
        /// Frequency at which the boost saturates.
        sat_mhz: u32,
        /// Multiplier at saturation (>= 1).
        max_boost: f64,
    },
    /// Fails more as frequency *drops* below a knee — the paper's surprising
    /// case, arising because DVFS lowers voltage along with frequency and
    /// some defects are voltage-margin limited.
    LowFreq {
        /// Frequency below which the defect worsens.
        knee_mhz: u32,
        /// Frequency at which the boost saturates.
        floor_mhz: u32,
        /// Multiplier at the floor (>= 1).
        max_boost: f64,
    },
    /// Fails only inside a frequency band (resonance-like behavior).
    Band {
        /// Lower band edge.
        lo_mhz: u32,
        /// Upper band edge.
        hi_mhz: u32,
        /// Multiplier inside the band.
        boost: f64,
    },
}

impl FreqResponse {
    /// The rate multiplier at a given frequency. Always >= 0; equals 1.0 in
    /// the defect's comfortable region.
    pub fn multiplier(&self, freq_mhz: u32) -> f64 {
        match *self {
            FreqResponse::Insensitive => 1.0,
            FreqResponse::HighFreq {
                knee_mhz,
                sat_mhz,
                max_boost,
            } => {
                if freq_mhz <= knee_mhz {
                    1.0
                } else if freq_mhz >= sat_mhz {
                    max_boost
                } else {
                    let t = (freq_mhz - knee_mhz) as f64 / (sat_mhz - knee_mhz).max(1) as f64;
                    1.0 + t * (max_boost - 1.0)
                }
            }
            FreqResponse::LowFreq {
                knee_mhz,
                floor_mhz,
                max_boost,
            } => {
                if freq_mhz >= knee_mhz {
                    1.0
                } else if freq_mhz <= floor_mhz {
                    max_boost
                } else {
                    let t = (knee_mhz - freq_mhz) as f64 / (knee_mhz - floor_mhz).max(1) as f64;
                    1.0 + t * (max_boost - 1.0)
                }
            }
            FreqResponse::Band {
                lo_mhz,
                hi_mhz,
                boost,
            } => {
                if (lo_mhz..=hi_mhz).contains(&freq_mhz) {
                    boost
                } else {
                    1.0
                }
            }
        }
    }
}

/// Operand-data predicates gating activation (§2: "data patterns can affect
/// corruption rates, but it's often hard for us to tell").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataPattern {
    /// Fires regardless of operand data.
    Any,
    /// Fires only when the operand's popcount is at least the threshold
    /// (heavily switching datapaths draw more current — a classic
    /// voltage-droop trigger).
    PopcountAtLeast(u32),
    /// Fires only when the masked operand bits equal the given value.
    MaskedEquals {
        /// The bits that matter.
        mask: u64,
        /// Their required value.
        value: u64,
    },
    /// Fires only when adjacent bytes of the operand differ everywhere
    /// (maximal toggling between byte lanes).
    AllBytesDistinctFromNeighbors,
}

impl DataPattern {
    /// Whether the operand satisfies the pattern.
    pub fn matches(&self, operand: u64) -> bool {
        match *self {
            DataPattern::Any => true,
            DataPattern::PopcountAtLeast(k) => operand.count_ones() >= k,
            DataPattern::MaskedEquals { mask, value } => operand & mask == value & mask,
            DataPattern::AllBytesDistinctFromNeighbors => {
                let b = operand.to_le_bytes();
                b.windows(2).all(|w| w[0] != w[1])
            }
        }
    }
}

/// Aging behavior: latent onset and progressive degradation.
///
/// §2: mercurial cores "can manifest long after initial installation" and
/// "often get worse with time". §4 makes *age until onset* one of the
/// candidate metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgingModel {
    /// Core age (hours of service) before the defect can fire at all.
    /// Zero means the defect is present from manufacturing.
    pub onset_hours: f64,
    /// Per-year multiplicative growth of the firing rate after onset
    /// (1.0 = stable; 2.0 = doubles every year of service).
    pub growth_per_year: f64,
}

impl AgingModel {
    /// A defect present and stable from day one.
    pub const FROM_BIRTH: AgingModel = AgingModel {
        onset_hours: 0.0,
        growth_per_year: 1.0,
    };

    /// Rate multiplier at a given age; zero before onset.
    pub fn multiplier(&self, age_hours: f64) -> f64 {
        if age_hours < self.onset_hours {
            return 0.0;
        }
        let years_past_onset = (age_hours - self.onset_hours) / (365.25 * 24.0);
        self.growth_per_year.max(0.0).powf(years_past_onset)
    }

    /// Whether the defect has manifested at the given age.
    pub fn is_active(&self, age_hours: f64) -> bool {
        age_hours >= self.onset_hours
    }

    /// The next age at which [`AgingModel::multiplier`] can change from
    /// zero to non-zero, if any.
    ///
    /// The multiplier is zero strictly before `onset_hours` and driven by
    /// smooth growth afterwards, so onset is the *only* zero-to-non-zero
    /// edge: once a core has been evaluated at or past onset, its
    /// multiplier never switches from zero to positive again (a
    /// `growth_per_year` of zero decays to zero and stays there). The
    /// sparse simulation clock relies on this to sleep dormant cores
    /// until exactly this age.
    pub fn next_transition_age(&self, age_hours: f64) -> Option<f64> {
        (age_hours < self.onset_hours).then_some(self.onset_hours)
    }
}

/// The full activation model for one lesion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Activation {
    /// Baseline per-operation firing probability at nominal conditions.
    pub base_prob: f64,
    /// Frequency response of the firing rate.
    pub freq: FreqResponse,
    /// Voltage below which the rate is boosted by `low_voltage_boost`.
    pub low_voltage_knee_mv: u32,
    /// Multiplier applied below the voltage knee.
    pub low_voltage_boost: f64,
    /// Temperature above which the rate is boosted by `high_temp_boost`.
    pub high_temp_knee_c: i32,
    /// Multiplier applied above the temperature knee.
    pub high_temp_boost: f64,
    /// Operand-data gate.
    pub pattern: DataPattern,
    /// Aging behavior.
    pub aging: AgingModel,
}

impl Activation {
    /// A defect that fires on every matching operation from day one —
    /// useful for the deterministic case studies (§2: "in just a few cases,
    /// we can reproduce the errors deterministically").
    pub fn always() -> Activation {
        Activation {
            base_prob: 1.0,
            freq: FreqResponse::Insensitive,
            low_voltage_knee_mv: 0,
            low_voltage_boost: 1.0,
            high_temp_knee_c: i32::MAX,
            high_temp_boost: 1.0,
            pattern: DataPattern::Any,
            aging: AgingModel::FROM_BIRTH,
        }
    }

    /// An unconditional defect firing with the given probability.
    pub fn with_prob(p: f64) -> Activation {
        Activation {
            base_prob: p,
            ..Activation::always()
        }
    }

    /// The effective firing probability for one operation.
    ///
    /// Combines the baseline with the (f, V, T) multipliers and the aging
    /// multiplier, clamped to `[0, 1]`; returns 0 when the data pattern does
    /// not match.
    pub fn probability(&self, point: OperatingPoint, operand: u64, age_hours: f64) -> f64 {
        if !self.pattern.matches(operand) {
            return 0.0;
        }
        let mut p = self.base_prob * self.freq.multiplier(point.freq_mhz);
        if point.voltage_mv < self.low_voltage_knee_mv {
            p *= self.low_voltage_boost;
        }
        if point.temp_c > self.high_temp_knee_c {
            p *= self.high_temp_boost;
        }
        p *= self.aging.multiplier(age_hours);
        p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOM: OperatingPoint = OperatingPoint::NOMINAL;

    #[test]
    fn always_fires_unconditionally() {
        let a = Activation::always();
        assert_eq!(a.probability(NOM, 0xdead, 0.0), 1.0);
        assert_eq!(a.probability(NOM, 0, 1e6), 1.0);
    }

    #[test]
    fn high_freq_response_monotone_up() {
        let f = FreqResponse::HighFreq {
            knee_mhz: 2000,
            sat_mhz: 3000,
            max_boost: 100.0,
        };
        assert_eq!(f.multiplier(1500), 1.0);
        assert_eq!(f.multiplier(2000), 1.0);
        let mid = f.multiplier(2500);
        assert!(mid > 1.0 && mid < 100.0);
        assert_eq!(f.multiplier(3000), 100.0);
        assert_eq!(f.multiplier(4000), 100.0);
    }

    #[test]
    fn low_freq_response_is_the_surprising_one() {
        // Paper §5: "lower frequency sometimes (surprisingly) increases the
        // failure rate."
        let f = FreqResponse::LowFreq {
            knee_mhz: 2200,
            floor_mhz: 1200,
            max_boost: 50.0,
        };
        assert!(f.multiplier(1200) > f.multiplier(2600));
        assert_eq!(f.multiplier(2600), 1.0);
        assert_eq!(f.multiplier(1000), 50.0);
    }

    #[test]
    fn band_response() {
        let f = FreqResponse::Band {
            lo_mhz: 1800,
            hi_mhz: 2200,
            boost: 7.0,
        };
        assert_eq!(f.multiplier(2000), 7.0);
        assert_eq!(f.multiplier(1799), 1.0);
        assert_eq!(f.multiplier(2201), 1.0);
    }

    #[test]
    fn data_patterns() {
        assert!(DataPattern::Any.matches(0));
        assert!(DataPattern::PopcountAtLeast(4).matches(0b1111));
        assert!(!DataPattern::PopcountAtLeast(5).matches(0b1111));
        let m = DataPattern::MaskedEquals {
            mask: 0xff,
            value: 0xab,
        };
        assert!(m.matches(0x1234_56ab));
        assert!(!m.matches(0x1234_56ac));
        assert!(DataPattern::AllBytesDistinctFromNeighbors.matches(0x0102_0304_0506_0708));
        assert!(!DataPattern::AllBytesDistinctFromNeighbors.matches(0x0101_0304_0506_0708));
    }

    #[test]
    fn aging_latent_then_grows() {
        let a = AgingModel {
            onset_hours: 1000.0,
            growth_per_year: 2.0,
        };
        assert_eq!(a.multiplier(999.0), 0.0);
        assert!(!a.is_active(999.0));
        assert!(a.is_active(1000.0));
        assert!((a.multiplier(1000.0) - 1.0).abs() < 1e-12);
        let one_year = 1000.0 + 365.25 * 24.0;
        assert!((a.multiplier(one_year) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn probability_combines_factors() {
        let a = Activation {
            base_prob: 0.001,
            freq: FreqResponse::HighFreq {
                knee_mhz: 2000,
                sat_mhz: 3000,
                max_boost: 10.0,
            },
            low_voltage_knee_mv: 800,
            low_voltage_boost: 5.0,
            high_temp_knee_c: 80,
            high_temp_boost: 3.0,
            pattern: DataPattern::Any,
            aging: AgingModel::FROM_BIRTH,
        };
        // Nominal: frequency 2600 gives a partial boost.
        let p_nom = a.probability(NOM, 0, 0.0);
        assert!(p_nom > 0.001 && p_nom < 0.01);
        // Hot, starved, fast: all boosts compound.
        let p_worst = a.probability(OperatingPoint::new(3200, 750, 95), 0, 0.0);
        assert!((p_worst - 0.001 * 10.0 * 5.0 * 3.0).abs() < 1e-9);
        // Clamped to 1.
        let a1 = Activation {
            base_prob: 0.5,
            ..a
        };
        assert_eq!(
            a1.probability(OperatingPoint::new(3200, 750, 95), 0, 0.0),
            1.0
        );
    }

    #[test]
    fn probability_zero_when_pattern_misses() {
        let a = Activation {
            pattern: DataPattern::PopcountAtLeast(60),
            ..Activation::always()
        };
        assert_eq!(a.probability(NOM, 0b1010, 0.0), 0.0);
        assert_eq!(a.probability(NOM, u64::MAX, 0.0), 1.0);
    }

    #[test]
    fn next_transition_age_is_onset_then_none() {
        let latent = AgingModel {
            onset_hours: 1000.0,
            growth_per_year: 2.0,
        };
        assert_eq!(latent.next_transition_age(0.0), Some(1000.0));
        assert_eq!(latent.next_transition_age(999.9), Some(1000.0));
        assert_eq!(latent.next_transition_age(1000.0), None);
        assert_eq!(latent.next_transition_age(5000.0), None);
        assert_eq!(AgingModel::FROM_BIRTH.next_transition_age(0.0), None);
    }

    #[test]
    fn zero_growth_never_returns_from_zero() {
        // The soundness claim behind next_transition_age: with growth 0
        // the multiplier is 1 exactly at onset and 0 strictly after, so
        // there is no later zero-to-non-zero edge to wake up for.
        let a = AgingModel {
            onset_hours: 100.0,
            growth_per_year: 0.0,
        };
        assert_eq!(a.multiplier(99.0), 0.0);
        assert_eq!(a.multiplier(100.0), 1.0);
        assert_eq!(a.multiplier(100.1), 0.0);
        assert_eq!(a.multiplier(1e6), 0.0);
        assert_eq!(a.next_transition_age(100.0), None);
    }

    #[test]
    fn probability_zero_before_onset() {
        let a = Activation {
            aging: AgingModel {
                onset_hours: 500.0,
                growth_per_year: 1.0,
            },
            ..Activation::always()
        };
        assert_eq!(a.probability(NOM, 0, 100.0), 0.0);
        assert_eq!(a.probability(NOM, 0, 501.0), 1.0);
    }
}
