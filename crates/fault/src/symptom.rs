//! The paper's §2 taxonomy of CEE symptoms, "in increasing order of risk".

use serde::{Deserialize, Serialize};

/// How a corrupt execution error manifests to the system (§2).
///
/// Ordered by increasing risk, exactly as the paper lists them:
///
/// 1. wrong answers detected nearly immediately (self-checking, exceptions,
///    segmentation faults) — automated retry is possible;
/// 2. machine checks — "more disruptive";
/// 3. wrong answers detected, but only after it is too late to retry;
/// 4. wrong answers that are never detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SymptomClass {
    /// Wrong answer caught nearly immediately (self-check, exception,
    /// segfault); a retry can usually mask it.
    WrongDetectedImmediately,
    /// A machine-check event: disruptive but at least loud.
    MachineCheck,
    /// Wrong answer detected only after the computation's results were
    /// consumed — too late to retry.
    WrongDetectedLate,
    /// Wrong answer never detected: pure silent data corruption.
    WrongNeverDetected,
}

impl SymptomClass {
    /// All classes, in the paper's increasing-risk order.
    pub const ALL: [SymptomClass; 4] = [
        SymptomClass::WrongDetectedImmediately,
        SymptomClass::MachineCheck,
        SymptomClass::WrongDetectedLate,
        SymptomClass::WrongNeverDetected,
    ];

    /// A risk rank, 0 (least risky) to 3 (most risky).
    pub fn risk_rank(self) -> u8 {
        match self {
            SymptomClass::WrongDetectedImmediately => 0,
            SymptomClass::MachineCheck => 1,
            SymptomClass::WrongDetectedLate => 2,
            SymptomClass::WrongNeverDetected => 3,
        }
    }

    /// Whether the symptom is observable at all by the infrastructure —
    /// everything except never-detected corruption.
    pub fn is_observable(self) -> bool {
        self != SymptomClass::WrongNeverDetected
    }

    /// Whether the symptom arrives in time for an automated retry.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            SymptomClass::WrongDetectedImmediately | SymptomClass::MachineCheck
        )
    }

    /// A short stable label.
    pub fn name(self) -> &'static str {
        match self {
            SymptomClass::WrongDetectedImmediately => "wrong-detected-immediately",
            SymptomClass::MachineCheck => "machine-check",
            SymptomClass::WrongDetectedLate => "wrong-detected-late",
            SymptomClass::WrongNeverDetected => "wrong-never-detected",
        }
    }
}

impl std::fmt::Display for SymptomClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn risk_order_matches_paper() {
        // The paper lists symptoms in increasing order of risk; the enum's
        // Ord and the explicit rank must agree with that order.
        for w in SymptomClass::ALL.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].risk_rank() < w[1].risk_rank());
        }
    }

    #[test]
    fn observability() {
        assert!(SymptomClass::MachineCheck.is_observable());
        assert!(SymptomClass::WrongDetectedLate.is_observable());
        assert!(!SymptomClass::WrongNeverDetected.is_observable());
    }

    #[test]
    fn retryability() {
        assert!(SymptomClass::WrongDetectedImmediately.is_retryable());
        assert!(SymptomClass::MachineCheck.is_retryable());
        assert!(!SymptomClass::WrongDetectedLate.is_retryable());
        assert!(!SymptomClass::WrongNeverDetected.is_retryable());
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = SymptomClass::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
