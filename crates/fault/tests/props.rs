//! Property-based tests on the fault model's core invariants.

use mercurial_fault::{
    library, Activation, CoreFaultProfile, CoreUid, CounterRng, FunctionalUnit, Injector, Lesion,
    OpContext, OperatingPoint,
};
use proptest::prelude::*;

fn arb_unit() -> impl Strategy<Value = FunctionalUnit> {
    (0..FunctionalUnit::ALL.len()).prop_map(|i| FunctionalUnit::ALL[i])
}

fn arb_point() -> impl Strategy<Value = OperatingPoint> {
    (800u32..4000, 600u32..1200, -20i32..110).prop_map(|(f, v, t)| OperatingPoint::new(f, v, t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Activation probabilities are always valid probabilities.
    #[test]
    fn activation_probability_in_unit_interval(
        base in 0.0f64..2.0,
        point in arb_point(),
        operand in any::<u64>(),
        age in 0.0f64..1e6,
    ) {
        let a = Activation { base_prob: base, ..Activation::always() };
        let p = a.probability(point, operand, age);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    /// The injector is a pure function of (seed, context): two injectors
    /// with the same seed and profile agree on every operation.
    #[test]
    fn injector_is_deterministic(
        seed in any::<u64>(),
        unit in arb_unit(),
        ops in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..64),
    ) {
        let profile = CoreFaultProfile::single(
            "p",
            unit,
            Lesion::CorruptValue,
            Activation::with_prob(0.37),
        );
        let mut a = Injector::new(seed, profile.clone());
        let mut b = Injector::new(seed, profile);
        for (i, &(operand, correct)) in ops.iter().enumerate() {
            let ctx = OpContext::nominal(CoreUid::new(1, 0, 0), unit, operand, i as u64);
            prop_assert_eq!(a.apply(ctx, correct), b.apply(ctx, correct));
        }
    }

    /// Lesions on one unit never corrupt operations on another.
    #[test]
    fn lesions_are_unit_local(
        afflicted in arb_unit(),
        executed in arb_unit(),
        correct in any::<u64>(),
        seq in any::<u64>(),
    ) {
        prop_assume!(afflicted != executed);
        let profile = CoreFaultProfile::single(
            "local",
            afflicted,
            Lesion::XorMask { mask: u64::MAX },
            Activation::always(),
        );
        let mut inj = Injector::new(1, profile);
        let ctx = OpContext::nominal(CoreUid::new(0, 0, 0), executed, 0, seq);
        let out = inj.apply(ctx, correct);
        prop_assert_eq!(out.value, correct);
        prop_assert!(!out.corrupted());
    }

    /// Deterministic lesions produce a stable wrong answer: applying the
    /// same operation twice (same seq) yields identical output.
    #[test]
    fn deterministic_lesions_have_stable_signatures(
        bit in 0u8..64,
        correct in any::<u64>(),
        seq in any::<u64>(),
    ) {
        let profile = CoreFaultProfile::single(
            "stable",
            FunctionalUnit::ScalarAlu,
            Lesion::FlipBit { bit },
            Activation::always(),
        );
        let ctx = OpContext::nominal(CoreUid::new(0, 0, 0), FunctionalUnit::ScalarAlu, 0, seq);
        let mut a = Injector::new(9, profile.clone());
        let mut b = Injector::new(9, profile);
        prop_assert_eq!(a.apply(ctx, correct).value, b.apply(ctx, correct).value);
    }

    /// Sampled profiles are well-formed: non-empty, probabilities valid,
    /// and the profile name comes from the archetype list.
    #[test]
    fn sampled_profiles_are_well_formed(seed in any::<u64>(), id in 0u64..10_000) {
        let p = library::sample_profile(seed, id);
        prop_assert!(!p.lesions.is_empty());
        prop_assert!(library::ARCHETYPES.contains(&p.name.as_str()));
        for l in &p.lesions {
            prop_assert!(l.activation.base_prob >= 0.0 && l.activation.base_prob <= 1.0);
            prop_assert!(l.activation.aging.onset_hours >= 0.0);
        }
    }

    /// Counter RNG streams with different ids never alias over a window.
    #[test]
    fn rng_streams_decorrelate(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let ra = CounterRng::from_parts(seed, a, 0, 0);
        let rb = CounterRng::from_parts(seed, b, 0, 0);
        let collisions = (0..64).filter(|&c| ra.at(c) == rb.at(c)).count();
        prop_assert_eq!(collisions, 0);
    }
}
