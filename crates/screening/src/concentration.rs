//! The concentration test.
//!
//! §6, on the suspect-core report service: "Reports that are evenly spread
//! across cores probably are not CEEs; reports from multiple applications
//! that appear to be concentrated on a few cores might well be CEEs, and
//! become grounds for quarantining those cores."
//!
//! Formally: under the null hypothesis that reports hit cores uniformly at
//! random, each core's count is ~Binomial(N, 1/C) ≈ Poisson(N/C). A core
//! whose count has a tiny Poisson upper-tail probability (Bonferroni-
//! corrected across C cores) is *concentrated* and becomes a suspect.

use mercurial_fault::CoreUid;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters for the concentration test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConcentrationConfig {
    /// Family-wise false-positive budget (after Bonferroni across cores).
    pub alpha: f64,
    /// Minimum raw count before a core can be flagged (one report is never
    /// enough, no matter how small the fleet).
    pub min_count: u64,
}

impl Default for ConcentrationConfig {
    fn default() -> ConcentrationConfig {
        ConcentrationConfig {
            alpha: 0.01,
            min_count: 3,
        }
    }
}

/// Poisson upper tail P[X >= k] for mean `lambda`.
fn poisson_tail_ge(k: u64, lambda: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if lambda <= 0.0 {
        return 0.0;
    }
    // 1 - CDF(k-1), summing the PMF in log space term by term.
    let mut cdf = 0.0f64;
    let ln_lambda = lambda.ln();
    let mut ln_fact = 0.0f64;
    for i in 0..k {
        if i > 0 {
            ln_fact += (i as f64).ln();
        }
        cdf += (i as f64 * ln_lambda - lambda - ln_fact).exp();
    }
    (1.0 - cdf).clamp(0.0, 1.0)
}

/// A core flagged by the concentration test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConcentratedCore {
    /// The core.
    pub core: CoreUid,
    /// Its report count.
    pub count: u64,
    /// The Bonferroni-corrected p-value of that count under uniformity.
    pub p_value: f64,
}

/// Runs the concentration test over per-core report counts.
///
/// `total_cores` is the number of cores reports *could* have named (the
/// uniform null's denominator); it must be at least the number of distinct
/// cores observed. Returns flagged cores, most extreme first.
///
/// # Panics
///
/// Panics if `total_cores == 0`.
pub fn concentration_suspects(
    counts: &HashMap<CoreUid, u64>,
    total_cores: u64,
    config: ConcentrationConfig,
) -> Vec<ConcentratedCore> {
    assert!(total_cores > 0, "need a non-empty core universe");
    let total_reports: u64 = counts.values().sum();
    if total_reports == 0 {
        return Vec::new();
    }
    let lambda = total_reports as f64 / total_cores as f64;
    let mut flagged: Vec<ConcentratedCore> = counts
        .iter()
        .filter(|(_, &c)| c >= config.min_count)
        .filter_map(|(&core, &count)| {
            let p = poisson_tail_ge(count, lambda) * total_cores as f64; // Bonferroni
            if p < config.alpha {
                Some(ConcentratedCore {
                    core,
                    count,
                    p_value: p,
                })
            } else {
                None
            }
        })
        .collect();
    flagged.sort_by(|a, b| {
        // Extreme tails underflow to exactly zero; break those ties by raw
        // count so the most-reported core still sorts first.
        a.p_value
            .partial_cmp(&b.p_value)
            .expect("p-values are finite")
            .then(b.count.cmp(&a.count))
            .then(a.core.cmp(&b.core))
    });
    flagged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(i: u32) -> CoreUid {
        CoreUid::new(i, 0, 0)
    }

    #[test]
    fn poisson_tail_sanity() {
        assert_eq!(poisson_tail_ge(0, 5.0), 1.0);
        assert!((poisson_tail_ge(1, 1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(poisson_tail_ge(20, 1.0) < 1e-12);
        assert!(poisson_tail_ge(5, 5.0) > 0.3);
    }

    #[test]
    fn evenly_spread_reports_are_not_flagged() {
        // 1000 cores, one report each: perfectly uniform.
        let mut counts = HashMap::new();
        for i in 0..1000 {
            counts.insert(core(i), 1u64);
        }
        let flagged = concentration_suspects(&counts, 100_000, ConcentrationConfig::default());
        assert!(flagged.is_empty());
    }

    #[test]
    fn concentrated_reports_are_flagged() {
        // Background: 200 cores with 1 report; one core with 15.
        let mut counts = HashMap::new();
        for i in 0..200 {
            counts.insert(core(i), 1u64);
        }
        counts.insert(core(999), 15);
        let flagged = concentration_suspects(&counts, 100_000, ConcentrationConfig::default());
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].core, core(999));
        assert!(flagged[0].p_value < 0.01);
    }

    #[test]
    fn min_count_gate_applies() {
        // In a tiny fleet two reports on one core may look extreme, but the
        // min-count gate holds the line.
        let mut counts = HashMap::new();
        counts.insert(core(1), 2u64);
        let flagged = concentration_suspects(&counts, 1_000_000, ConcentrationConfig::default());
        assert!(flagged.is_empty());
    }

    #[test]
    fn flagged_sorted_by_extremity() {
        let mut counts = HashMap::new();
        for i in 0..100 {
            counts.insert(core(i), 1u64);
        }
        counts.insert(core(500), 8);
        counts.insert(core(501), 20);
        let flagged = concentration_suspects(&counts, 50_000, ConcentrationConfig::default());
        assert_eq!(flagged.len(), 2);
        assert_eq!(flagged[0].core, core(501));
    }

    #[test]
    fn empty_input_is_empty() {
        let counts = HashMap::new();
        assert!(concentration_suspects(&counts, 1000, ConcentrationConfig::default()).is_empty());
    }
}
