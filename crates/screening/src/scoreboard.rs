//! Per-core recidivism tracking.
//!
//! §6: "Recidivism — repeated signals from the same core — increases our
//! confidence that a core is mercurial." The scoreboard keeps a Beta
//! posterior per core over "this core's signals are defect-driven" and
//! surfaces the cores whose evidence has crossed a threshold.
//!
//! The prior is deliberately skeptical: one crash means nothing (software
//! bugs dominate — §1: silent failures "were typically obscured by the
//! undiagnosed software bugs that we always assume lurk within a code base
//! at scale"); five signals on the same core in a week means a lot.

use mercurial_fault::{CoreUid, FastMap};
use mercurial_fleet::{Signal, SignalKind};
use mercurial_trace::Recorder;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Number of [`SignalKind`] variants (the width of the per-core count
/// table).
const SIGNAL_KINDS: usize = 8;

/// Dense index of a signal kind into the per-core count table.
fn kind_index(kind: SignalKind) -> usize {
    match kind {
        SignalKind::AppChecksumMismatch => 0,
        SignalKind::ProcessCrash => 1,
        SignalKind::KernelCrash => 2,
        SignalKind::MachineCheckEvent => 3,
        SignalKind::SanitizerHit => 4,
        SignalKind::ReplicaDivergence => 5,
        SignalKind::UserReport => 6,
        SignalKind::ScreenerFailure => 7,
    }
}

/// Evidence accumulated against one core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreScore {
    /// The core.
    pub core: CoreUid,
    /// Signals attributed to this core, indexed by [`kind_index`]. A
    /// dense table instead of a map: the scoreboard ingests every signal
    /// the fleet emits, and at fleet-study scale the per-signal map
    /// overhead (hashing plus a heap allocation per accused core)
    /// dominated the driver loop.
    counts: [u64; SIGNAL_KINDS],
    /// Hour of the first signal.
    pub first_hour: f64,
    /// Hour of the most recent signal.
    pub last_hour: f64,
    /// Weighted evidence (signal kinds carry different weight: a machine
    /// check on a specific core is stronger evidence than a process crash).
    pub evidence: f64,
}

impl CoreScore {
    /// Signals of one kind attributed to this core.
    pub fn count_of(&self, kind: SignalKind) -> u64 {
        self.counts[kind_index(kind)]
    }

    /// Total signals against this core.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether the core has repeated signals (the recidivism predicate).
    pub fn is_recidivist(&self) -> bool {
        self.total() >= 2
    }

    /// Suspicion in `[0, 1)`: a saturating transform of the evidence,
    /// `1 - exp(-evidence / 3)` — 0 for no evidence, ≈0.6 at 3 weighted
    /// signals, ≈0.96 at 10.
    pub fn suspicion(&self) -> f64 {
        1.0 - (-self.evidence / 3.0).exp()
    }
}

/// How much one signal of each kind moves the evidence.
fn kind_weight(kind: SignalKind) -> f64 {
    match kind {
        SignalKind::ScreenerFailure => 4.0, // a controlled test failed: near-proof
        SignalKind::MachineCheckEvent => 2.0,
        SignalKind::AppChecksumMismatch => 1.5,
        SignalKind::ReplicaDivergence => 2.0, // two replicas disagreeing is strong

        SignalKind::SanitizerHit => 1.0,
        SignalKind::UserReport => 1.0,
        SignalKind::KernelCrash => 0.7,
        SignalKind::ProcessCrash => 0.4, // crashes are mostly software
    }
}

/// The fleet-wide per-core scoreboard.
#[derive(Debug, Clone, Default)]
pub struct Scoreboard {
    scores: FastMap<CoreUid, CoreScore>,
    /// Armed suspicion threshold, if any (see [`Scoreboard::arm`]).
    armed: Option<f64>,
    /// Cores whose suspicion has ever reached the armed threshold.
    /// Evidence is monotone non-decreasing, so this is always a superset
    /// of the cores currently at or above it — which lets
    /// [`Scoreboard::armed_suspects_excluding`] skip the fleet-wide scan.
    watchlist: BTreeSet<CoreUid>,
}

impl Scoreboard {
    /// Creates an empty scoreboard.
    pub fn new() -> Scoreboard {
        Scoreboard::default()
    }

    /// Ingests one signal.
    pub fn ingest(&mut self, signal: &Signal) {
        self.ingest_traced(signal, &mut Recorder::disabled());
    }

    /// [`Scoreboard::ingest`] with telemetry: emits a `score.first_signal`
    /// instant the first time a core is accused and a `score.recidivist`
    /// instant when it crosses the recidivism predicate (second signal).
    pub fn ingest_traced(&mut self, signal: &Signal, rec: &mut Recorder) {
        let mut is_new = false;
        let entry = self.scores.entry(signal.core).or_insert_with(|| {
            is_new = true;
            CoreScore {
                core: signal.core,
                counts: [0; SIGNAL_KINDS],
                first_hour: signal.hour,
                last_hour: signal.hour,
                evidence: 0.0,
            }
        });
        entry.counts[kind_index(signal.kind)] += 1;
        entry.first_hour = entry.first_hour.min(signal.hour);
        entry.last_hour = entry.last_hour.max(signal.hour);
        entry.evidence += kind_weight(signal.kind);
        let crossed = self
            .armed
            .is_some_and(|threshold| entry.suspicion() >= threshold);
        if crossed {
            self.watchlist.insert(signal.core);
        }
        if is_new {
            rec.instant(
                signal.hour,
                "score.first_signal",
                Some(signal.core.as_u64()),
                0.0,
            );
        } else if entry.total() == 2 {
            rec.instant(
                signal.hour,
                "score.recidivist",
                Some(signal.core.as_u64()),
                entry.suspicion(),
            );
        }
    }

    /// Ingests a batch.
    pub fn ingest_all<'a>(&mut self, signals: impl IntoIterator<Item = &'a Signal>) {
        for s in signals {
            self.ingest(s);
        }
    }

    /// [`Scoreboard::ingest_all`] with telemetry; also bumps the
    /// `score.signals_ingested` counter once for the whole batch.
    pub fn ingest_all_traced<'a>(
        &mut self,
        signals: impl IntoIterator<Item = &'a Signal>,
        rec: &mut Recorder,
    ) {
        let mut n = 0u64;
        for s in signals {
            self.ingest_traced(s, rec);
            n += 1;
        }
        rec.counter_add("score.signals_ingested", n);
    }

    /// [`Scoreboard::ingest_all_traced`] with decision provenance: before
    /// each signal is ingested, a `score.signal` instant is emitted whose
    /// value is the dense [`kind_index`] of the signal kind. The audit
    /// ledger decodes the index back into the canonical kind name, giving
    /// per-signal-kind precision/recall without widening the trace schema.
    /// Only the audit layer pays for this firehose; the plain traced path
    /// keeps emitting just the first-signal/recidivist milestones.
    pub fn ingest_all_provenance<'a>(
        &mut self,
        signals: impl IntoIterator<Item = &'a Signal>,
        rec: &mut Recorder,
    ) {
        let mut n = 0u64;
        for s in signals {
            rec.instant(
                s.hour,
                "score.signal",
                Some(s.core.as_u64()),
                kind_index(s.kind) as f64,
            );
            self.ingest_traced(s, rec);
            n += 1;
        }
        rec.counter_add("score.signals_ingested", n);
    }

    /// The score for one core, if any signal has been seen.
    pub fn score(&self, core: CoreUid) -> Option<&CoreScore> {
        self.scores.get(&core)
    }

    /// Cores whose suspicion exceeds `threshold`, most suspicious first.
    pub fn suspects(&self, threshold: f64) -> Vec<&CoreScore> {
        self.suspects_excluding(threshold, |_| false)
    }

    /// Like [`Scoreboard::suspects`], but skipping cores for which
    /// `exclude` returns `true` (already detected, quarantined, or
    /// previously triaged). Order is identical: most suspicious first,
    /// ties by core.
    pub fn suspects_excluding(
        &self,
        threshold: f64,
        exclude: impl Fn(CoreUid) -> bool,
    ) -> Vec<&CoreScore> {
        let mut out: Vec<&CoreScore> = self
            .scores
            .values()
            .filter(|s| s.suspicion() >= threshold && !exclude(s.core))
            .collect();
        out.sort_by(|a, b| {
            b.suspicion()
                .partial_cmp(&a.suspicion())
                .expect("suspicion is finite")
                .then(a.core.cmp(&b.core))
        });
        out
    }

    /// Arms a suspicion threshold: from now on the scoreboard keeps a
    /// watchlist of every core whose suspicion has reached it, so
    /// [`Scoreboard::armed_suspects_excluding`] can answer without
    /// scanning every accused core. Existing scores are backfilled.
    pub fn arm(&mut self, threshold: f64) {
        self.armed = Some(threshold);
        self.watchlist = self
            .scores
            .values()
            .filter(|s| s.suspicion() >= threshold)
            .map(|s| s.core)
            .collect();
    }

    /// [`Scoreboard::suspects_excluding`] at the armed threshold, served
    /// from the watchlist: identical output (same filter predicate, same
    /// total sort order), but O(watchlist) instead of O(cores accused).
    ///
    /// # Panics
    ///
    /// Panics if [`Scoreboard::arm`] has not been called.
    pub fn armed_suspects_excluding(&self, exclude: impl Fn(CoreUid) -> bool) -> Vec<&CoreScore> {
        let threshold = self.armed.expect("scoreboard is armed");
        let mut out: Vec<&CoreScore> = self
            .watchlist
            .iter()
            .map(|core| &self.scores[core])
            .filter(|s| s.suspicion() >= threshold && !exclude(s.core))
            .collect();
        out.sort_by(|a, b| {
            b.suspicion()
                .partial_cmp(&a.suspicion())
                .expect("suspicion is finite")
                .then(a.core.cmp(&b.core))
        });
        out
    }

    /// Number of cores with any signal.
    pub fn cores_seen(&self) -> usize {
        self.scores.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(core: CoreUid, kind: SignalKind, hour: f64) -> Signal {
        Signal {
            hour,
            core,
            kind,
            caused_by_cee: true,
        }
    }

    #[test]
    fn single_crash_is_weak_evidence() {
        let mut b = Scoreboard::new();
        let core = CoreUid::new(1, 0, 0);
        b.ingest(&sig(core, SignalKind::ProcessCrash, 10.0));
        let s = b.score(core).unwrap();
        assert!(!s.is_recidivist());
        assert!(s.suspicion() < 0.2, "suspicion {}", s.suspicion());
    }

    #[test]
    fn screener_failure_is_strong_evidence() {
        let mut b = Scoreboard::new();
        let core = CoreUid::new(1, 0, 0);
        b.ingest(&sig(core, SignalKind::ScreenerFailure, 10.0));
        assert!(b.score(core).unwrap().suspicion() > 0.7);
    }

    #[test]
    fn recidivism_accumulates() {
        let mut b = Scoreboard::new();
        let core = CoreUid::new(2, 1, 5);
        for i in 0..5 {
            b.ingest(&sig(core, SignalKind::AppChecksumMismatch, i as f64));
        }
        let s = b.score(core).unwrap();
        assert!(s.is_recidivist());
        assert!(s.suspicion() > 0.9);
        assert_eq!(s.total(), 5);
        assert_eq!(s.first_hour, 0.0);
        assert_eq!(s.last_hour, 4.0);
    }

    #[test]
    fn suspects_sorted_by_suspicion() {
        let mut b = Scoreboard::new();
        let weak = CoreUid::new(1, 0, 0);
        let strong = CoreUid::new(2, 0, 0);
        b.ingest(&sig(weak, SignalKind::ProcessCrash, 0.0));
        for i in 0..4 {
            b.ingest(&sig(strong, SignalKind::MachineCheckEvent, i as f64));
        }
        let suspects = b.suspects(0.0);
        assert_eq!(suspects[0].core, strong);
        assert_eq!(b.suspects(0.9).len(), 1);
    }

    #[test]
    fn suspects_excluding_preserves_order() {
        let mut b = Scoreboard::new();
        let a = CoreUid::new(1, 0, 0);
        let c = CoreUid::new(2, 0, 0);
        let d = CoreUid::new(3, 0, 0);
        for core in [a, c, d] {
            for i in 0..4 {
                b.ingest(&sig(core, SignalKind::MachineCheckEvent, i as f64));
            }
        }
        let all = b.suspects(0.5);
        assert_eq!(all.len(), 3);
        let filtered = b.suspects_excluding(0.5, |core| core == c);
        assert_eq!(
            filtered.iter().map(|s| s.core).collect::<Vec<_>>(),
            vec![a, d]
        );
    }

    #[test]
    fn armed_watchlist_matches_the_full_scan() {
        let mut armed = Scoreboard::new();
        armed.arm(0.5);
        let mut plain = Scoreboard::new();
        // A spread of strengths: some cross 0.5, some never do, one is
        // excluded at query time.
        for (m, n, kind) in [
            (1u32, 1, SignalKind::ProcessCrash),
            (2, 4, SignalKind::MachineCheckEvent),
            (3, 2, SignalKind::UserReport),
            (4, 1, SignalKind::ScreenerFailure),
            (5, 3, SignalKind::AppChecksumMismatch),
        ] {
            for i in 0..n {
                let s = sig(CoreUid::new(m, 0, 0), kind, i as f64);
                armed.ingest(&s);
                plain.ingest(&s);
            }
        }
        let exclude = |core: CoreUid| core.machine == 4;
        let fast: Vec<CoreUid> = armed
            .armed_suspects_excluding(exclude)
            .iter()
            .map(|s| s.core)
            .collect();
        let slow: Vec<CoreUid> = plain
            .suspects_excluding(0.5, exclude)
            .iter()
            .map(|s| s.core)
            .collect();
        assert_eq!(fast, slow);
        assert!(!fast.is_empty());

        // Arming after the fact backfills the same watchlist.
        let mut late = plain.clone();
        late.arm(0.5);
        let backfilled: Vec<CoreUid> = late
            .armed_suspects_excluding(exclude)
            .iter()
            .map(|s| s.core)
            .collect();
        assert_eq!(backfilled, slow);
    }

    #[test]
    fn cores_seen_counts_distinct() {
        let mut b = Scoreboard::new();
        b.ingest(&sig(CoreUid::new(1, 0, 0), SignalKind::UserReport, 0.0));
        b.ingest(&sig(CoreUid::new(1, 0, 0), SignalKind::UserReport, 1.0));
        b.ingest(&sig(CoreUid::new(2, 0, 0), SignalKind::UserReport, 2.0));
        assert_eq!(b.cores_seen(), 2);
    }
}
