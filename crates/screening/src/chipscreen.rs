//! Instruction-accurate screening: run the real corpus kernels on a
//! simulated chip.
//!
//! The fleet-scale screeners in [`crate::screeners`] use the analytic
//! fault oracle for speed; this module is the ground-level counterpart
//! that actually executes the `mercurial-corpus` assembly kernels on a
//! `mercurial-simcpu` core, instruction by instruction. It is what the
//! case-study experiments (the §2 reproductions) and the quarantine
//! "more careful checking" step use.

use mercurial_corpus::{sim_corpus, ScreenOutcome, SimKernel};
use mercurial_fault::FunctionalUnit;
use mercurial_simcpu::SimCore;
use serde::{Deserialize, Serialize};

/// Outcomes of one corpus pass over one core.
#[derive(Debug, Clone)]
pub struct CoreScreenReport {
    /// `(kernel name, outcome)` per corpus kernel, in corpus order.
    pub outcomes: Vec<(&'static str, ScreenOutcome)>,
}

impl CoreScreenReport {
    /// Whether any kernel indicted the core.
    pub fn failed(&self) -> bool {
        self.outcomes.iter().any(|(_, o)| o.failed())
    }

    /// Names of the failing kernels.
    pub fn failing_kernels(&self) -> Vec<&'static str> {
        self.outcomes
            .iter()
            .filter(|(_, o)| o.failed())
            .map(|(n, _)| *n)
            .collect()
    }

    /// A terse one-line summary for logs.
    pub fn summary(&self) -> String {
        if !self.failed() {
            return "PASS (all kernels)".to_string();
        }
        format!("FAIL [{}]", self.failing_kernels().join(", "))
    }
}

/// Summary counters across a batch of screened cores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ChipScreenStats {
    /// Cores screened.
    pub cores: u64,
    /// Cores indicted.
    pub indicted: u64,
    /// Total simulated instructions retired by the screens.
    pub instructions: u64,
}

/// A reusable corpus-based screen.
pub struct ChipScreen {
    kernels: Vec<SimKernel>,
    repeats: u32,
}

impl ChipScreen {
    /// Builds the screen over the full corpus, running each kernel
    /// `repeats` times (repetition raises the sensitivity floor against
    /// intermittent defects).
    pub fn new(repeats: u32) -> ChipScreen {
        ChipScreen {
            kernels: sim_corpus(),
            repeats: repeats.max(1),
        }
    }

    /// The corpus kernels in use.
    pub fn kernels(&self) -> &[SimKernel] {
        &self.kernels
    }

    /// The units the corpus covers (all of them, by construction).
    pub fn covered_units(&self) -> Vec<FunctionalUnit> {
        let mut units: Vec<FunctionalUnit> = FunctionalUnit::ALL
            .into_iter()
            .filter(|&u| self.kernels.iter().any(|k| k.covers(u)))
            .collect();
        units.sort_unstable();
        units
    }

    /// Screens one core: every kernel, `repeats` times, stopping a
    /// kernel's repetitions at its first failure.
    pub fn screen(&self, core: &mut SimCore) -> CoreScreenReport {
        let mut outcomes = Vec::with_capacity(self.kernels.len());
        for kernel in &self.kernels {
            let mut verdict = ScreenOutcome::Pass;
            for _ in 0..self.repeats {
                let outcome = kernel.screen_core(core);
                if outcome.failed() {
                    verdict = outcome;
                    break;
                }
            }
            outcomes.push((kernel.name, verdict));
        }
        CoreScreenReport { outcomes }
    }

    /// Screens a batch of cores, accumulating stats.
    pub fn screen_batch<'a>(
        &self,
        cores: impl IntoIterator<Item = &'a mut SimCore>,
    ) -> (Vec<CoreScreenReport>, ChipScreenStats) {
        let mut stats = ChipScreenStats::default();
        let mut reports = Vec::new();
        for core in cores {
            let report = self.screen(core);
            stats.cores += 1;
            if report.failed() {
                stats.indicted += 1;
            }
            stats.instructions += core.stats().instructions;
            reports.push(report);
        }
        (reports, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_fault::{library, Injector};
    use mercurial_simcpu::CoreConfig;

    fn healthy() -> SimCore {
        SimCore::new(CoreConfig::default(), None)
    }

    fn mercurial(profile: mercurial_fault::CoreFaultProfile) -> SimCore {
        SimCore::new(CoreConfig::default(), Some(Injector::new(77, profile)))
    }

    #[test]
    fn healthy_core_passes_everything() {
        let screen = ChipScreen::new(1);
        let mut core = healthy();
        let report = screen.screen(&mut core);
        assert!(!report.failed(), "{}", report.summary());
        assert_eq!(report.summary(), "PASS (all kernels)");
    }

    #[test]
    fn corpus_covers_all_units() {
        let screen = ChipScreen::new(1);
        assert_eq!(screen.covered_units(), FunctionalUnit::ALL.to_vec());
    }

    #[test]
    fn case_study_profiles_are_indicted_with_attribution() {
        // Every §2 archetype that fires at nominal conditions must be
        // caught, and the failing kernels must point at the right units.
        let screen = ChipScreen::new(3);

        let mut aes = mercurial(library::self_inverting_aes());
        let report = screen.screen(&mut aes);
        assert!(
            report.failing_kernels().contains(&"aes-roundtrip"),
            "{}",
            report.summary()
        );

        let mut vec_copy = mercurial(library::vector_copy_coupled(0.5));
        let report = screen.screen(&mut vec_copy);
        let fails = report.failing_kernels();
        assert!(
            fails.contains(&"vector-lanes") || fails.contains(&"memcpy-walk"),
            "{}",
            report.summary()
        );

        let mut locks = mercurial(library::lock_violator(0.5));
        let report = screen.screen(&mut locks);
        assert!(
            report.failing_kernels().contains(&"atomics-hammer"),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn repeats_raise_sensitivity() {
        // An intermittent defect (2% per op on the multiplier) can pass a
        // single run; thirty repeats pin it down.
        let profile = mercurial_fault::CoreFaultProfile::single(
            "flaky-mul",
            FunctionalUnit::MulDiv,
            mercurial_fault::Lesion::XorMask { mask: 0x40 },
            mercurial_fault::Activation::with_prob(0.002),
        );
        let screen_many = ChipScreen::new(30);
        let mut core = mercurial(profile);
        let report = screen_many.screen(&mut core);
        assert!(report.failed(), "30 repeats should catch a 2e-3 defect");
    }

    #[test]
    fn batch_stats_add_up() {
        let screen = ChipScreen::new(1);
        let mut cores = [
            healthy(),
            mercurial(library::string_bitflip(11, 1.0)),
            healthy(),
        ];
        let (reports, stats) = screen.screen_batch(cores.iter_mut());
        assert_eq!(stats.cores, 3);
        assert_eq!(stats.indicted, 1);
        assert_eq!(reports.len(), 3);
        assert!(stats.instructions > 0);
    }
}
