//! Forensics: pinpointing *where* a suspect core diverges.
//!
//! §9: "One way in which the systems research community can contribute is
//! to develop methods to detect novel defect modes, and to efficiently
//! record sufficient forensic evidence across large fleets." And §6:
//! triage humans "extract confessions via further testing (often after
//! first developing a new automatable test)".
//!
//! [`DivergenceFinder`] runs the same program in lockstep on a suspect
//! core and a reference core, comparing architectural effects after every
//! instruction. The first divergence names the program counter, the
//! instruction, and the functional unit — which is precisely the evidence
//! a human needs to write the "new automatable test" for this defect
//! class, and as much attribution as software can extract without the
//! vendor's internal scan chains (§2: "we cannot infer much about root
//! causes").

use mercurial_fault::FunctionalUnit;
use mercurial_simcpu::disasm::render_inst;
use mercurial_simcpu::unitmap::unit_of;
use mercurial_simcpu::{Inst, Memory, Program, SimCore, StepOutcome, Trap};
use serde::{Deserialize, Serialize};

/// The outcome of a lockstep comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Divergence {
    /// Both cores executed identically to completion.
    None,
    /// The suspect's architectural state first differed after this
    /// instruction.
    At {
        /// Program counter of the divergent instruction.
        pc: u32,
        /// Retired-instruction index (the how-many-th instruction).
        step: u64,
        /// The functional unit the divergent instruction used — the
        /// evidence that localizes the defect.
        unit: FunctionalUnit,
        /// Human-readable rendering of the instruction.
        inst: String,
    },
    /// The suspect trapped where the reference did not.
    SuspectTrapped {
        /// The trap.
        trap: Trap,
        /// Retired-instruction index at the trap.
        step: u64,
    },
    /// The reference trapped (the program itself is bad) — no verdict.
    ReferenceTrapped(Trap),
}

impl Divergence {
    /// Whether the comparison indicts the suspect.
    pub fn indicts(&self) -> bool {
        matches!(
            self,
            Divergence::At { .. } | Divergence::SuspectTrapped { .. }
        )
    }

    /// The implicated unit, if the divergence names one.
    pub fn implicated_unit(&self) -> Option<FunctionalUnit> {
        match self {
            Divergence::At { unit, .. } => Some(*unit),
            _ => None,
        }
    }
}

/// Runs suspect and reference in lockstep over private memories.
pub struct DivergenceFinder {
    /// Maximum instructions before giving up (defends against corrupted
    /// branches manufacturing infinite loops).
    pub max_steps: u64,
    /// Memory size for each side.
    pub mem_size: usize,
}

impl Default for DivergenceFinder {
    fn default() -> DivergenceFinder {
        DivergenceFinder {
            max_steps: 2_000_000,
            mem_size: 1 << 16,
        }
    }
}

impl DivergenceFinder {
    /// Compares `suspect` against `reference` on `prog`, with `init_mem`
    /// staged into both memories.
    ///
    /// Both cores are reset first. State comparison covers the register
    /// files and output buffers after every retired instruction; memory is
    /// compared lazily through the registers that loaded from it (a store
    /// divergence surfaces at the next dependent load or output).
    pub fn compare(
        &self,
        suspect: &mut SimCore,
        reference: &mut SimCore,
        prog: &Program,
        init_mem: &[(u64, Vec<u8>)],
    ) -> Divergence {
        suspect.reset();
        reference.reset();
        let mut mem_s = Memory::new(self.mem_size);
        let mut mem_r = Memory::new(self.mem_size);
        for (addr, bytes) in init_mem {
            mem_s.write_bytes(*addr, bytes).expect("image fits");
            mem_r.write_bytes(*addr, bytes).expect("image fits");
        }
        for step in 0..self.max_steps {
            // Fetch what the *reference* is about to execute (the suspect
            // may have diverged in control flow, which the state compare
            // below catches via registers/outputs).
            let ref_pc = reference.pc();
            let inst = prog.insts.get(ref_pc as usize).copied();
            let r = match reference.step(prog, &mut mem_r) {
                Ok(o) => o,
                Err(t) => return Divergence::ReferenceTrapped(t),
            };
            let s = match suspect.step(prog, &mut mem_s) {
                Ok(o) => o,
                Err(trap) => return Divergence::SuspectTrapped { trap, step },
            };
            if !states_agree(suspect, reference) {
                let inst = inst.unwrap_or(Inst::Nop);
                return Divergence::At {
                    pc: ref_pc,
                    step,
                    unit: unit_of(&inst),
                    inst: render_inst(&inst),
                };
            }
            match (s, r) {
                (StepOutcome::Halted, StepOutcome::Halted) => return Divergence::None,
                (StepOutcome::Halted, _) | (_, StepOutcome::Halted) => {
                    let inst = inst.unwrap_or(Inst::Nop);
                    return Divergence::At {
                        pc: ref_pc,
                        step,
                        unit: unit_of(&inst),
                        inst: render_inst(&inst),
                    };
                }
                _ => {}
            }
        }
        Divergence::None
    }
}

fn states_agree(a: &SimCore, b: &SimCore) -> bool {
    if a.pc() != b.pc() || a.output() != b.output() {
        return false;
    }
    (0..16).all(|i| a.reg(mercurial_simcpu::Reg(i)) == b.reg(mercurial_simcpu::Reg(i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_fault::{library, Injector};
    use mercurial_simcpu::{assemble, CoreConfig};

    fn suspect(profile: mercurial_fault::CoreFaultProfile) -> SimCore {
        SimCore::new(CoreConfig::default(), Some(Injector::new(3, profile)))
    }

    fn reference() -> SimCore {
        SimCore::new(CoreConfig::default(), None)
    }

    #[test]
    fn identical_cores_never_diverge() {
        let prog = assemble(
            "li x1, 100
             loop:
             addi x1, x1, -1
             mul x2, x1, x1
             bnz x1, loop
             out x2
             halt",
        )
        .unwrap();
        let finder = DivergenceFinder::default();
        let mut a = reference();
        let mut b = reference();
        assert_eq!(finder.compare(&mut a, &mut b, &prog, &[]), Divergence::None);
    }

    #[test]
    fn divergence_names_the_defective_unit() {
        // A hot multiplier defect: the first divergent instruction must be
        // a MulDiv instruction.
        let prog = assemble(
            "li x1, 7
             li x2, 9
             add x3, x1, x2
             mul x4, x1, x2
             out x4
             halt",
        )
        .unwrap();
        let finder = DivergenceFinder::default();
        let mut bad = suspect(library::late_onset_muldiv(0.0, 1.0));
        let mut good = reference();
        let d = finder.compare(&mut bad, &mut good, &prog, &[]);
        assert!(d.indicts());
        assert_eq!(d.implicated_unit(), Some(FunctionalUnit::MulDiv));
        match d {
            Divergence::At { pc, .. } => assert_eq!(pc, 3, "the mul at pc 3"),
            other => panic!("expected At, got {other:?}"),
        }
    }

    #[test]
    fn crashy_defect_reports_suspect_trap() {
        let prog = assemble(
            "li x1, 512
             ld x2, x1, 0
             out x2
             halt",
        )
        .unwrap();
        let finder = DivergenceFinder::default();
        let mut bad = suspect(library::addressgen_crasher(1.0));
        let mut good = reference();
        match finder.compare(&mut bad, &mut good, &prog, &[]) {
            Divergence::SuspectTrapped { .. } => {}
            other => panic!("expected suspect trap, got {other:?}"),
        }
    }

    #[test]
    fn vector_copy_defect_localized_to_vector_pipe() {
        let prog = assemble(
            "li x1, 2048
             li x2, 1024
             li x3, 64
             memcpy x1, x2, x3
             ld x4, x1, 0
             out x4
             halt",
        )
        .unwrap();
        let finder = DivergenceFinder::default();
        let mut bad = suspect(library::vector_copy_coupled(1.0));
        let mut good = reference();
        let init = vec![(1024u64, vec![0xabu8; 64])];
        let d = finder.compare(&mut bad, &mut good, &prog, &init);
        assert!(d.indicts());
        // The corruption happens inside the memcpy but only becomes
        // architecturally visible at the dependent load; either attribution
        // is acceptable evidence.
        match d.implicated_unit() {
            Some(FunctionalUnit::VectorPipe) | Some(FunctionalUnit::LoadStore) => {}
            other => panic!("implicated {other:?}"),
        }
    }

    #[test]
    fn reference_trap_is_not_an_indictment() {
        let prog = assemble(
            "li x1, 0
             li x2, 5
             div x3, x2, x1
             halt",
        )
        .unwrap();
        let finder = DivergenceFinder::default();
        let mut bad = suspect(library::string_bitflip(3, 0.5));
        let mut good = reference();
        let d = finder.compare(&mut bad, &mut good, &prog, &[]);
        assert!(matches!(d, Divergence::ReferenceTrapped(Trap::DivByZero)));
        assert!(!d.indicts());
    }
}
