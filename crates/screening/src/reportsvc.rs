//! The suspect-core report service.
//!
//! §6: "One of our particularly useful tools is a simple RPC service that
//! allows an application to report a suspect core or CPU. Reports that are
//! evenly spread across cores probably are not CEEs; reports from multiple
//! applications that appear to be concentrated on a few cores might well
//! be CEEs, and become grounds for quarantining those cores, followed by
//! more careful checking."
//!
//! [`ReportService`] is that service, in-process: applications (or the
//! fleet simulator's signal stream) file reports; the service buckets them
//! and periodically runs the [`crate::concentration`] test to produce
//! suspects for deeper screening.

use crate::concentration::{concentration_suspects, ConcentratedCore, ConcentrationConfig};
use mercurial_fault::CoreUid;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What the service currently believes about a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuspectVerdict {
    /// Not enough evidence, or evidence consistent with uniform noise.
    NotSuspect,
    /// Concentrated reports: grounds for quarantine + deeper checking.
    Suspect,
}

/// One filed report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// When it was filed.
    pub hour: f64,
    /// The accused core.
    pub core: CoreUid,
}

/// The suspect-core report service.
#[derive(Debug, Clone)]
pub struct ReportService {
    config: ConcentrationConfig,
    /// Size of the core universe (for the uniformity null).
    total_cores: u64,
    /// Sliding-window length: old reports age out.
    window_hours: f64,
    reports: Vec<Report>,
}

impl ReportService {
    /// Creates a service over a fleet of `total_cores` cores with a
    /// sliding evidence window.
    ///
    /// # Panics
    ///
    /// Panics if `total_cores == 0` or the window is not positive.
    pub fn new(total_cores: u64, window_hours: f64, config: ConcentrationConfig) -> ReportService {
        assert!(total_cores > 0, "need a non-empty core universe");
        assert!(window_hours > 0.0, "window must be positive");
        ReportService {
            config,
            total_cores,
            window_hours,
            reports: Vec::new(),
        }
    }

    /// Files a report against a core (the "RPC").
    pub fn report(&mut self, hour: f64, core: CoreUid) {
        self.reports.push(Report { hour, core });
    }

    /// Number of reports currently inside the window ending at `now`.
    pub fn reports_in_window(&self, now: f64) -> usize {
        self.reports
            .iter()
            .filter(|r| r.hour > now - self.window_hours && r.hour <= now)
            .count()
    }

    /// Runs the concentration test over the window ending at `now` and
    /// returns the suspects, most extreme first.
    pub fn suspects(&self, now: f64) -> Vec<ConcentratedCore> {
        let mut counts: HashMap<CoreUid, u64> = HashMap::new();
        for r in &self.reports {
            if r.hour > now - self.window_hours && r.hour <= now {
                *counts.entry(r.core).or_insert(0) += 1;
            }
        }
        concentration_suspects(&counts, self.total_cores, self.config)
    }

    /// The service's verdict on a single core at time `now`.
    pub fn verdict(&self, core: CoreUid, now: f64) -> SuspectVerdict {
        if self.suspects(now).iter().any(|s| s.core == core) {
            SuspectVerdict::Suspect
        } else {
            SuspectVerdict::NotSuspect
        }
    }

    /// Drops reports older than the window ending at `now` (bounded
    /// memory for long simulations).
    pub fn compact(&mut self, now: f64) {
        let cutoff = now - self.window_hours;
        self.reports.retain(|r| r.hour > cutoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> ReportService {
        ReportService::new(100_000, 24.0 * 14.0, ConcentrationConfig::default())
    }

    #[test]
    fn no_reports_no_suspects() {
        let s = svc();
        assert!(s.suspects(100.0).is_empty());
        assert_eq!(
            s.verdict(CoreUid::new(1, 0, 0), 100.0),
            SuspectVerdict::NotSuspect
        );
    }

    #[test]
    fn concentrated_core_becomes_suspect() {
        let mut s = svc();
        let bad = CoreUid::new(7, 1, 3);
        // Background: scattered single reports.
        for i in 0..50 {
            s.report(10.0 + i as f64, CoreUid::new(1000 + i, 0, 0));
        }
        // Concentration: ten reports on one core.
        for i in 0..10 {
            s.report(20.0 + i as f64, bad);
        }
        let suspects = s.suspects(100.0);
        assert_eq!(suspects.len(), 1);
        assert_eq!(suspects[0].core, bad);
        assert_eq!(s.verdict(bad, 100.0), SuspectVerdict::Suspect);
    }

    #[test]
    fn reports_age_out_of_the_window() {
        let mut s = ReportService::new(100_000, 100.0, ConcentrationConfig::default());
        let bad = CoreUid::new(3, 0, 0);
        for i in 0..10 {
            s.report(i as f64, bad);
        }
        assert_eq!(s.verdict(bad, 50.0), SuspectVerdict::Suspect);
        // 200 hours later the evidence has expired.
        assert_eq!(s.verdict(bad, 250.0), SuspectVerdict::NotSuspect);
        assert_eq!(s.reports_in_window(250.0), 0);
    }

    #[test]
    fn compact_preserves_window_contents() {
        let mut s = ReportService::new(1000, 100.0, ConcentrationConfig::default());
        let core = CoreUid::new(1, 0, 0);
        for i in 0..20 {
            s.report(i as f64 * 20.0, core);
        }
        let before = s.reports_in_window(400.0);
        s.compact(400.0);
        assert_eq!(s.reports_in_window(400.0), before);
        assert!(s.reports.len() <= before + 1);
    }
}
