//! Automated screeners: burn-in, offline, and online.
//!
//! §6's tradeoffs, made executable:
//!
//! * **Burn-in** happens once, pre-deployment, with a generous test budget
//!   — but at age zero, so latent defects sail through ("not all
//!   mercurial-core screening can be done before CPUs are put into
//!   service — first, because some cores only become defective after
//!   considerable time has passed").
//! * **Offline screening** "can be more intrusive and can be scheduled to
//!   ensure coverage of all cores, and could involve exposing CPUs to
//!   operating conditions (f, V, T) outside normal ranges. However,
//!   draining a workload from the core … can be expensive." It sweeps the
//!   product's DVFS curve (catching the low-frequency-is-worse defects)
//!   and charges a drain cost per machine.
//! * **Online screening** "is free (except for power costs), but cannot
//!   always provide complete coverage": spare-cycle tests at the nominal
//!   operating point only, with a small per-epoch budget.
//!
//! Coverage is not static: "our regular fleet-wide testing has expanded to
//! new classes of CEEs as we and our CPU vendors discover them, still a
//! few times per year." [`EraSchedule`] encodes that growth — it is the
//! mechanism behind Figure 1's gradually rising automatic-detection rate.

use mercurial_fault::{CoreUid, FunctionalUnit, OperatingPoint};
use mercurial_fault::{FastMap, FastSet};
use mercurial_fleet::par::map_parallel;
use mercurial_fleet::population::TestSpec;
use mercurial_fleet::FleetTopology;
use mercurial_fleet::{Population, Signal, SignalKind, SignalLog};
use mercurial_trace::Recorder;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How a core was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectionMethod {
    /// Pre-deployment burn-in.
    BurnIn,
    /// Scheduled offline sweep.
    Offline,
    /// Spare-cycle online screening.
    Online,
    /// Human triage confirmation.
    Triage,
}

/// One confirmed detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionRecord {
    /// The detected core.
    pub core: CoreUid,
    /// Fleet hour of detection.
    pub hour: f64,
    /// Which mechanism caught it.
    pub method: DetectionMethod,
}

/// Cost/coverage accounting for a screening campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ScreeningStats {
    /// Individual core-screens executed.
    pub core_screens: u64,
    /// Total test operations charged.
    pub test_ops: u64,
    /// Machine-hours spent drained (offline only).
    pub drained_machine_hours: f64,
    /// Detections produced.
    pub detections: u64,
}

/// One era of screening coverage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScreeningEra {
    /// The era applies from this month (inclusive).
    pub from_month: u32,
    /// Units the test corpus of this era exercises.
    pub units: Vec<FunctionalUnit>,
    /// Test operations per covered unit per screen.
    pub ops_per_unit: u64,
    /// Operand patterns the era's tests use.
    pub operands: Vec<u64>,
    /// Whether screens sweep the DVFS curve and a hot point (offline only;
    /// online screening always runs at the nominal point).
    pub sweep_points: bool,
}

/// The coverage-growth schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EraSchedule {
    eras: Vec<ScreeningEra>,
}

impl EraSchedule {
    /// Builds a schedule from eras (sorted by `from_month`).
    ///
    /// # Panics
    ///
    /// Panics if `eras` is empty or no era starts at month 0.
    pub fn new(mut eras: Vec<ScreeningEra>) -> EraSchedule {
        assert!(!eras.is_empty(), "need at least one era");
        eras.sort_by_key(|e| e.from_month);
        assert_eq!(eras[0].from_month, 0, "the first era must start at month 0");
        EraSchedule { eras }
    }

    /// The default history: coverage grows "a few times per year", from a
    /// scalar-only corpus to full-unit coverage with (f, V, T) sweeps.
    pub fn default_history() -> EraSchedule {
        use FunctionalUnit as U;
        EraSchedule::new(vec![
            ScreeningEra {
                from_month: 0,
                units: vec![U::ScalarAlu, U::MulDiv, U::Fma, U::LoadStore],
                ops_per_unit: 100_000,
                operands: vec![0, u64::MAX],
                sweep_points: false,
            },
            ScreeningEra {
                from_month: 6,
                units: vec![U::ScalarAlu, U::MulDiv, U::Fma, U::LoadStore, U::VectorPipe],
                ops_per_unit: 200_000,
                operands: vec![0, u64::MAX, 0xaaaa_aaaa_aaaa_aaaa, 0x5555_5555_5555_5555],
                sweep_points: false,
            },
            ScreeningEra {
                from_month: 12,
                units: vec![
                    U::ScalarAlu,
                    U::MulDiv,
                    U::Fma,
                    U::LoadStore,
                    U::VectorPipe,
                    U::Atomics,
                    U::BranchUnit,
                ],
                ops_per_unit: 400_000,
                operands: TestSpec::default_operands(),
                sweep_points: true,
            },
            ScreeningEra {
                from_month: 20,
                units: vec![
                    U::ScalarAlu,
                    U::MulDiv,
                    U::Fma,
                    U::LoadStore,
                    U::VectorPipe,
                    U::Atomics,
                    U::BranchUnit,
                    U::CryptoUnit,
                ],
                ops_per_unit: 600_000,
                operands: TestSpec::default_operands(),
                sweep_points: true,
            },
            ScreeningEra {
                from_month: 28,
                units: FunctionalUnit::ALL.to_vec(),
                ops_per_unit: 1_000_000,
                operands: TestSpec::default_operands(),
                sweep_points: true,
            },
        ])
    }

    /// A frozen schedule (the month-0 era forever) — the ablation foil.
    pub fn frozen(era: ScreeningEra) -> EraSchedule {
        EraSchedule::new(vec![ScreeningEra {
            from_month: 0,
            ..era
        }])
    }

    /// Returns a schedule whose every era additionally runs fuzz-distilled
    /// content: `units` are added to each era's coverage, `operands` to its
    /// pattern set, and `extra_ops_per_unit` to its op budget.
    ///
    /// This is how a distilled proxy-fuzzing corpus (the `mercurial-fuzz`
    /// crate) reaches BurnIn/Offline/Online screeners without changing
    /// their mechanics: fuzz content closes unit and operand-pattern gaps
    /// the hand-written eras leave open.
    pub fn with_fuzz_content(
        &self,
        units: &[FunctionalUnit],
        operands: &[u64],
        extra_ops_per_unit: u64,
    ) -> EraSchedule {
        let eras = self
            .eras
            .iter()
            .map(|e| {
                let mut era = e.clone();
                for &u in units {
                    if !era.units.contains(&u) {
                        era.units.push(u);
                    }
                }
                for &op in operands {
                    if !era.operands.contains(&op) {
                        era.operands.push(op);
                    }
                }
                era.ops_per_unit += extra_ops_per_unit;
                era
            })
            .collect();
        // Months are untouched, so the sorted/month-0 invariants hold.
        EraSchedule { eras }
    }

    /// The era in force during `month`.
    pub fn era_at(&self, month: u32) -> &ScreeningEra {
        self.eras
            .iter()
            .rev()
            .find(|e| e.from_month <= month)
            .expect("an era starts at month 0")
    }

    /// All eras.
    pub fn eras(&self) -> &[ScreeningEra] {
        &self.eras
    }
}

fn spec_for(era: &ScreeningEra, point: OperatingPoint) -> TestSpec {
    let mut unit_ops = [0u64; 9];
    for u in &era.units {
        unit_ops[u.index()] = era.ops_per_unit;
    }
    TestSpec {
        unit_ops,
        operands: era.operands.clone(),
        point,
    }
}

/// The operating points a sweeping screen visits for a product: the DVFS
/// extremes plus a hot variant (catching both high-frequency and the
/// surprising low-frequency defects, and thermal sensitivity).
fn sweep_points(topo: &FleetTopology, machine: u32, sweep: bool) -> Vec<OperatingPoint> {
    let curve = &topo.product_of(machine).dvfs;
    if sweep {
        vec![
            curve.max_point(65),
            curve.min_point(65),
            curve.max_point(92),
        ]
    } else {
        vec![curve.max_point(65)]
    }
}

/// Screens every core of a machine with the spec-per-point, returning
/// newly detected cores.
///
/// Only the machine's *mercurial* cores are walked per-point: a healthy
/// core has detection probability exactly 0 at every operating point, so
/// [`Population::screen_core`] returns `false` for it without consulting
/// the RNG — its screens reduce to the closed-form counter bump at the
/// end, bit-identical to looping over it (which earlier revisions did,
/// and which dominated fleet-scale wall clock).
///
/// `detected_on_machine` is a sorted read-only snapshot of this machine's
/// already-detected cores: each core is visited at most once per call, so
/// deferring the inserts to the caller changes nothing — and it is what
/// lets machines of one sweep run on different threads (machines own
/// disjoint core sets).
#[allow(clippy::too_many_arguments)]
fn screen_machine(
    topo: &FleetTopology,
    pop: &Population,
    machine: u32,
    era: &ScreeningEra,
    sweep: bool,
    hour: f64,
    test_id_base: u64,
    detected_on_machine: &[CoreUid],
    stats: &mut ScreeningStats,
) -> Vec<CoreUid> {
    let age = topo.age_hours(machine, hour);
    let points = sweep_points(topo, machine, sweep);
    let ops_per_screen = era.ops_per_unit * era.units.len() as u64;
    let mut newly = Vec::new();
    let mut hot_screened = 0u64;
    // One spec per sweep point, shared by every hot core of the machine —
    // and built only if the machine hosts an undetected mercurial core.
    let mut specs: Option<Vec<TestSpec>> = None;
    for hot in pop.mercurial_on(machine) {
        let core = hot.uid;
        if detected_on_machine.binary_search(&core).is_ok() {
            continue;
        }
        hot_screened += 1;
        let specs = specs.get_or_insert_with(|| points.iter().map(|&p| spec_for(era, p)).collect());
        for (pi, spec) in specs.iter().enumerate() {
            stats.core_screens += 1;
            stats.test_ops += ops_per_screen;
            let test_id = test_id_base
                .wrapping_mul(1_000_003)
                .wrapping_add(core.as_u64())
                .wrapping_add(pi as u64);
            if pop.screen_core(core, spec, age, test_id) {
                newly.push(core);
                stats.detections += 1;
                break;
            }
        }
    }
    // Every other core is healthy and undetected: screened at every point,
    // never failing, never drawing randomness.
    let clean = topo.cores_on(machine) - hot_screened - detected_on_machine.len() as u64;
    stats.core_screens += clean * points.len() as u64;
    stats.test_ops += clean * points.len() as u64 * ops_per_screen;
    newly
}

/// One machine's worth of screening work within a sweep/pass.
///
/// The era is `Arc`-shared across a sweep's tasks (it owns two `Vec`s)
/// and the operating points are re-derived from `sweep` inside
/// [`screen_machine`], keeping task materialization allocation-free.
struct MachineTask {
    machine: u32,
    era: Arc<ScreeningEra>,
    sweep: bool,
    hour: f64,
    test_id_base: u64,
    drain_hours: f64,
    method: DetectionMethod,
}

/// How a campaign turns a sweep/pass into per-machine tasks.
///
/// Whenever telemetry records (counters are charged per task, spans per
/// machine), every machine needs a task. Untraced, only "hot" machines —
/// those hosting a mercurial or already-detected core — can differ from
/// the closed-form counter bump, so the all-healthy remainder is folded
/// into [`ScreeningStats`] arithmetic without materializing tasks.
/// Bit-for-bit equality with the per-machine walk holds because clean
/// machines never draw randomness, never detect, and charge
/// order-independent counters (the f64 drain accumulator sums the same
/// per-machine constant the same number of times, so reordering clean
/// relative to hot machines cannot change the float result).
enum ScreenPlan<'a> {
    /// Materialize a task per machine (required while tracing).
    EveryMachine,
    /// Tasks only for this sorted machine set; the rest go to counters.
    HotOnly(&'a [u32]),
}

/// Whether the recorder forces the fully materialized per-machine walk.
fn per_task_trace(rec: &Recorder) -> bool {
    rec.flags().enabled
}

/// Whether `machine` belongs to the campaign's machine shard (`None`
/// means the whole fleet). Sharded campaigns skip non-owned machines
/// entirely — tasks, closed-form accounting, and drain charges — so a
/// partition of shards sums to the unsharded campaign exactly (every
/// machine is owned by exactly one shard and machines are independent).
fn shard_owns(shard: Option<(u32, u32)>, machine: u32) -> bool {
    shard.is_none_or(|(lo, hi)| machine >= lo && machine < hi)
}

/// The sorted set of machines hosting a mercurial or detected core — the
/// only machines whose screening can deviate from closed-form accounting.
fn hot_machines(pop: &Population, detected: &FastSet<CoreUid>) -> Vec<u32> {
    let mut hot: Vec<u32> = pop
        .mercurial_cores()
        .map(|c| c.uid.machine)
        .chain(detected.iter().map(|c| c.machine))
        .collect();
    hot.sort_unstable();
    hot.dedup();
    hot
}

/// The mutable outputs a screener accumulates into: the cross-screener
/// detected set, the shared signal log, and this policy's records/stats.
struct ScreenSinks<'a> {
    detected: &'a mut FastSet<CoreUid>,
    log: &'a mut SignalLog,
    records: &'a mut Vec<DetectionRecord>,
    stats: &'a mut ScreeningStats,
}

/// The `detect.*` instant-event name for a detection method.
fn detect_event_name(method: DetectionMethod) -> &'static str {
    match method {
        DetectionMethod::BurnIn => "detect.burnin",
        DetectionMethod::Offline => "detect.offline",
        DetectionMethod::Online => "detect.online",
        DetectionMethod::Triage => "detect.triage",
    }
}

/// Fans a batch of per-machine screens through [`map_parallel`] and merges
/// the results serially in machine order.
///
/// Machines own disjoint core sets and `screen_machine` reads `detected`
/// as a snapshot, so the merged outcome is bit-for-bit identical to the
/// serial loop at any worker count — including the `ScreeningStats` f64
/// drain accumulation, which is summed in the same order the serial loop
/// would have. Telemetry is emitted only in the serial merge loop (task
/// order), so the trace inherits the same determinism.
fn run_machine_tasks(
    topo: &FleetTopology,
    pop: &Population,
    tasks: &[MachineTask],
    parallelism: usize,
    sinks: &mut ScreenSinks<'_>,
    rec: &mut Recorder,
) {
    let machine_spans = rec.flags().machine_spans;
    // Group the detected snapshot by machine once per batch: each task
    // then binary-searches a short sorted slice instead of hashing every
    // core of its machine.
    let mut by_machine: FastMap<u32, Vec<CoreUid>> = FastMap::default();
    for &core in sinks.detected.iter() {
        by_machine.entry(core.machine).or_default().push(core);
    }
    for cores in by_machine.values_mut() {
        cores.sort_unstable();
    }
    let results: Vec<(Vec<CoreUid>, ScreeningStats)> = map_parallel(tasks, parallelism, |task| {
        let mut local = ScreeningStats::default();
        let detected_on_machine = by_machine
            .get(&task.machine)
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        let newly = screen_machine(
            topo,
            pop,
            task.machine,
            &task.era,
            task.sweep,
            task.hour,
            task.test_id_base,
            detected_on_machine,
            &mut local,
        );
        (newly, local)
    });
    // The three screen.* counters are bumped once per batch, not once per
    // task: a campaign sweep runs millions of machine tasks, and a
    // per-task `counter_add` turns the merge loop into millions of
    // metric-map lookups that dwarf the screening work itself. u64 sums
    // are exactly associative, so the batch totals are bit-identical.
    let (mut core_screens, mut test_ops, mut detections) = (0u64, 0u64, 0u64);
    for (task, (newly, local)) in tasks.iter().zip(results) {
        if machine_spans {
            rec.begin(task.hour, "screen.machine");
            rec.end(task.hour + task.drain_hours, "screen.machine");
        }
        core_screens += local.core_screens;
        test_ops += local.test_ops;
        detections += local.detections;
        sinks.stats.drained_machine_hours += task.drain_hours;
        sinks.stats.core_screens += local.core_screens;
        sinks.stats.test_ops += local.test_ops;
        sinks.stats.detections += local.detections;
        for core in newly {
            rec.instant(
                task.hour,
                detect_event_name(task.method),
                Some(core.as_u64()),
                0.0,
            );
            sinks.detected.insert(core);
            sinks.records.push(DetectionRecord {
                core,
                hour: task.hour,
                method: task.method,
            });
            sinks.log.push(Signal {
                hour: task.hour,
                core,
                kind: SignalKind::ScreenerFailure,
                caused_by_cee: true,
            });
        }
    }
    if !tasks.is_empty() {
        rec.counter_add("screen.core_screens", core_screens);
        rec.counter_add("screen.test_ops", test_ops);
        rec.counter_add("screen.detections", detections);
    }
}

/// Pre-deployment burn-in: a heavy screen at machine deploy time, age 0.
#[derive(Debug, Clone)]
pub struct BurnIn {
    /// Coverage used during burn-in (typically the era in force when the
    /// machine shipped).
    pub schedule: EraSchedule,
    /// Multiplier on the era's op budget (burn-in can afford more).
    pub ops_multiplier: u64,
    /// Worker threads for the per-machine fan-out (1 = serial; results
    /// are identical at any value).
    pub parallelism: usize,
}

impl BurnIn {
    /// The burn-in screen for one machine at its deploy hour.
    fn task_for(&self, machine: u32, deploy_hour: f64) -> MachineTask {
        let month = (deploy_hour / 730.0) as u32;
        let mut era = self.schedule.era_at(month).clone();
        era.ops_per_unit *= self.ops_multiplier.max(1);
        MachineTask {
            machine,
            era: Arc::new(era),
            sweep: true,
            hour: deploy_hour,
            test_id_base: 0xb1b1 ^ machine as u64,
            drain_hours: 0.0,
            method: DetectionMethod::BurnIn,
        }
    }

    /// Runs burn-in for every machine at its deploy hour (machine order).
    pub fn run(
        &self,
        topo: &FleetTopology,
        pop: &Population,
        detected: &mut FastSet<CoreUid>,
        log: &mut SignalLog,
    ) -> (Vec<DetectionRecord>, ScreeningStats) {
        let mut stats = ScreeningStats::default();
        let mut records = Vec::new();
        let tasks: Vec<MachineTask> = topo
            .machines()
            .iter()
            .map(|m| self.task_for(m.machine, m.deploy_hour))
            .collect();
        run_machine_tasks(
            topo,
            pop,
            &tasks,
            self.parallelism,
            &mut ScreenSinks {
                detected: &mut *detected,
                log: &mut *log,
                records: &mut records,
                stats: &mut stats,
            },
            &mut Recorder::disabled(),
        );
        (records, stats)
    }

    /// Starts an incremental campaign over the rollout: machines are
    /// screened as their deploy hour is reached, in `(deploy_hour,
    /// machine)` order, via [`BurnInCampaign::step_until`].
    pub fn campaign(&self, topo: &FleetTopology) -> BurnInCampaign {
        self.campaign_shard(topo, None)
    }

    /// [`BurnIn::campaign`] restricted to machines in `shard` (`[lo, hi)`)
    /// — the per-worker half of the serve split. A partition of shard
    /// campaigns screens every machine exactly once, in the same
    /// per-machine order and with the same test ids as the full campaign.
    pub fn campaign_shard(
        &self,
        topo: &FleetTopology,
        shard: Option<(u32, u32)>,
    ) -> BurnInCampaign {
        let mut queue: Vec<(f64, u32)> = topo
            .machines()
            .iter()
            .filter(|m| shard_owns(shard, m.machine))
            .map(|m| (m.deploy_hour, m.machine))
            .collect();
        queue.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("deploy hours are finite")
                .then(a.1.cmp(&b.1))
        });
        BurnInCampaign {
            screener: self.clone(),
            queue,
            cursor: 0,
            stats: ScreeningStats::default(),
        }
    }
}

/// Resumable burn-in cursor (see [`BurnIn::campaign`]).
///
/// Unlike the batch [`BurnIn::run`] — which screens in machine order with
/// one frozen `detected` snapshot — the campaign screens machines in
/// deploy-hour order and refreshes the snapshot every step, so it
/// interleaves correctly with an epoch-stepped simulation.
#[derive(Debug, Clone)]
pub struct BurnInCampaign {
    screener: BurnIn,
    /// `(deploy_hour, machine)`, sorted ascending.
    queue: Vec<(f64, u32)>,
    cursor: usize,
    stats: ScreeningStats,
}

impl BurnInCampaign {
    /// Screens every machine whose deploy hour lies before `until_hour`
    /// (exclusive) and has not been screened yet, skipping cores in
    /// `detected`; returns the new detections.
    pub fn step_until(
        &mut self,
        topo: &FleetTopology,
        pop: &Population,
        until_hour: f64,
        detected: &mut FastSet<CoreUid>,
        log: &mut SignalLog,
    ) -> Vec<DetectionRecord> {
        self.step_until_traced(
            topo,
            pop,
            until_hour,
            detected,
            log,
            &mut Recorder::disabled(),
        )
    }

    /// [`BurnInCampaign::step_until`] with telemetry: a `screen.burnin`
    /// span over the due batch plus per-detection `detect.burnin` instants.
    pub fn step_until_traced(
        &mut self,
        topo: &FleetTopology,
        pop: &Population,
        until_hour: f64,
        detected: &mut FastSet<CoreUid>,
        log: &mut SignalLog,
        rec: &mut Recorder,
    ) -> Vec<DetectionRecord> {
        let due = self.queue[self.cursor..]
            .iter()
            .take_while(|(h, _)| *h < until_hour)
            .count();
        let due_batch = &self.queue[self.cursor..self.cursor + due];
        let hot;
        let plan = if per_task_trace(rec) {
            ScreenPlan::EveryMachine
        } else {
            hot = hot_machines(pop, detected);
            ScreenPlan::HotOnly(&hot)
        };
        let mut tasks = Vec::new();
        for &(hour, machine) in due_batch {
            match &plan {
                ScreenPlan::HotOnly(hot) if hot.binary_search(&machine).is_err() => {
                    // An all-healthy machine's burn-in is pure accounting:
                    // every core, three sweep points, zero detections.
                    let month = (hour / 730.0) as u32;
                    let era = self.screener.schedule.era_at(month);
                    let ops_per_screen = era.ops_per_unit
                        * self.screener.ops_multiplier.max(1)
                        * era.units.len() as u64;
                    let screens = topo.cores_on(machine) * 3;
                    self.stats.core_screens += screens;
                    self.stats.test_ops += screens * ops_per_screen;
                }
                _ => tasks.push(self.screener.task_for(machine, hour)),
            }
        }
        let span = due_batch
            .first()
            .map(|&(h, _)| (h, due_batch.last().unwrap().0));
        self.cursor += due;
        let mut records = Vec::new();
        if let Some((start, _)) = span {
            rec.begin(start, "screen.burnin");
        }
        run_machine_tasks(
            topo,
            pop,
            &tasks,
            self.screener.parallelism,
            &mut ScreenSinks {
                detected: &mut *detected,
                log: &mut *log,
                records: &mut records,
                stats: &mut self.stats,
            },
            rec,
        );
        if let Some((_, end)) = span {
            rec.end(end, "screen.burnin");
        }
        records
    }

    /// The deploy hour of the next unscreened machine, if any remain.
    pub fn next_hour(&self) -> Option<f64> {
        self.queue.get(self.cursor).map(|&(h, _)| h)
    }

    /// Cumulative campaign accounting.
    pub fn stats(&self) -> ScreeningStats {
        self.stats
    }
}

/// Scheduled offline sweeps over rotating machine subsets.
#[derive(Debug, Clone)]
pub struct OfflineScreener {
    /// Coverage schedule.
    pub schedule: EraSchedule,
    /// Hours between sweeps.
    pub interval_hours: f64,
    /// Fraction of the fleet visited per sweep (rotating).
    pub fraction_per_sweep: f64,
    /// Machine-hours of drain charged per machine screened (migration +
    /// idle time; the §6 "draining a workload … can be expensive").
    pub drain_hours_per_machine: f64,
    /// Worker threads for the per-machine fan-out within a sweep (1 =
    /// serial; results are identical at any value).
    pub parallelism: usize,
}

impl Default for OfflineScreener {
    fn default() -> OfflineScreener {
        OfflineScreener {
            schedule: EraSchedule::default_history(),
            interval_hours: 730.0 / 2.0, // twice a month
            fraction_per_sweep: 0.10,
            drain_hours_per_machine: 0.5,
            parallelism: 1,
        }
    }
}

impl OfflineScreener {
    /// One sweep's per-machine tasks (the rotating fleet subset deployed
    /// at `hour`), folding plan-skipped machines into `stats`.
    fn sweep_tasks(
        &self,
        topo: &FleetTopology,
        hour: f64,
        sweep_idx: u64,
        shard: Option<(u32, u32)>,
        plan: &ScreenPlan<'_>,
        stats: &mut ScreeningStats,
    ) -> Vec<MachineTask> {
        let n_machines = topo.machines().len() as u64;
        // Clamped so a sweep never visits a machine twice (a duplicate
        // would see a stale detected-snapshot under the parallel fan-out).
        let per_sweep = ((n_machines as f64 * self.fraction_per_sweep).ceil() as u64)
            .max(1)
            .min(n_machines);
        let month = (hour / 730.0) as u32;
        let era = Arc::new(self.schedule.era_at(month).clone());
        let points = if era.sweep_points { 3u64 } else { 1u64 };
        let ops_per_screen = era.ops_per_unit * era.units.len() as u64;
        // Rotate deterministically through the fleet.
        let start = (sweep_idx * per_sweep) % n_machines;
        let mut tasks = Vec::new();
        for k in 0..per_sweep {
            let machine = ((start + k) % n_machines) as u32;
            // The rotation arithmetic (`start`, `per_sweep`) is global so
            // every shard agrees on which machines this sweep visits; a
            // shard then keeps only its own.
            if !shard_owns(shard, machine) || !topo.is_deployed(machine, hour) {
                continue;
            }
            match plan {
                ScreenPlan::HotOnly(hot) if hot.binary_search(&machine).is_err() => {
                    let screens = topo.cores_on(machine) * points;
                    stats.core_screens += screens;
                    stats.test_ops += screens * ops_per_screen;
                    stats.drained_machine_hours += self.drain_hours_per_machine;
                }
                _ => tasks.push(MachineTask {
                    machine,
                    era: Arc::clone(&era),
                    sweep: era.sweep_points,
                    hour,
                    test_id_base: 0x0ff1 ^ sweep_idx.wrapping_mul(65_537),
                    drain_hours: self.drain_hours_per_machine,
                    method: DetectionMethod::Offline,
                }),
            }
        }
        tasks
    }

    /// Runs the campaign over `months`, skipping cores already in
    /// `detected`; emits `ScreenerFailure` signals into `log`.
    pub fn run(
        &self,
        topo: &FleetTopology,
        pop: &Population,
        months: u32,
        detected: &mut FastSet<CoreUid>,
        log: &mut SignalLog,
    ) -> (Vec<DetectionRecord>, ScreeningStats) {
        let mut campaign = self.campaign(months);
        let records = campaign.step_until(topo, pop, f64::INFINITY, detected, log);
        (records, campaign.stats())
    }

    /// Starts an incremental campaign over `months`; sweeps fire as
    /// simulated time passes them via [`OfflineCampaign::step_until`].
    pub fn campaign(&self, months: u32) -> OfflineCampaign {
        self.campaign_shard(months, None)
    }

    /// [`OfflineScreener::campaign`] restricted to machines in `shard`:
    /// the sweep rotation stays globally synchronized (same `sweep_idx`,
    /// same test ids) while each shard screens only its own machines.
    pub fn campaign_shard(&self, months: u32, shard: Option<(u32, u32)>) -> OfflineCampaign {
        OfflineCampaign {
            screener: self.clone(),
            total_hours: months as f64 * 730.0,
            sweep_idx: 0,
            next_hour: self.interval_hours,
            shard,
            stats: ScreeningStats::default(),
        }
    }
}

/// Resumable offline-sweep cursor (see [`OfflineScreener::campaign`]).
#[derive(Debug, Clone)]
pub struct OfflineCampaign {
    screener: OfflineScreener,
    total_hours: f64,
    sweep_idx: u64,
    next_hour: f64,
    shard: Option<(u32, u32)>,
    stats: ScreeningStats,
}

impl OfflineCampaign {
    /// Runs every sweep scheduled before `until_hour` (exclusive, and
    /// never past the campaign window), skipping cores in `detected`;
    /// returns the new detections.
    pub fn step_until(
        &mut self,
        topo: &FleetTopology,
        pop: &Population,
        until_hour: f64,
        detected: &mut FastSet<CoreUid>,
        log: &mut SignalLog,
    ) -> Vec<DetectionRecord> {
        self.step_until_traced(
            topo,
            pop,
            until_hour,
            detected,
            log,
            &mut Recorder::disabled(),
        )
    }

    /// [`OfflineCampaign::step_until`] with telemetry: a `screen.offline`
    /// span per sweep (spanning its drain window) plus per-detection
    /// `detect.offline` instants.
    pub fn step_until_traced(
        &mut self,
        topo: &FleetTopology,
        pop: &Population,
        until_hour: f64,
        detected: &mut FastSet<CoreUid>,
        log: &mut SignalLog,
        rec: &mut Recorder,
    ) -> Vec<DetectionRecord> {
        let mut records = Vec::new();
        let hot;
        let plan = if per_task_trace(rec) {
            ScreenPlan::EveryMachine
        } else {
            // `hot` stays a superset across this call's sweeps: new
            // detections land on machines that host a mercurial core and
            // are therefore already in it.
            hot = hot_machines(pop, detected);
            ScreenPlan::HotOnly(&hot)
        };
        while self.next_hour < self.total_hours && self.next_hour < until_hour {
            let tasks = self.screener.sweep_tasks(
                topo,
                self.next_hour,
                self.sweep_idx,
                self.shard,
                &plan,
                &mut self.stats,
            );
            let span_end =
                self.next_hour + tasks.iter().map(|t| t.drain_hours).fold(0.0f64, f64::max);
            if !tasks.is_empty() {
                rec.begin(self.next_hour, "screen.offline");
            }
            run_machine_tasks(
                topo,
                pop,
                &tasks,
                self.screener.parallelism,
                &mut ScreenSinks {
                    detected: &mut *detected,
                    log: &mut *log,
                    records: &mut records,
                    stats: &mut self.stats,
                },
                rec,
            );
            if !tasks.is_empty() {
                rec.end(span_end, "screen.offline");
            }
            self.sweep_idx += 1;
            self.next_hour += self.screener.interval_hours;
        }
        records
    }

    /// The hour of the next sweep, if any remain in the window.
    pub fn next_hour(&self) -> Option<f64> {
        (self.next_hour < self.total_hours).then_some(self.next_hour)
    }

    /// Cumulative campaign accounting.
    pub fn stats(&self) -> ScreeningStats {
        self.stats
    }
}

/// Continuous spare-cycle screening at the nominal operating point.
#[derive(Debug, Clone)]
pub struct OnlineScreener {
    /// Coverage schedule (sweeps are ignored: online cannot change f/V/T
    /// under colocated workloads).
    pub schedule: EraSchedule,
    /// Hours between passes over the whole deployed fleet.
    pub interval_hours: f64,
    /// Fraction of the era's op budget available from spare cycles.
    pub ops_fraction: f64,
    /// Worker threads for the per-machine fan-out within a pass (1 =
    /// serial; results are identical at any value).
    pub parallelism: usize,
}

impl Default for OnlineScreener {
    fn default() -> OnlineScreener {
        OnlineScreener {
            schedule: EraSchedule::default_history(),
            interval_hours: 73.0,
            ops_fraction: 0.05,
            parallelism: 1,
        }
    }
}

impl OnlineScreener {
    /// One pass's per-machine tasks (every machine deployed at `hour`,
    /// with the era's op budget scaled to spare cycles), folding
    /// plan-skipped machines into `stats`.
    ///
    /// Under [`ScreenPlan::HotOnly`] the pass never walks the fleet:
    /// tasks come from the hot set (ascending machine order, matching the
    /// full walk) and the healthy remainder is a [`FleetTopology::
    /// deployed_cores`] lookup — one screen per core at the nominal
    /// point, zero detections, no randomness.
    fn pass_tasks(
        &self,
        topo: &FleetTopology,
        hour: f64,
        pass: u64,
        shard: Option<(u32, u32)>,
        plan: &ScreenPlan<'_>,
        stats: &mut ScreeningStats,
    ) -> Vec<MachineTask> {
        let month = (hour / 730.0) as u32;
        let mut scaled = self.schedule.era_at(month).clone();
        scaled.ops_per_unit =
            ((scaled.ops_per_unit as f64 * self.ops_fraction).ceil() as u64).max(1);
        let ops_per_screen = scaled.ops_per_unit * scaled.units.len() as u64;
        let era = Arc::new(scaled);
        let task = |machine: u32| MachineTask {
            machine,
            era: Arc::clone(&era),
            sweep: false,
            hour,
            test_id_base: 0x0a11 ^ pass.wrapping_mul(2_654_435_761),
            drain_hours: 0.0,
            method: DetectionMethod::Online,
        };
        match plan {
            ScreenPlan::EveryMachine => topo
                .machines()
                .iter()
                .filter(|m| shard_owns(shard, m.machine) && topo.is_deployed(m.machine, hour))
                .map(|m| task(m.machine))
                .collect(),
            ScreenPlan::HotOnly(hot) => {
                let mut hot_cores = 0u64;
                let tasks: Vec<MachineTask> = hot
                    .iter()
                    .copied()
                    .filter(|&machine| {
                        shard_owns(shard, machine) && topo.is_deployed(machine, hour)
                    })
                    .inspect(|&machine| hot_cores += topo.cores_on(machine))
                    .map(task)
                    .collect();
                // The closed-form remainder is shard-scoped too: ranged
                // deployed-core sums over a machine partition add to the
                // global prefix-sum lookup exactly (same integer cores).
                let clean = match shard {
                    None => topo.deployed_cores(hour) - hot_cores,
                    Some((lo, hi)) => topo.deployed_cores_in_range(lo, hi, hour) - hot_cores,
                };
                stats.core_screens += clean;
                stats.test_ops += clean * ops_per_screen;
                tasks
            }
        }
    }

    /// Runs the campaign over `months`.
    pub fn run(
        &self,
        topo: &FleetTopology,
        pop: &Population,
        months: u32,
        detected: &mut FastSet<CoreUid>,
        log: &mut SignalLog,
    ) -> (Vec<DetectionRecord>, ScreeningStats) {
        let mut campaign = self.campaign(months);
        let records = campaign.step_until(topo, pop, f64::INFINITY, detected, log);
        (records, campaign.stats())
    }

    /// Starts an incremental campaign over `months`; passes fire as
    /// simulated time passes them via [`OnlineCampaign::step_until`].
    pub fn campaign(&self, months: u32) -> OnlineCampaign {
        self.campaign_shard(months, None)
    }

    /// [`OnlineScreener::campaign`] restricted to machines in `shard`:
    /// the pass cadence and test ids stay globally synchronized while
    /// each shard screens only its own machines.
    pub fn campaign_shard(&self, months: u32, shard: Option<(u32, u32)>) -> OnlineCampaign {
        OnlineCampaign {
            screener: self.clone(),
            total_hours: months as f64 * 730.0,
            pass: 0,
            next_hour: self.interval_hours,
            shard,
            stats: ScreeningStats::default(),
        }
    }
}

/// Resumable online-pass cursor (see [`OnlineScreener::campaign`]).
#[derive(Debug, Clone)]
pub struct OnlineCampaign {
    screener: OnlineScreener,
    total_hours: f64,
    pass: u64,
    next_hour: f64,
    shard: Option<(u32, u32)>,
    stats: ScreeningStats,
}

impl OnlineCampaign {
    /// Runs every pass scheduled before `until_hour` (exclusive, and
    /// never past the campaign window), skipping cores in `detected`;
    /// returns the new detections.
    pub fn step_until(
        &mut self,
        topo: &FleetTopology,
        pop: &Population,
        until_hour: f64,
        detected: &mut FastSet<CoreUid>,
        log: &mut SignalLog,
    ) -> Vec<DetectionRecord> {
        self.step_until_traced(
            topo,
            pop,
            until_hour,
            detected,
            log,
            &mut Recorder::disabled(),
        )
    }

    /// [`OnlineCampaign::step_until`] with telemetry: a `screen.online`
    /// span per pass plus per-detection `detect.online` instants.
    pub fn step_until_traced(
        &mut self,
        topo: &FleetTopology,
        pop: &Population,
        until_hour: f64,
        detected: &mut FastSet<CoreUid>,
        log: &mut SignalLog,
        rec: &mut Recorder,
    ) -> Vec<DetectionRecord> {
        let mut records = Vec::new();
        let hot;
        let plan = if per_task_trace(rec) {
            ScreenPlan::EveryMachine
        } else {
            // A superset across this call's passes, as for offline sweeps.
            hot = hot_machines(pop, detected);
            ScreenPlan::HotOnly(&hot)
        };
        while self.next_hour < self.total_hours && self.next_hour < until_hour {
            let tasks = self.screener.pass_tasks(
                topo,
                self.next_hour,
                self.pass,
                self.shard,
                &plan,
                &mut self.stats,
            );
            if !tasks.is_empty() {
                rec.begin(self.next_hour, "screen.online");
            }
            run_machine_tasks(
                topo,
                pop,
                &tasks,
                self.screener.parallelism,
                &mut ScreenSinks {
                    detected: &mut *detected,
                    log: &mut *log,
                    records: &mut records,
                    stats: &mut self.stats,
                },
                rec,
            );
            if !tasks.is_empty() {
                rec.end(self.next_hour, "screen.online");
            }
            self.pass += 1;
            self.next_hour += self.screener.interval_hours;
        }
        records
    }

    /// The hour of the next pass, if any remain in the window.
    pub fn next_hour(&self) -> Option<f64> {
        (self.next_hour < self.total_hours).then_some(self.next_hour)
    }

    /// Cumulative campaign accounting.
    pub fn stats(&self) -> ScreeningStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_fault::{library, Activation, CoreFaultProfile, Lesion};
    use mercurial_fleet::topology::FleetConfig;

    fn topo(machines: u32, seed: u64) -> FleetTopology {
        FleetTopology::build(FleetConfig::tiny(machines, seed))
    }

    fn hot_core(machine: u32) -> (CoreUid, CoreFaultProfile) {
        (
            CoreUid::new(machine, 0, 0),
            CoreFaultProfile::single(
                "hot-alu",
                FunctionalUnit::ScalarAlu,
                Lesion::FlipBit { bit: 0 },
                Activation::with_prob(1e-3),
            ),
        )
    }

    #[test]
    fn era_schedule_grows_coverage() {
        let sched = EraSchedule::default_history();
        let early = sched.era_at(0);
        let late = sched.era_at(30);
        assert!(late.units.len() > early.units.len());
        assert!(late.ops_per_unit > early.ops_per_unit);
        assert!(!early.units.contains(&FunctionalUnit::CryptoUnit));
        assert_eq!(late.units.len(), FunctionalUnit::ALL.len());
        // Boundary behavior: month 6 switches eras.
        assert_eq!(sched.era_at(5).units.len(), 4);
        assert_eq!(sched.era_at(6).units.len(), 5);
    }

    #[test]
    fn burn_in_catches_hot_manufacturing_defects() {
        let topo = topo(20, 31);
        let pop = Population::with_explicit(31, vec![hot_core(4)]);
        let mut detected = FastSet::default();
        let mut log = SignalLog::new();
        let burnin = BurnIn {
            schedule: EraSchedule::default_history(),
            ops_multiplier: 10,
            parallelism: 1,
        };
        let (records, stats) = burnin.run(&topo, &pop, &mut detected, &mut log);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].core, CoreUid::new(4, 0, 0));
        assert_eq!(records[0].method, DetectionMethod::BurnIn);
        assert!(stats.core_screens > 0);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn burn_in_misses_latent_defects() {
        // §6's core argument for lifecycle testing.
        let topo = topo(20, 32);
        let latent = (
            CoreUid::new(3, 0, 1),
            library::late_onset_muldiv(1000.0, 0.01),
        );
        let pop = Population::with_explicit(32, vec![latent]);
        let mut detected = FastSet::default();
        let mut log = SignalLog::new();
        let burnin = BurnIn {
            schedule: EraSchedule::default_history(),
            ops_multiplier: 100,
            parallelism: 1,
        };
        let (records, _) = burnin.run(&topo, &pop, &mut detected, &mut log);
        assert!(records.is_empty(), "latent defect must escape burn-in");
    }

    #[test]
    fn offline_catches_latent_defects_after_onset() {
        let topo = topo(20, 33);
        let onset = 2.0 * 730.0; // manifests in month 2
        let latent = (
            CoreUid::new(3, 0, 1),
            library::late_onset_muldiv(onset, 1e-3),
        );
        let pop = Population::with_explicit(33, vec![latent]);
        let mut detected = FastSet::default();
        let mut log = SignalLog::new();
        let screener = OfflineScreener {
            fraction_per_sweep: 1.0,
            ..OfflineScreener::default()
        };
        let (records, stats) = screener.run(&topo, &pop, 12, &mut detected, &mut log);
        assert_eq!(records.len(), 1);
        assert!(records[0].hour >= onset, "detected before onset?");
        assert!(stats.drained_machine_hours > 0.0);
    }

    #[test]
    fn sweeping_catches_low_frequency_defects_online_misses() {
        // A defect that only fires at the DVFS floor: offline sweeps visit
        // the floor; online screening at nominal never sees it.
        let topo = topo(10, 34);
        let bad = (CoreUid::new(2, 0, 0), library::low_freq_worse_alu(0.9));
        let pop = Population::with_explicit(34, vec![bad.clone()]);

        let mut det_online = FastSet::default();
        let mut log1 = SignalLog::new();
        let online = OnlineScreener::default();
        let (online_records, _) = online.run(&topo, &pop, 12, &mut det_online, &mut log1);

        let mut det_offline = FastSet::default();
        let mut log2 = SignalLog::new();
        let offline = OfflineScreener {
            fraction_per_sweep: 1.0,
            schedule: EraSchedule::frozen(ScreeningEra {
                from_month: 0,
                units: FunctionalUnit::ALL.to_vec(),
                ops_per_unit: 200_000,
                operands: TestSpec::default_operands(),
                sweep_points: true,
            }),
            ..OfflineScreener::default()
        };
        let (offline_records, _) = offline.run(&topo, &pop, 12, &mut det_offline, &mut log2);

        assert!(offline_records.iter().any(|r| r.core == bad.0));
        // The low-frequency defect has base_prob = 0.9/50 = 1.8% at
        // nominal, so online *can* catch it quickly too — make the defect
        // truly floor-only for the contrast:
        let floor_only = (
            CoreUid::new(3, 0, 0),
            CoreFaultProfile::single(
                "floor-only",
                FunctionalUnit::ScalarAlu,
                Lesion::FlipBit { bit: 9 },
                Activation {
                    base_prob: 1e-9,
                    freq: mercurial_fault::FreqResponse::LowFreq {
                        knee_mhz: 1300,
                        floor_mhz: 1200,
                        max_boost: 1e6,
                    },
                    ..Activation::always()
                },
            ),
        );
        let pop2 = Population::with_explicit(35, vec![floor_only.clone()]);
        let mut d1 = FastSet::default();
        let mut d2 = FastSet::default();
        let mut l = SignalLog::new();
        let (on2, _) = online.run(&topo, &pop2, 12, &mut d1, &mut l);
        let (off2, _) = offline.run(&topo, &pop2, 12, &mut d2, &mut l);
        assert!(
            on2.iter().all(|r| r.core != floor_only.0),
            "online cannot see the floor"
        );
        assert!(
            off2.iter().any(|r| r.core == floor_only.0),
            "offline sweep reaches the floor"
        );
        let _ = online_records;
    }

    #[test]
    fn era_gating_delays_unit_coverage() {
        // A crypto-unit defect cannot be caught before month 20 under the
        // default history (crypto tests did not exist yet) — the paper's
        // "zero-day CEEs".
        let topo = topo(10, 36);
        let bad = (CoreUid::new(1, 0, 0), library::self_inverting_aes());
        let pop = Population::with_explicit(36, vec![bad]);
        let mut detected = FastSet::default();
        let mut log = SignalLog::new();
        let screener = OfflineScreener {
            fraction_per_sweep: 1.0,
            ..OfflineScreener::default()
        };
        let (records, _) = screener.run(&topo, &pop, 36, &mut detected, &mut log);
        assert_eq!(records.len(), 1);
        let month = records[0].hour / 730.0;
        assert!(
            month >= 20.0,
            "caught at month {month} before crypto coverage existed"
        );
    }

    #[test]
    fn online_is_cheaper_but_slower_than_offline() {
        let topo = topo(30, 37);
        // A moderate defect: both will find it, offline sooner (bigger
        // budget per screen).
        let bad = (
            CoreUid::new(7, 0, 2),
            CoreFaultProfile::single(
                "moderate",
                FunctionalUnit::ScalarAlu,
                Lesion::FlipBit { bit: 3 },
                Activation::with_prob(2e-5),
            ),
        );
        let pop = Population::with_explicit(37, vec![bad.clone()]);
        let offline = OfflineScreener {
            fraction_per_sweep: 1.0,
            ..OfflineScreener::default()
        };
        let online = OnlineScreener::default();
        let mut d1 = FastSet::default();
        let mut d2 = FastSet::default();
        let mut l = SignalLog::new();
        let (off_rec, off_stats) = offline.run(&topo, &pop, 24, &mut d1, &mut l);
        let (on_rec, on_stats) = online.run(&topo, &pop, 24, &mut d2, &mut l);
        assert!(!off_rec.is_empty());
        assert!(!on_rec.is_empty());
        assert!(
            off_rec[0].hour <= on_rec[0].hour,
            "offline should detect no later"
        );
        assert_eq!(on_stats.drained_machine_hours, 0.0, "online never drains");
        assert!(off_stats.drained_machine_hours > 0.0);
    }

    #[test]
    fn screening_verdicts_identical_across_thread_counts() {
        // The determinism contract for the sharded screeners: records,
        // stats (including the f64 drain accumulator), signal logs, and
        // the detected set must be bit-for-bit identical at 1/2/8 workers.
        let topo = topo(24, 39);
        let defects = vec![
            hot_core(2),
            hot_core(9),
            hot_core(17),
            (
                CoreUid::new(5, 0, 1),
                library::late_onset_muldiv(1.5 * 730.0, 1e-3),
            ),
            (CoreUid::new(12, 0, 0), library::low_freq_worse_alu(0.9)),
            (CoreUid::new(20, 0, 2), library::self_inverting_aes()),
        ];
        let pop = Population::with_explicit(39, defects);

        let run_all = |parallelism: usize| {
            let mut detected = FastSet::default();
            let mut log = SignalLog::new();
            let burnin = BurnIn {
                schedule: EraSchedule::default_history(),
                ops_multiplier: 5,
                parallelism,
            };
            let offline = OfflineScreener {
                fraction_per_sweep: 0.5,
                parallelism,
                ..OfflineScreener::default()
            };
            let online = OnlineScreener {
                parallelism,
                ..OnlineScreener::default()
            };
            let (mut records, b_stats) = burnin.run(&topo, &pop, &mut detected, &mut log);
            let (off_rec, off_stats) = offline.run(&topo, &pop, 30, &mut detected, &mut log);
            let (on_rec, on_stats) = online.run(&topo, &pop, 30, &mut detected, &mut log);
            records.extend(off_rec);
            records.extend(on_rec);
            let mut det: Vec<CoreUid> = detected.into_iter().collect();
            det.sort_by_key(|c| c.as_u64());
            (records, [b_stats, off_stats, on_stats], det, log)
        };

        let (rec1, stats1, det1, log1) = run_all(1);
        assert!(!rec1.is_empty(), "test needs some detections to compare");
        for threads in [2, 8] {
            let (rec, stats, det, log) = run_all(threads);
            assert_eq!(rec, rec1, "records diverge at {threads} threads");
            assert_eq!(stats, stats1, "stats diverge at {threads} threads");
            assert_eq!(det, det1, "detected set diverges at {threads} threads");
            assert_eq!(log.all(), log1.all(), "logs diverge at {threads} threads");
        }
    }

    #[test]
    fn stepped_campaigns_match_batch_runs() {
        // Offline/online: stepping in arbitrary hour increments must
        // reproduce the batch run bit-for-bit (same sweeps, same order).
        let topo = topo(24, 39);
        let defects = vec![
            hot_core(2),
            hot_core(17),
            (
                CoreUid::new(5, 0, 1),
                library::late_onset_muldiv(1.5 * 730.0, 1e-3),
            ),
        ];
        let pop = Population::with_explicit(39, defects);
        let months = 18u32;
        let offline = OfflineScreener {
            fraction_per_sweep: 0.5,
            ..OfflineScreener::default()
        };
        let online = OnlineScreener::default();

        let mut batch_detected = FastSet::default();
        let mut batch_log = SignalLog::new();
        let (batch_off, batch_off_stats) =
            offline.run(&topo, &pop, months, &mut batch_detected, &mut batch_log);
        let (batch_on, batch_on_stats) =
            online.run(&topo, &pop, months, &mut batch_detected, &mut batch_log);

        for step_hours in [73.0, 311.0] {
            let mut detected = FastSet::default();
            let mut log = SignalLog::new();
            let mut off_campaign = offline.campaign(months);
            let mut on_campaign = online.campaign(months);
            let mut off_records = Vec::new();
            let mut on_records = Vec::new();
            // Phase-major like the batch: offline first, then online.
            let mut until = step_hours;
            while off_campaign.next_hour().is_some() {
                off_records.extend(off_campaign.step_until(
                    &topo,
                    &pop,
                    until,
                    &mut detected,
                    &mut log,
                ));
                until += step_hours;
            }
            let mut until = step_hours;
            while on_campaign.next_hour().is_some() {
                on_records.extend(on_campaign.step_until(
                    &topo,
                    &pop,
                    until,
                    &mut detected,
                    &mut log,
                ));
                until += step_hours;
            }
            assert_eq!(
                off_records, batch_off,
                "offline diverges at {step_hours}h steps"
            );
            assert_eq!(
                on_records, batch_on,
                "online diverges at {step_hours}h steps"
            );
            assert_eq!(off_campaign.stats(), batch_off_stats);
            assert_eq!(on_campaign.stats(), batch_on_stats);
            assert_eq!(log.all(), batch_log.all());
        }
    }

    #[test]
    fn burnin_campaign_screens_in_deploy_order() {
        let topo = topo(20, 31);
        let pop = Population::with_explicit(31, vec![hot_core(4), hot_core(11)]);
        let burnin = BurnIn {
            schedule: EraSchedule::default_history(),
            ops_multiplier: 10,
            parallelism: 1,
        };
        let mut batch_detected = FastSet::default();
        let mut batch_log = SignalLog::new();
        let (batch_records, batch_stats) =
            burnin.run(&topo, &pop, &mut batch_detected, &mut batch_log);

        let mut campaign = burnin.campaign(&topo);
        let mut detected = FastSet::default();
        let mut log = SignalLog::new();
        let mut records = Vec::new();
        let mut until = 100.0;
        let mut last_hour = f64::NEG_INFINITY;
        while campaign.next_hour().is_some() {
            for r in campaign.step_until(&topo, &pop, until, &mut detected, &mut log) {
                assert!(r.hour >= last_hour, "deploy-hour order violated");
                last_hour = r.hour;
                records.push(r);
            }
            until += 100.0;
        }
        // Same detections and cost as the batch, ordered by deploy hour.
        assert_eq!(campaign.stats(), batch_stats);
        assert_eq!(detected, batch_detected);
        let mut batch_sorted = batch_records;
        batch_sorted.sort_by(|a, b| {
            a.hour
                .partial_cmp(&b.hour)
                .expect("finite hours")
                .then(a.core.as_u64().cmp(&b.core.as_u64()))
        });
        records.sort_by(|a, b| {
            a.hour
                .partial_cmp(&b.hour)
                .expect("finite hours")
                .then(a.core.as_u64().cmp(&b.core.as_u64()))
        });
        assert_eq!(records, batch_sorted);
    }

    #[test]
    fn untraced_fast_plans_match_the_traced_task_walk() {
        // The untraced campaigns skip all-healthy machines via closed-form
        // accounting; a recording recorder forces the per-machine walk.
        // Records, stats (including the f64 drain accumulator), detected
        // sets, and logs must be bit-for-bit identical either way.
        use mercurial_trace::TraceFlags;
        let mut cfg = FleetConfig::tiny(24, 39);
        cfg.rollout_months = 6;
        let topo = FleetTopology::build(cfg);
        let defects = vec![
            hot_core(2),
            hot_core(17),
            (
                CoreUid::new(5, 0, 1),
                library::late_onset_muldiv(1.5 * 730.0, 1e-3),
            ),
            (CoreUid::new(12, 0, 0), library::low_freq_worse_alu(0.9)),
        ];
        let pop = Population::with_explicit(39, defects);
        let months = 18u32;
        let run_all = |traced: bool| {
            let mut rec = if traced {
                Recorder::with_flags(TraceFlags::enabled())
            } else {
                Recorder::disabled()
            };
            let mut detected = FastSet::default();
            let mut log = SignalLog::new();
            let burnin = BurnIn {
                schedule: EraSchedule::default_history(),
                ops_multiplier: 5,
                parallelism: 1,
            };
            let offline = OfflineScreener {
                fraction_per_sweep: 0.5,
                ..OfflineScreener::default()
            };
            let online = OnlineScreener::default();
            let mut bc = burnin.campaign(&topo);
            let mut off = offline.campaign(months);
            let mut on = online.campaign(months);
            let mut records = Vec::new();
            let mut until = 73.0;
            while until <= months as f64 * 730.0 + 73.0 {
                records.extend(bc.step_until_traced(
                    &topo,
                    &pop,
                    until,
                    &mut detected,
                    &mut log,
                    &mut rec,
                ));
                records.extend(off.step_until_traced(
                    &topo,
                    &pop,
                    until,
                    &mut detected,
                    &mut log,
                    &mut rec,
                ));
                records.extend(on.step_until_traced(
                    &topo,
                    &pop,
                    until,
                    &mut detected,
                    &mut log,
                    &mut rec,
                ));
                until += 73.0;
            }
            let mut det: Vec<CoreUid> = detected.into_iter().collect();
            det.sort_unstable();
            (records, [bc.stats(), off.stats(), on.stats()], det, log)
        };
        let (r_fast, s_fast, d_fast, l_fast) = run_all(false);
        let (r_traced, s_traced, d_traced, l_traced) = run_all(true);
        assert!(!r_fast.is_empty(), "test needs detections to compare");
        assert_eq!(r_fast, r_traced, "records diverge between plans");
        assert_eq!(s_fast, s_traced, "stats diverge between plans");
        assert_eq!(d_fast, d_traced, "detected sets diverge between plans");
        assert_eq!(l_fast.all(), l_traced.all(), "logs diverge between plans");
    }

    #[test]
    fn sharded_campaigns_union_to_the_full_fleet() {
        // The serve contract: a partition of machine-range shard campaigns
        // must produce exactly the full campaign's detections (as a set —
        // within a sweep, shard-internal order is machine order anyway),
        // the same detected set, the same logs as a multiset, and stats
        // that sum exactly (drain is a constant per machine, so the f64
        // accumulator is exact in any grouping).
        let topo = topo(24, 39);
        let defects = vec![
            hot_core(2),
            hot_core(9),
            hot_core(17),
            (
                CoreUid::new(5, 0, 1),
                library::late_onset_muldiv(1.5 * 730.0, 1e-3),
            ),
            (CoreUid::new(12, 0, 0), library::low_freq_worse_alu(0.9)),
        ];
        let pop = Population::with_explicit(39, defects);
        let months = 18u32;
        let burnin = BurnIn {
            schedule: EraSchedule::default_history(),
            ops_multiplier: 5,
            parallelism: 1,
        };
        let offline = OfflineScreener {
            fraction_per_sweep: 0.5,
            ..OfflineScreener::default()
        };
        let online = OnlineScreener::default();

        let run_shard = |shard: Option<(u32, u32)>| {
            let mut detected = FastSet::default();
            let mut log = SignalLog::new();
            let mut bc = burnin.campaign_shard(&topo, shard);
            let mut off = offline.campaign_shard(months, shard);
            let mut on = online.campaign_shard(months, shard);
            let mut records = Vec::new();
            let mut until = 73.0;
            while until <= months as f64 * 730.0 + 73.0 {
                records.extend(bc.step_until(&topo, &pop, until, &mut detected, &mut log));
                records.extend(off.step_until(&topo, &pop, until, &mut detected, &mut log));
                records.extend(on.step_until(&topo, &pop, until, &mut detected, &mut log));
                until += 73.0;
            }
            let mut det: Vec<CoreUid> = detected.into_iter().collect();
            det.sort_unstable();
            (records, [bc.stats(), off.stats(), on.stats()], det, log)
        };
        let canon_records = |records: &[DetectionRecord]| {
            let mut v = records.to_vec();
            v.sort_by(|a, b| a.hour.total_cmp(&b.hour).then(a.core.cmp(&b.core)));
            v
        };
        let canon_log = |log: &SignalLog| {
            let mut v = log.all().to_vec();
            v.sort_by(|a, b| a.hour.total_cmp(&b.hour).then(a.core.cmp(&b.core)));
            v
        };

        let (full_rec, full_stats, full_det, full_log) = run_shard(None);
        assert!(full_rec.len() >= 3, "test needs detections to compare");
        let machines = topo.machines().len() as u32;
        for workers in [1u32, 2, 4] {
            let mut records = Vec::new();
            let mut stats = [ScreeningStats::default(); 3];
            let mut det = Vec::new();
            let mut log = SignalLog::new();
            for w in 0..workers {
                let lo = machines * w / workers;
                let hi = machines * (w + 1) / workers;
                let (r, s, d, l) = run_shard(Some((lo, hi)));
                records.extend(r);
                for (sum, part) in stats.iter_mut().zip(s) {
                    sum.core_screens += part.core_screens;
                    sum.test_ops += part.test_ops;
                    sum.drained_machine_hours += part.drained_machine_hours;
                    sum.detections += part.detections;
                }
                det.extend(d);
                log.append(l);
            }
            det.sort_unstable();
            assert_eq!(
                canon_records(&records),
                canon_records(&full_rec),
                "{workers} shards"
            );
            assert_eq!(stats, full_stats, "{workers} shards");
            assert_eq!(det, full_det, "{workers} shards");
            assert_eq!(canon_log(&log), canon_log(&full_log), "{workers} shards");
        }
    }

    #[test]
    fn detected_cores_are_not_rescreened() {
        let topo = topo(5, 38);
        let bad = hot_core(1);
        let pop = Population::with_explicit(38, vec![bad]);
        let mut detected = FastSet::default();
        let mut log = SignalLog::new();
        let screener = OfflineScreener {
            fraction_per_sweep: 1.0,
            ..OfflineScreener::default()
        };
        let (records, _) = screener.run(&topo, &pop, 12, &mut detected, &mut log);
        assert_eq!(
            records.len(),
            1,
            "exactly one detection despite many sweeps"
        );
    }
}
