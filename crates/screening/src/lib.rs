//! # mercurial-screening
//!
//! Detection of mercurial cores — §6 of *Cores that don't count*: "the
//! first line of defense is necessarily a robust infrastructure for
//! detecting mercurial cores as quickly as possible; in effect, testing
//! becomes part of the full lifecycle of a CPU".
//!
//! The paper categorizes detection on four axes, and each axis is
//! represented here:
//!
//! * **Automated vs. human** — [`screeners`] run automatically;
//!   [`triage`] models the human pipeline where "roughly half of these
//!   human-identified suspects are actually proven … to be mercurial
//!   cores".
//! * **Pre- vs. post-deployment** — [`screeners::BurnIn`] runs before a
//!   machine enters service; the offline/online screeners run forever
//!   after (defects age in, and new tests arrive "a few times per year" —
//!   [`screeners::EraSchedule`]).
//! * **Offline vs. online** — [`screeners::OfflineScreener`] drains cores
//!   and sweeps operating points; [`screeners::OnlineScreener`] uses spare
//!   cycles at the nominal point with no drain cost but thinner coverage.
//! * **Infrastructure- vs. application-level** — the fleet's signal stream
//!   carries application checksum mismatches; [`reportsvc`] is the paper's
//!   "simple RPC service that allows an application to report a suspect
//!   core", with the concentration rule ("reports that are evenly spread
//!   across cores probably are not CEEs") implemented in
//!   [`concentration`].
//!
//! [`scoreboard`] tracks per-core recidivism ("recidivism — repeated
//! signals from the same core — increases our confidence"), and
//! [`chipscreen`] runs the actual `mercurial-corpus` assembly kernels on a
//! simulated chip for instruction-accurate case studies.
#![warn(missing_docs)]

pub mod chipscreen;
pub mod concentration;
pub mod forensics;
pub mod reportsvc;
pub mod scoreboard;
pub mod screeners;
pub mod triage;

pub use concentration::{concentration_suspects, ConcentrationConfig};
pub use forensics::{Divergence, DivergenceFinder};
pub use reportsvc::{ReportService, SuspectVerdict};
pub use scoreboard::{CoreScore, Scoreboard};
pub use screeners::{
    BurnIn, BurnInCampaign, DetectionMethod, DetectionRecord, EraSchedule, OfflineCampaign,
    OfflineScreener, OnlineCampaign, OnlineScreener, ScreeningEra, ScreeningStats,
};
pub use triage::{HumanTriage, TriageOutcome, TriageStats};
