//! Human triage: turning suspects into confessions.
//!
//! §6: "The humans running our production services identify a lot of
//! suspect cores, in the course of incident triage, debugging, and so
//! forth. In our recent experience, roughly half of these human-identified
//! suspects are actually proven, on deeper investigation, to be mercurial
//! cores — we must extract 'confessions' via further testing (often after
//! first developing a new automatable test). The other half is a mix of
//! false accusations and limited reproducibility."
//!
//! [`HumanTriage`] models that pipeline: a suspect goes through a deep,
//! sweep-everything investigation with a large op budget; a real defect
//! confesses with high (but not certain — "limited reproducibility")
//! probability, and an innocent core is exonerated.

use crate::screeners::{DetectionMethod, DetectionRecord};
use mercurial_fault::{CoreUid, FunctionalUnit, OperatingPoint};
use mercurial_fleet::population::TestSpec;
use mercurial_fleet::{FleetTopology, Population};
use serde::{Deserialize, Serialize};

/// Outcome of investigating one suspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TriageOutcome {
    /// Deep testing reproduced the defect: a confession.
    Confirmed,
    /// Testing could not reproduce anything (either a false accusation or
    /// a defect below the investigation's sensitivity floor).
    NotReproduced,
}

/// Aggregate triage statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TriageStats {
    /// Suspects investigated.
    pub investigated: u64,
    /// Confessions extracted.
    pub confirmed: u64,
    /// Investigations that found nothing.
    pub not_reproduced: u64,
    /// Of the confirmed, how many were genuinely mercurial (ground truth).
    pub confirmed_true: u64,
    /// Of the not-reproduced, how many were genuinely mercurial (missed!).
    pub missed_true: u64,
}

impl TriageStats {
    /// The fraction of investigated suspects that confessed — the paper's
    /// "roughly half".
    pub fn confirmation_rate(&self) -> f64 {
        if self.investigated == 0 {
            0.0
        } else {
            self.confirmed as f64 / self.investigated as f64
        }
    }
}

/// The human investigation pipeline.
#[derive(Debug, Clone)]
pub struct HumanTriage {
    /// Test operations per unit in a deep investigation (humans write new
    /// tests until something gives — this is a big budget).
    pub deep_ops_per_unit: u64,
    /// Independent investigation sessions before giving up.
    pub sessions: u32,
}

impl Default for HumanTriage {
    fn default() -> HumanTriage {
        HumanTriage {
            deep_ops_per_unit: 5_000_000,
            sessions: 3,
        }
    }
}

impl HumanTriage {
    /// Investigates one suspect at fleet time `hour`.
    ///
    /// The investigation sweeps every unit at several operating points
    /// with the full operand bank, `sessions` times over. A healthy core
    /// can never confess (screens are exact); a defective one confesses
    /// unless its rate is below the sensitivity floor — the paper's
    /// "limited reproducibility".
    pub fn investigate(
        &self,
        topo: &FleetTopology,
        pop: &Population,
        core: CoreUid,
        hour: f64,
        case_id: u64,
    ) -> TriageOutcome {
        let age = topo.age_hours(core.machine, hour);
        let curve = &topo.product_of(core.machine).dvfs;
        let points = [
            curve.max_point(65),
            curve.min_point(65),
            curve.max_point(92),
        ];
        for session in 0..self.sessions {
            for (pi, &point) in points.iter().enumerate() {
                let spec = TestSpec {
                    unit_ops: [self.deep_ops_per_unit; 9],
                    operands: TestSpec::default_operands(),
                    point,
                };
                let test_id = case_id
                    .wrapping_mul(31)
                    .wrapping_add(session as u64 * 7 + pi as u64)
                    ^ 0x7472_6961;
                if pop.screen_core(core, &spec, age, test_id) {
                    return TriageOutcome::Confirmed;
                }
            }
        }
        TriageOutcome::NotReproduced
    }

    /// Investigates a batch of suspects, scoring against ground truth.
    ///
    /// Returns detection records for the confirmed cores plus statistics.
    pub fn investigate_all(
        &self,
        topo: &FleetTopology,
        pop: &Population,
        suspects: &[(CoreUid, f64)],
    ) -> (Vec<DetectionRecord>, TriageStats) {
        let mut stats = TriageStats::default();
        let mut records = Vec::new();
        for (i, &(core, hour)) in suspects.iter().enumerate() {
            stats.investigated += 1;
            match self.investigate(topo, pop, core, hour, i as u64) {
                TriageOutcome::Confirmed => {
                    stats.confirmed += 1;
                    if pop.is_mercurial(core) {
                        stats.confirmed_true += 1;
                    }
                    records.push(DetectionRecord {
                        core,
                        hour,
                        method: DetectionMethod::Triage,
                    });
                }
                TriageOutcome::NotReproduced => {
                    stats.not_reproduced += 1;
                    if pop.is_mercurial(core) {
                        stats.missed_true += 1;
                    }
                }
            }
        }
        (records, stats)
    }

    /// The smallest per-op rate an investigation can reproduce with ~95%
    /// probability (its sensitivity floor).
    pub fn sensitivity_floor(&self) -> f64 {
        let total_ops = self.deep_ops_per_unit as f64 * 9.0 * 3.0 * self.sessions as f64;
        -((1.0 - 0.95f64).ln()) / total_ops
    }

    /// A deep spec at one point (exposed for experiments).
    pub fn deep_spec(&self, point: OperatingPoint) -> TestSpec {
        TestSpec {
            unit_ops: [self.deep_ops_per_unit; 9],
            operands: TestSpec::default_operands(),
            point,
        }
    }
}

/// Confirms unit coverage constants stay in sync with the fault model.
const _: () = assert!(FunctionalUnit::ALL.len() == 9);

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_fault::{library, Activation, CoreFaultProfile, Lesion};
    use mercurial_fleet::topology::FleetConfig;

    fn topo(seed: u64) -> FleetTopology {
        FleetTopology::build(FleetConfig::tiny(50, seed))
    }

    #[test]
    fn innocent_cores_never_confess() {
        let topo = topo(41);
        let pop = Population::with_explicit(41, vec![]);
        let triage = HumanTriage::default();
        for i in 0..20 {
            let outcome = triage.investigate(&topo, &pop, CoreUid::new(i, 0, 0), 100.0, i as u64);
            assert_eq!(outcome, TriageOutcome::NotReproduced);
        }
    }

    #[test]
    fn hot_defects_confess() {
        let topo = topo(42);
        let bad = CoreUid::new(5, 0, 1);
        let pop = Population::with_explicit(42, vec![(bad, library::string_bitflip(7, 1e-4))]);
        let triage = HumanTriage::default();
        assert_eq!(
            triage.investigate(&topo, &pop, bad, 100.0, 0),
            TriageOutcome::Confirmed
        );
    }

    #[test]
    fn ultra_rare_defects_have_limited_reproducibility() {
        let topo = topo(43);
        let bad = CoreUid::new(5, 0, 1);
        let profile = CoreFaultProfile::single(
            "ghost",
            FunctionalUnit::ScalarAlu,
            Lesion::FlipBit { bit: 2 },
            Activation::with_prob(1e-12),
        );
        let pop = Population::with_explicit(43, vec![(bad, profile)]);
        let triage = HumanTriage::default();
        let confessions = (0..20)
            .filter(|&c| triage.investigate(&topo, &pop, bad, 100.0, c) == TriageOutcome::Confirmed)
            .count();
        assert!(confessions < 5, "a 1e-12 defect should rarely reproduce");
    }

    #[test]
    fn mixed_suspect_batch_yields_partial_confirmation() {
        // Half real suspects, half false accusations → confirmation rate
        // lands near the real fraction (the paper's "roughly half").
        let topo = topo(44);
        let mut cores = Vec::new();
        let mut suspects = Vec::new();
        for i in 0..10 {
            let uid = CoreUid::new(i, 0, 0);
            cores.push((uid, library::string_bitflip((i % 8) as u8, 1e-4)));
            suspects.push((uid, 100.0));
        }
        for i in 10..20 {
            suspects.push((CoreUid::new(i, 0, 0), 100.0)); // innocent
        }
        let pop = Population::with_explicit(44, cores);
        let triage = HumanTriage::default();
        let (records, stats) = triage.investigate_all(&topo, &pop, &suspects);
        assert_eq!(stats.investigated, 20);
        assert!(
            (0.4..=0.6).contains(&stats.confirmation_rate()),
            "confirmation rate {}",
            stats.confirmation_rate()
        );
        assert_eq!(
            stats.confirmed_true, stats.confirmed,
            "no false confessions"
        );
        assert_eq!(records.len(), stats.confirmed as usize);
    }

    #[test]
    fn sensitivity_floor_is_tiny() {
        let triage = HumanTriage::default();
        assert!(triage.sensitivity_floor() < 1e-8);
    }
}
