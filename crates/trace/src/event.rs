//! Trace event model.
//!
//! Events are tiny `Copy` records stamped with the *simulation* hour.
//! Names are `&'static str` so the hot path never allocates; the core is
//! carried as the packed `CoreUid` u64 (this crate sits below
//! `mercurial-fault` and cannot name the type).

/// What an event marks on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span open (Chrome `ph:"B"`). Paired with a later [`EventKind::End`]
    /// of the same name; pairs nest in emission order.
    Begin,
    /// Span close (Chrome `ph:"E"`).
    End,
    /// Point event (Chrome `ph:"i"`), e.g. a detection or a state change.
    Instant,
    /// Sampled gauge value (Chrome `ph:"C"` counter sample).
    Gauge,
}

impl EventKind {
    /// One-letter code used by the JSONL export (`B`/`E`/`I`/`G`).
    pub fn code(self) -> char {
        match self {
            EventKind::Begin => 'B',
            EventKind::End => 'E',
            EventKind::Instant => 'I',
            EventKind::Gauge => 'G',
        }
    }
}

/// One structured telemetry event on the simulated clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Simulation hour the event was recorded at (never wall-clock).
    pub hour: f64,
    /// Event kind (span open/close, instant, gauge sample).
    pub kind: EventKind,
    /// Static event name, dot-namespaced (`sim.epoch`, `core.quarantine`).
    pub name: &'static str,
    /// Packed `CoreUid` (`(machine<<32)|(socket<<16)|core`) when the event
    /// concerns a specific core.
    pub core: Option<u64>,
    /// Payload value: gauge reading, counter delta, or 0.0 when unused.
    pub value: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_are_distinct() {
        let codes = [
            EventKind::Begin.code(),
            EventKind::End.code(),
            EventKind::Instant.code(),
            EventKind::Gauge.code(),
        ];
        for (i, a) in codes.iter().enumerate() {
            for b in codes.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn event_is_small_and_copy() {
        // The recorder buffers millions of these at paper scale; keep the
        // footprint bounded (two words of payload + name + discriminants).
        assert!(std::mem::size_of::<TraceEvent>() <= 56);
        let e = TraceEvent {
            hour: 1.0,
            kind: EventKind::Instant,
            name: "x",
            core: None,
            value: 0.0,
        };
        let f = e; // Copy
        assert_eq!(e, f);
    }
}
