//! The [`Recorder`]: the single handle instrumented code writes through.
//!
//! Enabled recorders buffer events and metrics; disabled recorders are a
//! `None` and every method is one branch with no allocation. Parallel
//! producers record into [`Recorder::shard`] clones which the driver
//! merges back in shard order with [`Recorder::absorb`] — the same
//! determinism contract as `fleet::par::map_parallel`.

use crate::event::{EventKind, TraceEvent};
use crate::metric::MetricSet;

/// Which recording features a scenario turned on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceFlags {
    /// Master switch. When false the recorder is inert.
    pub enabled: bool,
    /// Also emit a span per screened machine. Off by default: at paper
    /// scale the online screener visits millions of machines and the
    /// per-machine spans dominate the event buffer.
    pub machine_spans: bool,
}

impl TraceFlags {
    /// Flags with everything off.
    pub fn disabled() -> Self {
        TraceFlags::default()
    }

    /// Flags with the master switch on (machine spans still off).
    pub fn enabled() -> Self {
        TraceFlags {
            enabled: true,
            machine_spans: false,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Inner {
    flags: TraceFlags,
    events: Vec<TraceEvent>,
    metrics: MetricSet,
}

/// Buffering telemetry sink threaded through the simulator's hot layers.
///
/// All methods take the simulation hour explicitly — the recorder never
/// reads a wall clock, which is what keeps traces reproducible.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Box<Inner>>,
}

impl Recorder {
    /// A recorder that drops everything at the cost of one branch per call.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Build a recorder from scenario flags; `enabled: false` yields the
    /// same inert recorder as [`Recorder::disabled`].
    pub fn with_flags(flags: TraceFlags) -> Self {
        if flags.enabled {
            Recorder {
                inner: Some(Box::new(Inner {
                    flags,
                    ..Inner::default()
                })),
            }
        } else {
            Recorder::disabled()
        }
    }

    /// Whether this recorder keeps anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The flags this recorder was built with (all-off when disabled).
    pub fn flags(&self) -> TraceFlags {
        self.inner
            .as_ref()
            .map(|i| i.flags)
            .unwrap_or_else(TraceFlags::disabled)
    }

    /// An empty recorder with the same flags, for a parallel worker to
    /// fill. Shards of a disabled recorder are disabled, so parallel code
    /// paths pay nothing when tracing is off.
    pub fn shard(&self) -> Recorder {
        Recorder::with_flags(self.flags())
    }

    /// Merge a worker shard back. Events append in call order — the caller
    /// must absorb shards in deterministic (input-index) order, exactly as
    /// `map_parallel` returns them. Counters sum; gauges take the shard's
    /// value; histograms merge exactly.
    pub fn absorb(&mut self, shard: Recorder) {
        let (Some(inner), Some(other)) = (self.inner.as_deref_mut(), shard.inner) else {
            return;
        };
        inner.events.extend_from_slice(&other.events);
        inner.metrics.merge(&other.metrics);
    }

    /// Open a span at `hour`. Must be matched by [`Recorder::end`] with the
    /// same name; spans nest in emission order.
    pub fn begin(&mut self, hour: f64, name: &'static str) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.events.push(TraceEvent {
            hour,
            kind: EventKind::Begin,
            name,
            core: None,
            value: 0.0,
        });
    }

    /// Close the innermost open span of `name` at `hour`.
    pub fn end(&mut self, hour: f64, name: &'static str) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.events.push(TraceEvent {
            hour,
            kind: EventKind::End,
            name,
            core: None,
            value: 0.0,
        });
    }

    /// Record a point event, optionally tied to a packed `CoreUid`.
    pub fn instant(&mut self, hour: f64, name: &'static str, core: Option<u64>, value: f64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.events.push(TraceEvent {
            hour,
            kind: EventKind::Instant,
            name,
            core,
            value,
        });
    }

    /// Sample a gauge: records both a timeline event and the latest value
    /// in the metric set.
    pub fn gauge(&mut self, hour: f64, name: &'static str, value: f64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.events.push(TraceEvent {
            hour,
            kind: EventKind::Gauge,
            name,
            core: None,
            value,
        });
        inner.metrics.gauge_set(name, value);
    }

    /// Bump a counter (metric only, no timeline event — counters are read
    /// out once at export time).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.metrics.counter_add(name, delta);
    }

    /// Record a histogram sample (metric only).
    pub fn observe(&mut self, name: &'static str, sample: f64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        inner.metrics.observe(name, sample);
    }

    /// Number of buffered events (0 when disabled).
    pub fn event_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.events.len())
    }

    /// The metric set accumulated so far (`None` when disabled).
    pub fn metrics(&self) -> Option<&MetricSet> {
        self.inner.as_deref().map(|i| &i.metrics)
    }

    /// Drain the buffered events, leaving metrics and flags in place — the
    /// hook a streaming [`crate::stream::TraceSink`] uses to flush merged
    /// events to disk incrementally instead of holding the whole run in
    /// memory. Returns an empty vec when disabled.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        self.inner
            .as_deref_mut()
            .map_or_else(Vec::new, |i| std::mem::take(&mut i.events))
    }

    /// Consume the recorder and return the finished trace. A disabled
    /// recorder yields an empty trace.
    pub fn finish(self) -> Trace {
        match self.inner {
            Some(inner) => Trace {
                events: inner.events,
                metrics: inner.metrics,
            },
            None => Trace::default(),
        }
    }
}

/// A completed trace: the merged event stream plus the final metric set.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Events in deterministic merge order.
    pub events: Vec<TraceEvent>,
    /// Final counters/gauges/histograms.
    pub metrics: MetricSet,
}

impl Trace {
    /// True when nothing was recorded (e.g. tracing was disabled).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.metrics.is_empty()
    }

    /// JSONL export — one event per line, then one `metric` line per
    /// counter/gauge/histogram. See [`crate::export::to_jsonl`].
    pub fn to_jsonl(&self) -> String {
        crate::export::to_jsonl(self)
    }

    /// Prometheus text exposition. See [`crate::export::to_prometheus`].
    pub fn to_prometheus(&self) -> String {
        crate::export::to_prometheus(self)
    }

    /// Chrome trace-event JSON (Perfetto-loadable). See
    /// [`crate::export::to_chrome_trace`].
    pub fn to_chrome_trace(&self) -> String {
        crate::export::to_chrome_trace(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::disabled();
        r.begin(0.0, "sim");
        r.instant(1.0, "x", Some(7), 1.0);
        r.gauge(2.0, "g", 0.5);
        r.counter_add("c", 10);
        r.observe("h", 3.0);
        r.end(3.0, "sim");
        assert!(!r.enabled());
        assert_eq!(r.event_count(), 0);
        let t = r.finish();
        assert!(t.is_empty());
    }

    #[test]
    fn with_flags_disabled_is_inert() {
        let r = Recorder::with_flags(TraceFlags::disabled());
        assert!(!r.enabled());
        assert!(!r.shard().enabled());
    }

    #[test]
    fn enabled_recorder_buffers_in_order() {
        let mut r = Recorder::with_flags(TraceFlags::enabled());
        r.begin(0.0, "a");
        r.instant(1.0, "b", Some(42), 2.0);
        r.end(3.0, "a");
        let t = r.finish();
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.events[0].kind, EventKind::Begin);
        assert_eq!(t.events[1].core, Some(42));
        assert_eq!(t.events[2].kind, EventKind::End);
    }

    #[test]
    fn shard_absorb_is_deterministic_in_absorb_order() {
        let parent = Recorder::with_flags(TraceFlags::enabled());
        let build = |tag: &'static str, hour: f64| {
            let mut s = parent.shard();
            s.instant(hour, tag, None, 0.0);
            s.counter_add("n", 1);
            s
        };
        let s1 = build("one", 1.0);
        let s2 = build("two", 2.0);

        let mut a = parent.clone();
        a.absorb(s1.clone());
        a.absorb(s2.clone());
        let ta = a.finish();
        assert_eq!(ta.events[0].name, "one");
        assert_eq!(ta.events[1].name, "two");
        assert_eq!(ta.metrics.counter("n"), 2);

        // Absorbing in a different order changes the event stream —
        // which is exactly why callers must absorb in input-index order.
        let mut b = parent.clone();
        b.absorb(s2);
        b.absorb(s1);
        let tb = b.finish();
        assert_eq!(tb.events[0].name, "two");
        assert_eq!(tb.metrics.counter("n"), 2);
    }

    #[test]
    fn take_events_drains_but_keeps_metrics() {
        let mut r = Recorder::with_flags(TraceFlags::enabled());
        r.begin(0.0, "a");
        r.counter_add("n", 3);
        r.end(1.0, "a");
        let drained = r.take_events();
        assert_eq!(drained.len(), 2);
        assert_eq!(r.event_count(), 0);
        assert_eq!(r.metrics().unwrap().counter("n"), 3);
        // Subsequent events buffer afresh.
        r.instant(2.0, "x", None, 0.0);
        assert_eq!(r.take_events().len(), 1);
        assert!(Recorder::disabled().take_events().is_empty());
        assert!(Recorder::disabled().metrics().is_none());
    }

    #[test]
    fn absorb_into_disabled_is_noop() {
        let mut parent = Recorder::disabled();
        let mut s = Recorder::with_flags(TraceFlags::enabled());
        s.instant(0.0, "x", None, 0.0);
        parent.absorb(s);
        assert!(parent.finish().is_empty());
    }
}
