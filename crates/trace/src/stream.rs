//! Incremental trace sinks: stream merged events to disk as the run
//! progresses instead of buffering the whole trace in memory.
//!
//! The ROADMAP's "runs too large to buffer" item: a paper-scale closed
//! loop holds ~10k events comfortably, but longer windows or
//! machine-span-enabled runs do not. A [`TraceSink`] is handed to the
//! driver, which drains the recorder's event buffer through it at every
//! epoch boundary — memory stays bounded by one epoch's events, and
//! because [`JsonlStreamSink`] formats through the exact same line
//! writers as [`crate::export::to_jsonl`], the streamed file is
//! byte-identical to the buffered export. Each drain ends on a complete
//! line, so a run aborted mid-window leaves a well-formed JSONL prefix.

use std::io::{self, Write};

use crate::export::{write_jsonl_event, write_jsonl_metrics};
use crate::recorder::Recorder;

/// An incremental consumer of a [`Recorder`]'s event stream.
///
/// The driver calls [`TraceSink::drain`] after each deterministic merge
/// point (an epoch boundary, after shards are absorbed in input-index
/// order) and [`TraceSink::finish`] once at the end of the run. Draining
/// empties the recorder's event buffer ([`Recorder::take_events`]); the
/// metric set stays in the recorder so counters and histograms keep
/// accumulating until `finish`.
pub trait TraceSink {
    /// Flush the recorder's buffered events. Must leave the output on a
    /// complete record boundary so an aborted run's file is well-formed.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O error.
    fn drain(&mut self, rec: &mut Recorder) -> io::Result<()>;

    /// Flush any remaining events plus the end-of-run metric readout.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O error.
    fn finish(&mut self, rec: &mut Recorder) -> io::Result<()>;
}

/// Streams JSONL — the same format as [`crate::export::to_jsonl`] — into
/// any [`Write`] target, one flush per drain.
///
/// Event lines stream out in merge order as the run progresses; the
/// `metric` tail lines are written by [`TraceSink::finish`]. The
/// concatenation of all writes is byte-identical to the buffered export
/// of the same run (both go through `write_jsonl_event` /
/// `write_jsonl_metrics`).
pub struct JsonlStreamSink<W: Write> {
    out: W,
    buf: String,
}

impl<W: Write> JsonlStreamSink<W> {
    /// Wrap a writer (typically a `BufWriter<File>` or a `Vec<u8>`).
    pub fn new(out: W) -> JsonlStreamSink<W> {
        JsonlStreamSink {
            out,
            buf: String::new(),
        }
    }

    /// Unwrap the underlying writer (e.g. to inspect streamed bytes).
    pub fn into_inner(self) -> W {
        self.out
    }

    /// Borrow the underlying writer mutably — a socket-backed sink needs
    /// this to take the bytes accumulated since the last drain without
    /// consuming the sink.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.out
    }
}

impl<W: Write> TraceSink for JsonlStreamSink<W> {
    fn drain(&mut self, rec: &mut Recorder) -> io::Result<()> {
        let events = rec.take_events();
        if events.is_empty() {
            return Ok(());
        }
        self.buf.clear();
        for e in &events {
            write_jsonl_event(&mut self.buf, e);
        }
        self.out.write_all(self.buf.as_bytes())?;
        // One flush per drain: after every epoch the on-disk file ends on
        // a complete line, which is the abort-safety contract.
        self.out.flush()
    }

    fn finish(&mut self, rec: &mut Recorder) -> io::Result<()> {
        self.drain(rec)?;
        if let Some(metrics) = rec.metrics() {
            self.buf.clear();
            write_jsonl_metrics(&mut self.buf, metrics);
            self.out.write_all(self.buf.as_bytes())?;
        }
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceFlags;

    fn record_epoch(rec: &mut Recorder, h0: f64) {
        rec.begin(h0, "loop.epoch");
        rec.instant(h0 + 1.0, "detect.online", Some(7), 0.0);
        rec.gauge(h0 + 73.0, "capacity.availability", 0.99);
        rec.counter_add("sim.corruptions", 2);
        rec.observe("detect.latency_hours", 120.0);
        rec.end(h0 + 73.0, "loop.epoch");
    }

    #[test]
    fn streamed_bytes_match_buffered_export() {
        // Buffered reference.
        let mut buffered = Recorder::with_flags(TraceFlags::enabled());
        record_epoch(&mut buffered, 0.0);
        record_epoch(&mut buffered, 73.0);
        let reference = buffered.finish().to_jsonl();

        // Streamed run, drained mid-way.
        let mut rec = Recorder::with_flags(TraceFlags::enabled());
        let mut sink = JsonlStreamSink::new(Vec::new());
        record_epoch(&mut rec, 0.0);
        sink.drain(&mut rec).unwrap();
        record_epoch(&mut rec, 73.0);
        sink.finish(&mut rec).unwrap();
        let streamed = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(streamed, reference);
        // The drained recorder finishes to an event-less trace, but the
        // metric set survives for in-process consumers.
        let t = rec.finish();
        assert!(t.events.is_empty());
        assert_eq!(t.metrics.counter("sim.corruptions"), 4);
    }

    #[test]
    fn aborted_stream_is_a_complete_line_prefix() {
        let mut buffered = Recorder::with_flags(TraceFlags::enabled());
        record_epoch(&mut buffered, 0.0);
        record_epoch(&mut buffered, 73.0);
        let full = buffered.finish().to_jsonl();

        let mut rec = Recorder::with_flags(TraceFlags::enabled());
        let mut sink = JsonlStreamSink::new(Vec::new());
        record_epoch(&mut rec, 0.0);
        sink.drain(&mut rec).unwrap();
        // Abort: the second epoch is never drained, finish never runs.
        let partial = String::from_utf8(sink.into_inner()).unwrap();
        assert!(partial.ends_with('\n'));
        assert!(full.starts_with(&partial));
        assert!(partial
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn disabled_recorder_streams_nothing() {
        let mut rec = Recorder::disabled();
        let mut sink = JsonlStreamSink::new(Vec::new());
        record_epoch(&mut rec, 0.0);
        sink.drain(&mut rec).unwrap();
        sink.finish(&mut rec).unwrap();
        assert!(sink.into_inner().is_empty());
    }
}
