//! ASCII per-core incident timelines.
//!
//! Reconstructs each core's life — onset → first corruption → first signal
//! → detection → suspect → quarantine → confirm/exonerate → restore —
//! from the core-tagged instant events in a [`Trace`].

use std::collections::BTreeMap;

use crate::event::EventKind;
use crate::recorder::Trace;

/// Cores rendered before the timeline truncates with a note.
const MAX_CORES: usize = 40;

/// Short human label for a lifecycle event name, or `None` to omit it from
/// the timeline (e.g. capacity bookkeeping duplicates quarantine events).
/// Public so the audit layer's case files speak the same stage vocabulary
/// as the timelines.
pub fn stage_label(name: &str) -> Option<&'static str> {
    Some(match name {
        "gt.onset" => "onset",
        "sim.first_corruption" => "corrupt",
        "score.first_signal" => "signal",
        "score.recidivist" => "recidivist",
        "detect.burnin" => "detect(burnin)",
        "detect.offline" => "detect(offline)",
        "detect.online" => "detect(online)",
        "detect.triage" => "detect(triage)",
        "core.suspect" => "suspect",
        "core.quarantine" => "quarantine",
        "core.confirm" => "confirm",
        "core.exonerate" => "exonerate",
        "core.restore" => "restore",
        "core.retire" => "retire",
        _ => return None,
    })
}

/// Render the per-core incident timeline.
///
/// `label` maps a packed `CoreUid` u64 to a display string (the caller
/// owns the `CoreUid` type; `mercurial-fault`'s `Display` gives
/// `m{}s{}c{}`). Cores with the richest lifecycles come first (stage
/// count descending, then first-event hour, then core id) so full
/// incidents outrank the flood of single-signal noise cores when the
/// report truncates; each line lists the core's stages sorted by hour
/// (emission order breaks ties) as `stage@h<hour>`.
pub fn incident_timeline(trace: &Trace, label: &dyn Fn(u64) -> String) -> String {
    // Packed uid → lifecycle stages in emission order.
    let mut cores: BTreeMap<u64, Vec<(f64, &'static str)>> = BTreeMap::new();
    for e in &trace.events {
        if e.kind != EventKind::Instant {
            continue;
        }
        let (Some(core), Some(stage)) = (e.core, stage_label(e.name)) else {
            continue;
        };
        cores.entry(core).or_default().push((e.hour, stage));
    }
    // Emission order is deterministic but not hour-sorted within a core:
    // e.g. a batch of signals can ingest a later-hour signal first. A
    // stable sort puts each life story in chronological order while
    // keeping same-hour stages (suspect → quarantine) in emission order.
    for stages in cores.values_mut() {
        stages.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite sim hours"));
    }

    let mut out = String::new();
    if cores.is_empty() {
        out.push_str("incident timeline: no per-core lifecycle events recorded\n");
        return out;
    }

    // Fullest incidents first (stage count descending), then
    // chronologically by first event, then by core id.
    let mut order: Vec<(u64, &Vec<(f64, &'static str)>)> =
        cores.iter().map(|(k, v)| (*k, v)).collect();
    order.sort_by(|a, b| {
        let ha = a.1.first().map(|(h, _)| *h).unwrap_or(0.0);
        let hb = b.1.first().map(|(h, _)| *h).unwrap_or(0.0);
        b.1.len()
            .cmp(&a.1.len())
            .then(ha.partial_cmp(&hb).unwrap())
            .then(a.0.cmp(&b.0))
    });

    out.push_str(&format!("incident timeline ({} cores)\n", order.len()));
    let width = order
        .iter()
        .take(MAX_CORES)
        .map(|(core, _)| label(*core).len())
        .max()
        .unwrap_or(0);
    for (core, stages) in order.iter().take(MAX_CORES) {
        let line: Vec<String> = stages.iter().map(|(h, s)| format!("{s}@h{h:.0}")).collect();
        out.push_str(&format!(
            "  {:<width$}  {}\n",
            label(*core),
            line.join(" -> "),
        ));
    }
    if order.len() > MAX_CORES {
        out.push_str(&format!(
            "  ... and {} more cores (truncated)\n",
            order.len() - MAX_CORES
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, TraceFlags};

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = Recorder::disabled().finish();
        let s = incident_timeline(&t, &|id| format!("core{id}"));
        assert!(s.contains("no per-core lifecycle events"));
    }

    #[test]
    fn lifecycle_renders_in_order() {
        let mut r = Recorder::with_flags(TraceFlags::enabled());
        r.instant(10.0, "gt.onset", Some(7), 0.0);
        r.instant(50.0, "score.first_signal", Some(7), 0.0);
        r.instant(90.0, "core.suspect", Some(7), 0.0);
        r.instant(90.0, "core.quarantine", Some(7), 0.0);
        r.instant(120.0, "core.confirm", Some(7), 0.0);
        // A second core that gets exonerated, first event later than core 7.
        r.instant(60.0, "core.suspect", Some(3), 0.0);
        r.instant(80.0, "core.exonerate", Some(3), 0.0);
        // Non-lifecycle events are ignored.
        r.instant(5.0, "capacity.core_removed", Some(7), 0.0);
        r.gauge(5.0, "capacity.availability", 1.0);
        let t = r.finish();
        let s = incident_timeline(&t, &|id| format!("c{id}"));
        assert!(s.contains("incident timeline (2 cores)"));
        let line7 = s
            .lines()
            .find(|l| l.trim_start().starts_with("c7"))
            .unwrap();
        assert_eq!(
            line7.trim(),
            "c7  onset@h10 -> signal@h50 -> suspect@h90 -> quarantine@h90 -> confirm@h120"
        );
        // Core 7 (first event h10) sorts before core 3 (first event h60).
        let pos7 = s.find("c7").unwrap();
        let pos3 = s.find("c3").unwrap();
        assert!(pos7 < pos3);
        assert!(s.contains("exonerate@h80"));
    }

    #[test]
    fn truncates_past_cap() {
        let mut r = Recorder::with_flags(TraceFlags::enabled());
        for i in 0..(MAX_CORES as u64 + 10) {
            r.instant(i as f64, "gt.onset", Some(i), 0.0);
        }
        let s = incident_timeline(&r.finish(), &|id| format!("c{id}"));
        assert!(s.contains("and 10 more cores (truncated)"));
    }
}
