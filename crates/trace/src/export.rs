//! Exporters: JSONL, Prometheus text exposition, Chrome trace-event JSON.
//!
//! All three are hand-rolled (this crate is zero-dependency) and
//! deterministic: floats go through Rust's shortest-roundtrip `Display`,
//! events are written in merge order, and metrics in `BTreeMap` order.

use std::fmt::Write as _;

use crate::event::{EventKind, TraceEvent};
use crate::metric::MetricSet;
use crate::recorder::Trace;

/// Escape a string for embedding inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 as a JSON number. Rust's `Display` prints the shortest
/// string that round-trips, which is deterministic; non-finite values
/// (never produced by the recorder's clocked paths) degrade to 0.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Append one event's JSONL line (newline included):
/// `{"h":<hour>,"k":"B|E|I|G","n":"<name>"[,"core":<u64>][,"v":<value>]}`.
///
/// Both [`to_jsonl`] and the incremental [`crate::stream::JsonlStreamSink`]
/// format events through this one function, which is what makes the
/// streamed file byte-identical to the buffered export by construction.
pub fn write_jsonl_event(out: &mut String, e: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"h\":{},\"k\":\"{}\",\"n\":\"{}\"",
        json_num(e.hour),
        e.kind.code(),
        json_escape(e.name)
    );
    if let Some(core) = e.core {
        let _ = write!(out, ",\"core\":{core}");
    }
    if e.value != 0.0 || e.kind == EventKind::Gauge {
        let _ = write!(out, ",\"v\":{}", json_num(e.value));
    }
    out.push_str("}\n");
}

/// Append the metric tail of a JSONL export: one `metric` line per
/// counter, gauge, and histogram, in name order. Shared by [`to_jsonl`]
/// and [`crate::stream::JsonlStreamSink::finish`].
pub fn write_jsonl_metrics(out: &mut String, metrics: &MetricSet) {
    for (name, v) in metrics.counters() {
        let _ = writeln!(
            out,
            "{{\"metric\":\"counter\",\"n\":\"{}\",\"v\":{v}}}",
            json_escape(name)
        );
    }
    for (name, v) in metrics.gauges() {
        let _ = writeln!(
            out,
            "{{\"metric\":\"gauge\",\"n\":\"{}\",\"v\":{}}}",
            json_escape(name),
            json_num(v)
        );
    }
    for (name, h) in metrics.histograms() {
        let _ = write!(
            out,
            "{{\"metric\":\"histogram\",\"n\":\"{}\",\"count\":{},\"sum\":{}",
            json_escape(name),
            h.count(),
            json_num(h.sum())
        );
        for (label, q) in [
            ("min", h.min()),
            ("p50", h.p50()),
            ("p95", h.p95()),
            ("p99", h.p99()),
            ("max", h.max()),
        ] {
            if let Some(q) = q {
                let _ = write!(out, ",\"{label}\":{}", json_num(q));
            }
        }
        out.push_str("}\n");
    }
}

/// JSONL event log: one JSON object per line. Events first (merge order),
/// then one `metric` line per counter, gauge, and histogram (name order).
///
/// Event lines: `{"h":<hour>,"k":"B|E|I|G","n":"<name>"[,"core":<u64>][,"v":<value>]}`.
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for e in &trace.events {
        write_jsonl_event(&mut out, e);
    }
    write_jsonl_metrics(&mut out, &trace.metrics);
    out
}

/// Escape a string for use as a Prometheus label *value* per the text
/// exposition format: backslash, double-quote, and line-feed must be
/// escaped (`\\`, `\"`, `\n`); everything else passes through verbatim.
/// Rule names and workload-class names are operator-supplied, so the
/// status page and audit sections must not trust them to be tame.
pub fn prom_label_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Sanitize a dot-namespaced metric name into a Prometheus metric name.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("mercurial_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Prometheus text exposition of the final metric set. Counters and gauges
/// export directly; histograms export as summaries with p50/p95/p99
/// quantile samples plus `_sum` and `_count`.
pub fn to_prometheus(trace: &Trace) -> String {
    metrics_to_prometheus(&trace.metrics)
}

/// Prometheus text exposition of a bare metric set — the same body as
/// [`to_prometheus`] without needing a finished [`Trace`], so a live
/// status endpoint can render mid-run snapshots.
pub fn metrics_to_prometheus(metrics: &MetricSet) -> String {
    let mut out = String::new();
    for (name, v) in metrics.counters() {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in metrics.gauges() {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", json_num(v));
    }
    for (name, h) in metrics.histograms() {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, v) in [("0.5", h.p50()), ("0.95", h.p95()), ("0.99", h.p99())] {
            if let Some(v) = v {
                let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {}", json_num(v));
            }
        }
        let _ = writeln!(out, "{n}_sum {}", json_num(h.sum()));
        let _ = writeln!(out, "{n}_count {}", h.count());
    }
    out
}

/// Chrome trace-event JSON (the `{"traceEvents":[...]}` object format),
/// loadable in Perfetto / `chrome://tracing`.
///
/// The simulated hour maps to microsecond timestamps at 1 hour = 1000 µs
/// so a multi-year run stays navigable. Spans emit `B`/`E` pairs, instants
/// `i` (process-scoped), gauges `C` counter samples.
pub fn to_chrome_trace(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for e in &trace.events {
        if !first {
            out.push(',');
        }
        first = false;
        let ts = json_num(e.hour * 1000.0);
        let name = json_escape(e.name);
        match e.kind {
            EventKind::Begin => {
                let _ = write!(
                    out,
                    "\n{{\"name\":\"{name}\",\"ph\":\"B\",\"ts\":{ts},\"pid\":1,\"tid\":1}}"
                );
            }
            EventKind::End => {
                let _ = write!(
                    out,
                    "\n{{\"name\":\"{name}\",\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":1}}"
                );
            }
            EventKind::Instant => {
                let _ = write!(
                    out,
                    "\n{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"p\",\"ts\":{ts},\"pid\":1,\"tid\":1,\"args\":{{"
                );
                let mut any = false;
                if let Some(core) = e.core {
                    let _ = write!(out, "\"core\":{core}");
                    any = true;
                }
                if e.value != 0.0 {
                    if any {
                        out.push(',');
                    }
                    let _ = write!(out, "\"value\":{}", json_num(e.value));
                }
                out.push_str("}}");
            }
            EventKind::Gauge => {
                let _ = write!(
                    out,
                    "\n{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"tid\":1,\"args\":{{\"value\":{}}}}}",
                    json_num(e.value)
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::recorder::{Recorder, TraceFlags};

    fn sample_trace() -> crate::recorder::Trace {
        let mut r = Recorder::with_flags(TraceFlags::enabled());
        r.begin(0.0, "sim.epoch");
        r.instant(
            10.5,
            "detect.online",
            Some((3u64 << 32) | (1 << 16) | 2),
            0.0,
        );
        r.gauge(73.0, "capacity.availability", 0.9975);
        r.counter_add("sim.corruptions", 42);
        r.observe("screen.latency_hours", 120.0);
        r.end(73.0, "sim.epoch");
        r.finish()
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let t = sample_trace();
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        // 4 events + 1 counter + 1 gauge + 1 histogram metric line.
        assert_eq!(lines.len(), 7);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"k\":\"B\""));
        assert!(lines[1].contains("\"core\":12884967426"));
        assert!(jsonl.contains("\"metric\":\"counter\",\"n\":\"sim.corruptions\",\"v\":42"));
        assert!(jsonl.contains("\"metric\":\"histogram\""));
    }

    #[test]
    fn jsonl_is_deterministic() {
        assert_eq!(sample_trace().to_jsonl(), sample_trace().to_jsonl());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let prom = sample_trace().to_prometheus();
        assert!(prom.contains("# TYPE mercurial_sim_corruptions counter"));
        assert!(prom.contains("mercurial_sim_corruptions 42"));
        assert!(prom.contains("# TYPE mercurial_capacity_availability gauge"));
        assert!(prom.contains("mercurial_screen_latency_hours{quantile=\"0.5\"} 120"));
        assert!(prom.contains("mercurial_screen_latency_hours_count 1"));
    }

    #[test]
    fn chrome_trace_has_balanced_spans_and_valid_shape() {
        let chrome = sample_trace().to_chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.trim_end().ends_with("]}"));
        let begins = chrome.matches("\"ph\":\"B\"").count();
        let ends = chrome.matches("\"ph\":\"E\"").count();
        assert_eq!(begins, ends);
        assert_eq!(begins, 1);
        // Braces balance — a cheap structural check; the bench validates
        // full JSON parsing with serde_json.
        let open = chrome.matches('{').count();
        let close = chrome.matches('}').count();
        assert_eq!(open, close);
        // Hour 73.0 → ts 73000 µs.
        assert!(chrome.contains("\"ts\":73000"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(super::json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn prom_label_escape_handles_hostile_class_name() {
        // A workload class named by someone who read the exposition spec
        // and wants to break it: quotes, backslashes, and a newline.
        let hostile = "batch\"tier\\0\npwned";
        let escaped = super::prom_label_escape(hostile);
        assert_eq!(escaped, "batch\\\"tier\\\\0\\npwned");
        // Embedded in a label, the line stays a single line with balanced
        // quotes.
        let line = format!("mercurial_class_ops{{class=\"{escaped}\"}} 1");
        assert_eq!(line.lines().count(), 1);
        assert!(!line.contains('\n'));
        let unescaped_quotes = line.matches('"').count() - line.matches("\\\"").count();
        assert_eq!(unescaped_quotes, 2, "only the delimiter quotes survive");
        // Tame values pass through untouched.
        assert_eq!(super::prom_label_escape("web-frontend"), "web-frontend");
    }

    #[test]
    fn empty_trace_exports_are_empty_but_wellformed() {
        let t = Recorder::disabled().finish();
        assert_eq!(t.to_jsonl(), "");
        assert_eq!(t.to_prometheus(), "");
        assert_eq!(t.to_chrome_trace(), "{\"traceEvents\":[\n]}\n");
    }
}
