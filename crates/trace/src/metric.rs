//! Counters, gauges, and log-bucketed histograms.
//!
//! Metrics are keyed by `&'static str` in `BTreeMap`s so readouts iterate
//! in a deterministic (lexicographic) order regardless of insertion order.
//! Histograms use fixed log10 bucketing so two histograms built from the
//! same samples in any grouping merge to identical state.

use std::collections::BTreeMap;

/// Buckets per decade for [`LogHistogram`].
const PER_DECADE: usize = 8;
/// Lowest decade covered (10^-9); positive samples below it count as
/// underflow and are reported at `min`.
const MIN_DECADE: i32 = -9;
/// Number of decades covered: 10^-9 ..= 10^12.
const DECADES: usize = 21;
/// Total bucket count.
const BUCKETS: usize = PER_DECADE * DECADES;

/// Fixed-layout log10-bucketed histogram with deterministic merge.
///
/// Tracks exact `count`, `sum`, `min`, `max` alongside the buckets, so
/// single-sample and narrow distributions report exact quantiles (the
/// bucket-midpoint estimate is clamped to `[min, max]`).
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    /// Samples exactly equal to zero (common for "no corruptions this epoch").
    zeros: u64,
    /// Positive samples below the smallest bucket.
    underflow: u64,
    /// Samples at or above the largest bucket, plus non-finite/negative junk.
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            zeros: 0,
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl LogHistogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(v: f64) -> Option<usize> {
        // Caller guarantees v > 0 and finite.
        let pos = (v.log10() - MIN_DECADE as f64) * PER_DECADE as f64;
        if pos < 0.0 {
            return None; // underflow
        }
        let idx = pos.floor() as usize;
        if idx >= BUCKETS {
            None // overflow (caller distinguishes by sign of pos)
        } else {
            Some(idx)
        }
    }

    /// Record one sample. Negative and non-finite samples count toward
    /// `count` (as overflow) but are excluded from min/max/sum bookkeeping
    /// only when non-finite.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        if !v.is_finite() {
            self.overflow += 1;
            return;
        }
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v == 0.0 {
            self.zeros += 1;
        } else if v < 0.0 {
            // Out-of-model for a log histogram; lump with underflow so the
            // quantile walk still reports it near `min`.
            self.underflow += 1;
        } else {
            match Self::bucket_index(v) {
                Some(i) => self.buckets[i] += 1,
                None if v < 1.0 => self.underflow += 1,
                None => self.overflow += 1,
            }
        }
    }

    /// Total number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite samples.
    pub fn sum(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum
        }
    }

    /// Smallest finite sample, if any.
    pub fn min(&self) -> Option<f64> {
        if self.min.is_finite() {
            Some(self.min)
        } else {
            None
        }
    }

    /// Largest finite sample, if any.
    pub fn max(&self) -> Option<f64> {
        if self.max.is_finite() {
            Some(self.max)
        } else {
            None
        }
    }

    /// Quantile estimate for `q` in `[0, 1]`; `None` on an empty histogram
    /// or one that only ever saw non-finite samples.
    ///
    /// Walks the cumulative bucket counts and returns the geometric
    /// midpoint of the target bucket, clamped to the exact `[min, max]`
    /// range — so single-sample and single-bucket histograms are exact and
    /// estimates never interpolate across decades no sample landed in.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        // `count > 0` with no finite extremes means every sample was
        // NaN/∞: there is no finite range to estimate within, so report
        // "no data" rather than fabricate a zero.
        let (Some(lo), Some(hi)) = (self.min(), self.max()) else {
            return None;
        };
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let clamp = |v: f64| v.clamp(lo, hi);
        let mut seen = self.zeros;
        if target <= seen {
            return Some(clamp(0.0));
        }
        seen += self.underflow;
        if target <= seen {
            return Some(clamp(lo));
        }
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if target <= seen {
                let mid = 10f64.powf(MIN_DECADE as f64 + (i as f64 + 0.5) / PER_DECADE as f64);
                return Some(clamp(mid));
            }
        }
        Some(clamp(hi))
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one. Because the bucket layout is
    /// fixed, merging is exact: `merge(a, b)` equals observing all of `a`'s
    /// and `b`'s samples into one histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.zeros += other.zeros;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Deterministically ordered set of counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSet {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, LogHistogram>,
}

impl MetricSet {
    /// New empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a monotonic counter.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set a gauge to its latest sampled value.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &'static str, sample: f64) {
        self.histograms.entry(name).or_default().observe(sample);
    }

    /// Counter readout (deterministic order).
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Gauge readout (deterministic order). Gauges hold the last value
    /// written in merge order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Histogram readout (deterministic order).
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Look up one counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Look up one gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Look up one histogram.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge a shard's metrics into this set: counters sum, gauges take the
    /// incoming (later-in-merge-order) value, histograms merge exactly.
    pub fn merge(&mut self, other: &MetricSet) {
        for (name, v) in other.counters.iter() {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in other.gauges.iter() {
            self.gauges.insert(name, *v);
        }
        for (name, h) in other.histograms.iter() {
            self.histograms.entry(name).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = LogHistogram::new();
        h.observe(73.0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(73.0));
        }
        assert_eq!(h.sum(), 73.0);
    }

    #[test]
    fn zeros_and_quantiles() {
        let mut h = LogHistogram::new();
        for _ in 0..9 {
            h.observe(0.0);
        }
        h.observe(100.0);
        assert_eq!(h.p50(), Some(0.0));
        // p99 targets rank ceil(0.99*10)=10 → the 100.0 sample's bucket,
        // clamped into [0, 100].
        let p99 = h.p99().unwrap();
        assert!(p99 > 0.0 && p99 <= 100.0, "p99={p99}");
    }

    #[test]
    fn quantile_estimate_within_bucket_error() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.observe(i as f64);
        }
        let p50 = h.p50().unwrap();
        // 8 buckets/decade → worst-case ratio error 10^(1/8) ≈ 1.33.
        assert!((p50 / 500.0) > 0.7 && (p50 / 500.0) < 1.4, "p50={p50}");
        let p99 = h.p99().unwrap();
        assert!((p99 / 990.0) > 0.7 && (p99 / 990.0) < 1.4, "p99={p99}");
    }

    #[test]
    fn merge_matches_single_histogram() {
        let mut all = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..100 {
            let v = (i as f64) * 0.37 + 0.001;
            all.observe(v);
            if i % 2 == 0 {
                a.observe(v)
            } else {
                b.observe(v)
            }
        }
        a.merge(&b);
        // Bucket counts, extremes, and quantiles merge exactly; the sum is
        // only approximately equal (float addition is not associative).
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
        assert!((a.sum() - all.sum()).abs() < 1e-9 * all.sum().abs());
    }

    #[test]
    fn all_zero_histogram_quantiles_are_exactly_zero() {
        let mut h = LogHistogram::new();
        for _ in 0..7 {
            h.observe(0.0);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(0.0));
        }
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.max(), Some(0.0));
    }

    #[test]
    fn single_bucket_histogram_does_not_interpolate_across_empty_decades() {
        // Nine zeros and five samples in one bucket: every quantile must
        // land either exactly at 0 or inside the populated bucket's
        // clamped range — never in the empty decades between them.
        let mut h = LogHistogram::new();
        for _ in 0..9 {
            h.observe(0.0);
        }
        for _ in 0..5 {
            h.observe(100.0);
        }
        assert_eq!(h.p50(), Some(0.0));
        // Rank 14 of 14 → the 100.0 bucket; its geometric midpoint
        // (≈115.5) clamps to the exact max.
        assert_eq!(h.p95(), Some(100.0));
        assert_eq!(h.p99(), Some(100.0));
    }

    #[test]
    fn identical_samples_are_exact_at_every_quantile() {
        let mut h = LogHistogram::new();
        for _ in 0..100 {
            h.observe(73.0);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(73.0));
        }
    }

    #[test]
    fn non_finite_only_histogram_has_no_quantiles() {
        let mut h = LogHistogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        // Previously this fabricated Some(0.0) from the missing extremes.
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn extreme_samples_land_in_under_overflow() {
        let mut h = LogHistogram::new();
        h.observe(1e-30);
        h.observe(1e30);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(1e-30));
        assert_eq!(h.max(), Some(1e30));
        // Quantiles stay inside the observed range.
        let p50 = h.p50().unwrap();
        assert!((1e-30..=1e30).contains(&p50));
    }

    #[test]
    fn metric_set_merge_semantics() {
        let mut a = MetricSet::new();
        a.counter_add("ops", 3);
        a.gauge_set("cap", 0.9);
        a.observe("lat", 10.0);
        let mut b = MetricSet::new();
        b.counter_add("ops", 4);
        b.gauge_set("cap", 0.8);
        b.observe("lat", 20.0);
        a.merge(&b);
        assert_eq!(a.counter("ops"), 7);
        assert_eq!(a.gauge("cap"), Some(0.8)); // last write wins
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.counter("missing"), 0);
    }
}
