//! # mercurial-trace
//!
//! Deterministic structured tracing for the mercurial laboratory.
//!
//! The paper's detection story is an observability story: Google finds
//! mercurial cores by mining fleet-wide signal streams and per-core
//! incident histories. This crate is the telemetry layer the rest of the
//! workspace instruments itself with — spans and instant events on a
//! *simulated* clock, counters/gauges/log-bucketed histograms, and
//! exporters a human or a tool can read (JSONL, Prometheus text
//! exposition, Chrome trace-event JSON, ASCII incident timelines).
//!
//! ## Determinism contract
//!
//! Events carry the simulation hour, never wall-clock time, and every
//! parallel producer records into its own shard [`Recorder`] which the
//! driver merges in shard order ([`Recorder::shard`] /
//! [`Recorder::absorb`]) — the same contract as
//! `fleet::par::map_parallel`. A trace is therefore a pure function of
//! `(scenario, seed)`: byte-for-byte identical at 1, 2, or 8 worker
//! threads.
//!
//! ## Cost when disabled
//!
//! A disabled recorder is a `None`: every recording method is one branch
//! and no allocation, so instrumented hot loops run at full speed when
//! tracing is off (proven by the `e16_trace_overhead` bench).
//!
//! Zero-dependency by design: this crate sits below every other workspace
//! crate and exporters hand-roll their formats.
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metric;
pub mod recorder;
pub mod stream;
pub mod timeline;

pub use event::{EventKind, TraceEvent};
pub use export::prom_label_escape;
pub use metric::{LogHistogram, MetricSet};
pub use recorder::{Recorder, Trace, TraceFlags};
pub use stream::{JsonlStreamSink, TraceSink};
pub use timeline::{incident_timeline, stage_label};
