//! The CPU product catalog.
//!
//! §2: "CEEs appear to be an industry-wide problem, not specific to any
//! vendor, but the rate is not uniform across CPU products." §4 asks how to
//! "assess the risks to a large fleet, with various CPU types, from several
//! vendors, and of various ages". Products therefore carry their own
//! incidence rates, latent-fraction parameters, and DVFS curves.

use mercurial_fault::DvfsCurve;
use serde::{Deserialize, Serialize};

/// One CPU product (vendor + generation) deployed in the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuProduct {
    /// Product name, e.g. "vendorA-gen3".
    pub name: String,
    /// Cores per socket.
    pub cores_per_socket: u16,
    /// Probability that any given manufactured core is mercurial.
    ///
    /// The paper's observed scale — "a few mercurial cores per several
    /// thousand machines" — works out to roughly `1e-5`-ish per core for
    /// ~100-core machines; products vary around that.
    pub mercurial_rate_per_core: f64,
    /// The DVFS curve screeners sweep (footnote 1: f and V are coupled).
    pub dvfs: DvfsCurve,
    /// Relative share of this product in fleet purchases.
    pub fleet_weight: f64,
}

impl CpuProduct {
    /// A three-product catalog with rates spanning the plausible range —
    /// a newer small-feature-size part is worse, matching §5's argument
    /// that shrinking geometry drives the problem.
    pub fn default_catalog() -> Vec<CpuProduct> {
        vec![
            CpuProduct {
                name: "vendorA-gen2".to_string(),
                cores_per_socket: 24,
                mercurial_rate_per_core: 6e-6,
                dvfs: DvfsCurve::typical_server(),
                fleet_weight: 0.35,
            },
            CpuProduct {
                name: "vendorA-gen3".to_string(),
                cores_per_socket: 32,
                mercurial_rate_per_core: 2.5e-5,
                dvfs: DvfsCurve::typical_server(),
                fleet_weight: 0.40,
            },
            CpuProduct {
                name: "vendorB-gen1".to_string(),
                cores_per_socket: 48,
                mercurial_rate_per_core: 1.2e-5,
                dvfs: DvfsCurve::new(vec![(1500, 780), (2000, 850), (2800, 1000)]),
                fleet_weight: 0.25,
            },
        ]
    }

    /// Expected mercurial cores per thousand machines for this product,
    /// given `sockets` sockets per machine.
    pub fn expected_mercurial_per_kmachine(&self, sockets: u8) -> f64 {
        self.mercurial_rate_per_core * self.cores_per_socket as f64 * sockets as f64 * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_rates_differ_across_products() {
        let cat = CpuProduct::default_catalog();
        assert_eq!(cat.len(), 3);
        let mut rates: Vec<f64> = cat.iter().map(|p| p.mercurial_rate_per_core).collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            rates[2] / rates[0] > 2.0,
            "products should differ meaningfully"
        );
    }

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = CpuProduct::default_catalog()
            .iter()
            .map(|p| p.fleet_weight)
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expected_incidence_is_a_few_per_several_thousand_machines() {
        // §1's headline scale must fall out of the default catalog.
        let cat = CpuProduct::default_catalog();
        let weighted: f64 = cat
            .iter()
            .map(|p| p.fleet_weight * p.expected_mercurial_per_kmachine(2))
            .sum();
        // "a few per several thousand" → per thousand machines the count
        // should land somewhere around 0.3–3.
        assert!(
            (0.3..=3.0).contains(&weighted),
            "expected per-1000-machines = {weighted}"
        );
    }
}
