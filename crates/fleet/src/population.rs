//! Ground truth: which cores are mercurial, and the fault oracle.
//!
//! [`Population::seed_from`] walks every core of a topology and flips a
//! per-product-rate Bernoulli coin; afflicted cores get a randomized
//! profile from the `mercurial-fault` archetype library. The result is the
//! simulation's *ground truth* — §1's "a few mercurial cores per several
//! thousand machines" as actual, enumerable cores.
//!
//! The **fault oracle** methods ([`Population::screen_core`],
//! [`Population::unit_rates`]) answer the only question hardware ever
//! answers: "did this batch of operations miscompute?". Screeners and the
//! workload engine are built on them; neither gets to peek at the profile
//! itself (that privilege is reserved to experiment ground-truth scoring).

use crate::topology::FleetTopology;
use mercurial_fault::{
    library, CoreFaultProfile, CoreUid, CounterRng, FunctionalUnit, OperatingPoint,
};
use std::collections::BTreeMap;

/// One mercurial core: identity plus ground-truth profile.
#[derive(Debug, Clone, PartialEq)]
pub struct MercurialCore {
    /// The core.
    pub uid: CoreUid,
    /// Its defect profile.
    pub profile: CoreFaultProfile,
}

/// A batch test description: how many operations hit each unit, with what
/// operands, at what operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct TestSpec {
    /// Operations per functional unit (indexed by [`FunctionalUnit::index`]).
    pub unit_ops: [u64; 9],
    /// Representative operands (the defect's data-pattern gate sees these;
    /// activation probability is averaged over them).
    pub operands: Vec<u64>,
    /// Operating point during the test.
    pub point: OperatingPoint,
}

impl TestSpec {
    /// The classic test-pattern operand set: zeros, ones, checkerboards,
    /// and a walking-bit sample.
    pub fn default_operands() -> Vec<u64> {
        vec![
            0,
            u64::MAX,
            0xaaaa_aaaa_aaaa_aaaa,
            0x5555_5555_5555_5555,
            0x0102_0408_1020_4080,
            0xdead_beef_cafe_f00d,
        ]
    }

    /// A uniform spec: `ops` operations on every unit at `point`.
    pub fn uniform(ops: u64, point: OperatingPoint) -> TestSpec {
        TestSpec {
            unit_ops: [ops; 9],
            operands: TestSpec::default_operands(),
            point,
        }
    }
}

/// The fleet's mercurial-core ground truth and fault oracle.
#[derive(Debug, Clone)]
pub struct Population {
    mercurial: BTreeMap<CoreUid, MercurialCore>,
    seed: u64,
}

impl Population {
    /// Samples the population for a topology (deterministic in the
    /// topology's seed).
    pub fn seed_from(topo: &FleetTopology) -> Population {
        let seed = topo.config().seed;
        let mut mercurial = BTreeMap::new();
        let mut draw_id = 0u64;
        for m in topo.machines() {
            let rate = topo.product_of(m.machine).mercurial_rate_per_core;
            for uid in topo.cores_of(m.machine) {
                let coin = CounterRng::from_parts(seed, uid.as_u64(), 0x6d65, 0).uniform_at(0);
                if coin < rate {
                    let profile = library::sample_profile(seed, draw_id);
                    mercurial.insert(uid, MercurialCore { uid, profile });
                }
                draw_id += 1;
            }
        }
        Population { mercurial, seed }
    }

    /// A population with explicitly placed defects (for tests and the
    /// case-study experiments).
    pub fn with_explicit(seed: u64, cores: Vec<(CoreUid, CoreFaultProfile)>) -> Population {
        Population {
            mercurial: cores
                .into_iter()
                .map(|(uid, profile)| (uid, MercurialCore { uid, profile }))
                .collect(),
            seed,
        }
    }

    /// Number of mercurial cores.
    pub fn count(&self) -> usize {
        self.mercurial.len()
    }

    /// Iterates the mercurial cores (ground truth).
    pub fn mercurial_cores(&self) -> impl Iterator<Item = &MercurialCore> {
        self.mercurial.values()
    }

    /// The mercurial cores on one machine, in ascending [`CoreUid`] order
    /// (a `BTreeMap` range — O(log n + hits), not a population scan).
    pub fn mercurial_on(&self, machine: u32) -> impl Iterator<Item = &MercurialCore> {
        self.mercurial
            .range(CoreUid::new(machine, 0, 0)..=CoreUid::new(machine, u8::MAX, u16::MAX))
            .map(|(_, core)| core)
    }

    /// Ground truth: is this core mercurial?
    pub fn is_mercurial(&self, uid: CoreUid) -> bool {
        self.mercurial.contains_key(&uid)
    }

    /// Ground truth: the core's profile, if mercurial.
    pub fn profile_of(&self, uid: CoreUid) -> Option<&CoreFaultProfile> {
        self.mercurial.get(&uid).map(|m| &m.profile)
    }

    /// Per-operation corruption probability on each unit for a core under
    /// the given conditions (averaged over the spec's operands). All zeros
    /// for healthy cores.
    pub fn unit_rates(
        &self,
        uid: CoreUid,
        operands: &[u64],
        point: OperatingPoint,
        age_hours: f64,
    ) -> [f64; 9] {
        let mut rates = [0.0f64; 9];
        let Some(core) = self.mercurial.get(&uid) else {
            return rates;
        };
        for lesion in &core.profile.lesions {
            let mean_p = if operands.is_empty() {
                lesion.activation.probability(point, 0, age_hours)
            } else {
                operands
                    .iter()
                    .map(|&op| lesion.activation.probability(point, op, age_hours))
                    .sum::<f64>()
                    / operands.len() as f64
            };
            let slot = &mut rates[lesion.unit.index()];
            // Independent lesions compose as 1 - Π(1 - p).
            *slot = 1.0 - (1.0 - *slot) * (1.0 - mean_p);
        }
        rates
    }

    /// Runs an analytic screening test against a core: returns `true` if
    /// the test *fails* (at least one corruption fired during the batch).
    ///
    /// Deterministic in `(population seed, core, test_id)` so screening
    /// schedules are replayable; distinct `test_id`s are fresh draws, so
    /// retesting a flaky core behaves like production retesting.
    pub fn screen_core(&self, uid: CoreUid, spec: &TestSpec, age_hours: f64, test_id: u64) -> bool {
        let p = self.detection_probability(uid, spec, age_hours);
        if p <= 0.0 {
            return false;
        }
        CounterRng::from_parts(self.seed, uid.as_u64(), 0x7363, test_id).uniform_at(0) < p
    }

    /// The probability that [`Population::screen_core`] fails for this
    /// core and spec: `1 - Π_unit (1 - r_u)^ops_u`.
    pub fn detection_probability(&self, uid: CoreUid, spec: &TestSpec, age_hours: f64) -> f64 {
        if !self.is_mercurial(uid) {
            return 0.0;
        }
        let rates = self.unit_rates(uid, &spec.operands, spec.point, age_hours);
        let mut p_clean = 1.0f64;
        for unit in FunctionalUnit::ALL {
            let r = rates[unit.index()];
            let ops = spec.unit_ops[unit.index()];
            if r > 0.0 && ops > 0 {
                p_clean *= (1.0 - r).powf(ops as f64);
            }
        }
        1.0 - p_clean
    }

    /// The population's seed (used to key derived random streams).
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FleetConfig;
    use mercurial_fault::{Activation, Lesion};

    fn big_topo(seed: u64) -> FleetTopology {
        let mut cfg = FleetConfig::default_fleet();
        cfg.seed = seed;
        FleetTopology::build(cfg)
    }

    #[test]
    fn incidence_matches_the_paper_scale() {
        // §1: "a few mercurial cores per several thousand machines".
        let topo = big_topo(11);
        let pop = Population::seed_from(&topo);
        let per_thousand = pop.count() as f64 / (topo.config().machines as f64 / 1000.0);
        assert!(
            (0.2..=5.0).contains(&per_thousand),
            "{} mercurial cores in {} machines ({per_thousand}/1000)",
            pop.count(),
            topo.config().machines
        );
    }

    #[test]
    fn seeding_is_deterministic() {
        let topo = big_topo(12);
        let a = Population::seed_from(&topo);
        let b = Population::seed_from(&topo);
        assert_eq!(a.count(), b.count());
        let ka: Vec<CoreUid> = a.mercurial_cores().map(|c| c.uid).collect();
        let kb: Vec<CoreUid> = b.mercurial_cores().map(|c| c.uid).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn mercurial_on_selects_one_machine_in_uid_order() {
        let profile = |name: &str| {
            CoreFaultProfile::single(
                name,
                FunctionalUnit::ScalarAlu,
                Lesion::FlipBit { bit: 0 },
                Activation::always(),
            )
        };
        let pop = Population::with_explicit(
            3,
            vec![
                (CoreUid::new(9, 1, 2), profile("a")),
                (CoreUid::new(2, 0, 5), profile("b")),
                (CoreUid::new(9, 0, 7), profile("c")),
                (CoreUid::new(10, 0, 0), profile("d")),
            ],
        );
        let on9: Vec<CoreUid> = pop.mercurial_on(9).map(|c| c.uid).collect();
        assert_eq!(on9, vec![CoreUid::new(9, 0, 7), CoreUid::new(9, 1, 2)]);
        assert_eq!(pop.mercurial_on(2).count(), 1);
        assert_eq!(pop.mercurial_on(3).count(), 0);
        // Every machine's slice unions back to the full population.
        let total: usize = (0..=10).map(|m| pop.mercurial_on(m).count()).sum();
        assert_eq!(total, pop.count());
    }

    #[test]
    fn healthy_cores_never_fail_screens() {
        let pop = Population::with_explicit(1, vec![]);
        let spec = TestSpec::uniform(1_000_000, OperatingPoint::NOMINAL);
        for i in 0..100 {
            assert!(!pop.screen_core(CoreUid::new(i, 0, 0), &spec, 0.0, i as u64));
        }
    }

    #[test]
    fn hot_defect_always_caught_with_enough_ops() {
        let uid = CoreUid::new(5, 0, 2);
        let profile = CoreFaultProfile::single(
            "hot",
            FunctionalUnit::ScalarAlu,
            Lesion::FlipBit { bit: 1 },
            Activation::with_prob(0.01),
        );
        let pop = Population::with_explicit(2, vec![(uid, profile)]);
        let spec = TestSpec::uniform(10_000, OperatingPoint::NOMINAL);
        assert!(pop.detection_probability(uid, &spec, 0.0) > 0.999999);
        assert!(pop.screen_core(uid, &spec, 0.0, 0));
    }

    #[test]
    fn rare_defect_escapes_small_tests_at_the_expected_rate() {
        let uid = CoreUid::new(6, 0, 0);
        let profile = CoreFaultProfile::single(
            "rare",
            FunctionalUnit::Fma,
            Lesion::CorruptValue,
            Activation::with_prob(1e-5),
        );
        let pop = Population::with_explicit(3, vec![(uid, profile)]);
        // 10_000 FMA ops → detection prob ≈ 1 - e^{-0.1} ≈ 0.095.
        let spec = TestSpec {
            unit_ops: {
                let mut v = [0u64; 9];
                v[FunctionalUnit::Fma.index()] = 10_000;
                v
            },
            operands: TestSpec::default_operands(),
            point: OperatingPoint::NOMINAL,
        };
        let p = pop.detection_probability(uid, &spec, 0.0);
        assert!((p - 0.095).abs() < 0.01, "p = {p}");
        let detections = (0..2000)
            .filter(|&t| pop.screen_core(uid, &spec, 0.0, t))
            .count();
        let rate = detections as f64 / 2000.0;
        assert!((rate - p).abs() < 0.03, "empirical {rate} vs analytic {p}");
    }

    #[test]
    fn unit_rates_respect_data_patterns() {
        let uid = CoreUid::new(7, 0, 0);
        let profile = library::data_pattern_vector(0.5);
        let pop = Population::with_explicit(4, vec![(uid, profile)]);
        // All-zero operands never satisfy PopcountAtLeast(40).
        let low = pop.unit_rates(uid, &[0, 1, 2], OperatingPoint::NOMINAL, 0.0);
        assert_eq!(low[FunctionalUnit::VectorPipe.index()], 0.0);
        let high = pop.unit_rates(uid, &[u64::MAX], OperatingPoint::NOMINAL, 0.0);
        assert!(high[FunctionalUnit::VectorPipe.index()] > 0.4);
    }

    #[test]
    fn latent_cores_fail_nothing_before_onset() {
        let uid = CoreUid::new(8, 0, 0);
        let profile = library::late_onset_muldiv(1000.0, 0.5);
        let pop = Population::with_explicit(5, vec![(uid, profile)]);
        let spec = TestSpec::uniform(100_000, OperatingPoint::NOMINAL);
        assert_eq!(pop.detection_probability(uid, &spec, 500.0), 0.0);
        assert!(pop.detection_probability(uid, &spec, 1500.0) > 0.99);
    }

    #[test]
    fn unit_rates_compose_multiple_lesions() {
        let uid = CoreUid::new(9, 0, 0);
        let profile = CoreFaultProfile::new(
            "two",
            vec![
                mercurial_fault::FaultLesion {
                    unit: FunctionalUnit::ScalarAlu,
                    lesion: Lesion::FlipBit { bit: 0 },
                    activation: Activation::with_prob(0.1),
                },
                mercurial_fault::FaultLesion {
                    unit: FunctionalUnit::ScalarAlu,
                    lesion: Lesion::FlipBit { bit: 1 },
                    activation: Activation::with_prob(0.2),
                },
            ],
        );
        let pop = Population::with_explicit(6, vec![(uid, profile)]);
        let rates = pop.unit_rates(uid, &[0], OperatingPoint::NOMINAL, 0.0);
        assert!((rates[FunctionalUnit::ScalarAlu.index()] - 0.28).abs() < 1e-9);
    }
}
