//! Deterministic fan-out over independent work items.
//!
//! The simulator's determinism contract (every random draw is a pure
//! function of `(seed, stream, counter)` — see `mercurial-fault`'s
//! `CounterRng`) means work items that share no mutable state can run on
//! any thread in any order and still produce identical values. What
//! thread-count independence requires is that *merging* ignore completion
//! order. [`map_parallel`] guarantees that: results land in input order,
//! so the output is bit-for-bit the same for any worker count, including
//! one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Resolves a `parallelism` knob to a concrete worker count: `0` means
/// "one worker per available CPU", any other value is taken literally.
pub fn resolve_parallelism(parallelism: usize) -> usize {
    match parallelism {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Fallback fan-out threshold (abstract work units ≈ µs) when
/// calibration is unavailable: spawning a scoped thread cost ~140 µs on
/// the host the original bench ran on, so a batch cheaper than a few
/// thread-spawns should run serially even when `parallelism > 1`. The
/// live gate is [`fan_out_min_cost`], which measures the spawn cost on
/// *this* host at first use instead of trusting this constant.
pub const FAN_OUT_MIN_COST: u64 = 512;

/// Floor and ceiling for the calibrated threshold: never gate away a
/// batch cheaper than 64 µs of spawn budget, never demand more than
/// 65 536 even on a pathologically slow-spawning host.
const MIN_COST_CLAMP: (u64, u64) = (64, 65_536);

/// Derives the fan-out threshold from an optional `MERCURIAL_FANOUT_MIN_COST`
/// override and a measured per-spawn cost in µs. Pure, so tests can pin
/// the policy without racing on process environment: the override wins
/// when it parses, otherwise the threshold is ~4 thread-spawns (the point
/// where parallel halving of the work can plausibly repay the spawns),
/// clamped to [`MIN_COST_CLAMP`].
fn min_cost_from(env_override: Option<&str>, spawn_cost_us: u64) -> u64 {
    if let Some(v) = env_override {
        if let Ok(n) = v.trim().parse::<u64>() {
            return n;
        }
    }
    (spawn_cost_us.saturating_mul(4)).clamp(MIN_COST_CLAMP.0, MIN_COST_CLAMP.1)
}

/// The fan-out threshold in use: calibrated once per process by timing
/// scoped thread spawns through `mercurial-prof` (the satellite PR 7's
/// re-profile asked for — the old hard-coded ~140 µs constant only held
/// on the machine that measured it), overridable via the
/// `MERCURIAL_FANOUT_MIN_COST` environment variable. Purely a scheduling
/// knob: whichever side of the gate a batch lands on, results are
/// bit-identical (pinned by `cost_gate_is_bit_identical_on_either_side`).
pub fn fan_out_min_cost() -> u64 {
    static CACHED: OnceLock<u64> = OnceLock::new();
    *CACHED.get_or_init(|| {
        let env = std::env::var("MERCURIAL_FANOUT_MIN_COST").ok();
        min_cost_from(env.as_deref(), mercurial_prof::measured_spawn_cost_us(4))
    })
}

/// [`map_parallel`] with a caller-supplied estimate of the whole batch's
/// cost: batches estimated below [`fan_out_min_cost`] run on the calling
/// thread, skipping thread-spawn overhead that would dwarf the work
/// itself (a sparse fleet between fault onsets simulates a handful of
/// live cores per epoch). The serial path is the `workers == 1` path of
/// [`map_parallel`], so the gate never changes results, only scheduling.
pub fn map_parallel_costed<T, R, F>(
    items: &[T],
    parallelism: usize,
    estimated_cost: u64,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if estimated_cost < fan_out_min_cost() {
        return items.iter().map(&f).collect();
    }
    map_parallel(items, parallelism, f)
}

/// Applies `f` to every item, fanning out across up to `parallelism`
/// worker threads (`0` = one per CPU), and returns the results in input
/// order.
///
/// Items are claimed dynamically (an atomic cursor), so uneven item costs
/// balance across workers; because each result is stored at its item's
/// index, the output is independent of scheduling. With one worker (or
/// one item) no threads are spawned.
///
/// # Panics
///
/// Propagates a panic from `f` (the first worker that panicked).
pub fn map_parallel<T, R, F>(items: &[T], parallelism: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = resolve_parallelism(parallelism).min(items.len()).max(1);
    if workers == 1 {
        return items.iter().map(&f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            return produced;
                        }
                        produced.push((i, f(&items[i])));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("fan-out worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every item claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for parallelism in [1, 2, 3, 8] {
            let got = map_parallel(&items, parallelism, |&x| x * x);
            assert_eq!(got, expect, "parallelism {parallelism}");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let none: Vec<u32> = vec![];
        assert!(map_parallel(&none, 4, |&x| x).is_empty());
        assert_eq!(map_parallel(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn zero_means_available_cpus() {
        assert!(resolve_parallelism(0) >= 1);
        assert_eq!(resolve_parallelism(3), 3);
    }

    #[test]
    fn cost_gate_is_bit_identical_on_either_side() {
        let items: Vec<u64> = (0..64).collect();
        let expect: Vec<u64> = items.iter().map(|x| x.wrapping_mul(0x9e37)).collect();
        let gate = fan_out_min_cost();
        for cost in [0, gate.saturating_sub(1), gate, gate + 1, u64::MAX] {
            for parallelism in [1, 4] {
                let got =
                    map_parallel_costed(&items, parallelism, cost, |&x| x.wrapping_mul(0x9e37));
                assert_eq!(got, expect, "cost {cost}, parallelism {parallelism}");
            }
        }
    }

    #[test]
    fn calibrated_threshold_is_clamped_and_overridable() {
        // Policy is pinned through the pure derivation, not the process
        // environment (tests share one process; set_var would race).
        assert_eq!(min_cost_from(Some("777"), 10), 777, "override wins");
        assert_eq!(
            min_cost_from(Some("garbage"), 10),
            64,
            "bad override ignored"
        );
        assert_eq!(min_cost_from(None, 1), 64, "floor");
        assert_eq!(min_cost_from(None, 140), 560, "~4 spawns");
        assert_eq!(min_cost_from(None, 1 << 40), 65_536, "ceiling");
        let live = fan_out_min_cost();
        assert!((1..=65_536).contains(&live), "live threshold {live}");
        assert_eq!(live, fan_out_min_cost(), "calibration is cached");
    }
}
