//! Workload classes: what the fleet's machines actually run.
//!
//! §2: corruption rates are "highly dependent on workload"; §1's
//! motivating incident was a library change that shifted the instruction
//! mix onto a defective unit. A [`WorkloadClass`] is an instruction-mix
//! vector — *consequential* operations per core-hour per functional unit —
//! plus the fraction of corruptions the application's own checks catch
//! (§6: "many of our applications already checked for SDCs"), plus a
//! deterministic time-varying [`TrafficShape`] (diurnal/rush-hour
//! inter-arrival scaling — real fleets do not run flat).

use mercurial_fault::FunctionalUnit;
use serde::{Deserialize, Serialize};

/// A deterministic, periodic scaling of a class's traffic over simulated
/// time: `intensity(hour) = 1 + amplitude · sin(2π(hour + phase)/period)`,
/// clamped strictly positive. The shape is a pure function of the hour —
/// no random draws — so it is bit-for-bit reproducible at any
/// parallelism, stepping granularity, or shard partition. The default is
/// flat (`amplitude = 0`), and a flat shape is guaranteed to leave every
/// rate bit-identical to a shapeless build (its intensity is exactly
/// `1.0` and is never even multiplied in).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficShape {
    /// Peak-to-mean swing, `0.0 ≤ amplitude < 1.0`. Zero means flat.
    pub amplitude: f64,
    /// Cycle length in hours (24 = diurnal).
    pub period_hours: f64,
    /// Phase offset in hours (staggers classes' rush hours).
    pub phase_hours: f64,
}

impl Default for TrafficShape {
    fn default() -> TrafficShape {
        TrafficShape {
            amplitude: 0.0,
            period_hours: 24.0,
            phase_hours: 0.0,
        }
    }
}

impl TrafficShape {
    /// A diurnal shape with the given swing and rush-hour offset.
    pub fn diurnal(amplitude: f64, phase_hours: f64) -> TrafficShape {
        TrafficShape {
            amplitude,
            period_hours: 24.0,
            phase_hours,
        }
    }

    /// Whether this shape is exactly flat (intensity ≡ 1).
    pub fn is_flat(&self) -> bool {
        self.amplitude == 0.0
    }

    /// The traffic multiplier at a simulation hour; strictly positive so
    /// the sparse engine's liveness predicate (`rate × ops > 0`) is
    /// unaffected by the shape.
    pub fn intensity_at(&self, hour: f64) -> f64 {
        if self.is_flat() {
            return 1.0;
        }
        let cycle = std::f64::consts::TAU * (hour + self.phase_hours) / self.period_hours.max(1e-9);
        (1.0 + self.amplitude * cycle.sin()).max(0.05)
    }
}

/// One workload class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadClass {
    /// Name, e.g. "storage-server".
    pub name: String,
    /// Consequential operations per core-hour per unit (operations whose
    /// corruption would change observable application behavior; the vast
    /// majority of retired instructions are not consequential, which is
    /// why CEE rates are survivable at all).
    pub ops_per_hour: [f64; 9],
    /// Fraction of silent corruptions the application's own end-to-end
    /// checks detect promptly (checksummed write paths, etc.).
    pub app_check_coverage: f64,
    /// Fraction of detected application-level corruptions that escalate to
    /// a human-filed suspect-core report.
    pub user_report_rate: f64,
    /// Fraction of consequential work whose update logic runs at several
    /// replicas in parallel (§6: dual computations detect CEEs as replica
    /// divergence, independent of checksums).
    pub replicated_fraction: f64,
    /// Representative operand values (drives data-pattern-gated defects).
    pub operands: Vec<u64>,
    /// Time-varying traffic shape scaling `ops_per_hour`; flat by default
    /// (legacy scenarios parse unchanged and run bit-identically).
    #[serde(default)]
    pub traffic: TrafficShape,
}

impl WorkloadClass {
    fn ops(pairs: &[(FunctionalUnit, f64)]) -> [f64; 9] {
        let mut v = [0.0f64; 9];
        for &(u, r) in pairs {
            v[u.index()] = r;
        }
        v
    }

    /// A data-analysis pipeline: heavy scalar/vector compute, some crypto,
    /// strong end-to-end checking (the §1 incident's setting).
    pub fn data_pipeline() -> WorkloadClass {
        WorkloadClass {
            name: "data-pipeline".to_string(),
            ops_per_hour: WorkloadClass::ops(&[
                (FunctionalUnit::ScalarAlu, 4e5),
                (FunctionalUnit::MulDiv, 8e4),
                (FunctionalUnit::VectorPipe, 6e5),
                (FunctionalUnit::Fma, 3e5),
                (FunctionalUnit::LoadStore, 5e5),
                (FunctionalUnit::Atomics, 2e3),
                (FunctionalUnit::CryptoUnit, 4e4),
                (FunctionalUnit::BranchUnit, 3e5),
                (FunctionalUnit::AddressGen, 5e5),
            ]),
            app_check_coverage: 0.5,
            user_report_rate: 0.15,
            replicated_fraction: 0.15,
            operands: vec![
                0xdead_beef_cafe_f00d,
                0x0102_0408_1020_4080,
                u64::MAX,
                0x00ff_00ff_00ff_00ff,
            ],
            traffic: TrafficShape::default(),
        }
    }

    /// A storage server: copy- and CRC-dominated, checksummed write path
    /// (the Colossus analogue from §6).
    pub fn storage_server() -> WorkloadClass {
        WorkloadClass {
            name: "storage-server".to_string(),
            ops_per_hour: WorkloadClass::ops(&[
                (FunctionalUnit::ScalarAlu, 5e5),
                (FunctionalUnit::MulDiv, 1e4),
                (FunctionalUnit::VectorPipe, 9e5),
                (FunctionalUnit::Fma, 1e3),
                (FunctionalUnit::LoadStore, 9e5),
                (FunctionalUnit::Atomics, 5e4),
                (FunctionalUnit::CryptoUnit, 1e5),
                (FunctionalUnit::BranchUnit, 2e5),
                (FunctionalUnit::AddressGen, 9e5),
            ]),
            app_check_coverage: 0.8,
            user_report_rate: 0.1,
            replicated_fraction: 0.25,
            operands: vec![0xaaaa_aaaa_aaaa_aaaa, 0x5555_5555_5555_5555, 0, u64::MAX],
            traffic: TrafficShape::default(),
        }
    }

    /// A database: index-heavy scalar work, locking, moderate checking
    /// (the Spanner analogue; §2's "database index corruption" case).
    pub fn database() -> WorkloadClass {
        WorkloadClass {
            name: "database".to_string(),
            ops_per_hour: WorkloadClass::ops(&[
                (FunctionalUnit::ScalarAlu, 8e5),
                (FunctionalUnit::MulDiv, 5e4),
                (FunctionalUnit::VectorPipe, 1e5),
                (FunctionalUnit::Fma, 5e3),
                (FunctionalUnit::LoadStore, 7e5),
                (FunctionalUnit::Atomics, 3e5),
                (FunctionalUnit::CryptoUnit, 2e4),
                (FunctionalUnit::BranchUnit, 6e5),
                (FunctionalUnit::AddressGen, 7e5),
            ]),
            app_check_coverage: 0.6,
            user_report_rate: 0.2,
            replicated_fraction: 0.5,
            operands: vec![0x0000_0000_ffff_ffff, 0x1111_2222_3333_4444, 7, 0],
            traffic: TrafficShape::default(),
        }
    }

    /// A crypto-heavy frontend (TLS-style): AES-round dominated.
    pub fn crypto_frontend() -> WorkloadClass {
        WorkloadClass {
            name: "crypto-frontend".to_string(),
            ops_per_hour: WorkloadClass::ops(&[
                (FunctionalUnit::ScalarAlu, 3e5),
                (FunctionalUnit::MulDiv, 2e4),
                (FunctionalUnit::VectorPipe, 2e5),
                (FunctionalUnit::Fma, 1e3),
                (FunctionalUnit::LoadStore, 3e5),
                (FunctionalUnit::Atomics, 1e4),
                (FunctionalUnit::CryptoUnit, 8e5),
                (FunctionalUnit::BranchUnit, 2e5),
                (FunctionalUnit::AddressGen, 3e5),
            ]),
            app_check_coverage: 0.4,
            user_report_rate: 0.25,
            replicated_fraction: 0.1,
            operands: vec![0x243f_6a88_85a3_08d3, 0x1319_8a2e_0370_7344, u64::MAX, 1],
            traffic: TrafficShape::default(),
        }
    }

    /// The default four-class mix with assignment weights.
    pub fn default_mix() -> Vec<(WorkloadClass, f64)> {
        vec![
            (WorkloadClass::data_pipeline(), 0.3),
            (WorkloadClass::storage_server(), 0.3),
            (WorkloadClass::database(), 0.25),
            (WorkloadClass::crypto_frontend(), 0.15),
        ]
    }

    /// Total consequential operations per core-hour.
    pub fn total_ops_per_hour(&self) -> f64 {
        self.ops_per_hour.iter().sum()
    }

    /// The same class with a traffic shape applied.
    pub fn with_traffic(mut self, traffic: TrafficShape) -> WorkloadClass {
        self.traffic = traffic;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_have_distinct_shapes() {
        let storage = WorkloadClass::storage_server();
        let db = WorkloadClass::database();
        // Storage is copy-heavy; database is atomics-heavy.
        assert!(
            storage.ops_per_hour[FunctionalUnit::VectorPipe.index()]
                > db.ops_per_hour[FunctionalUnit::VectorPipe.index()]
        );
        assert!(
            db.ops_per_hour[FunctionalUnit::Atomics.index()]
                > storage.ops_per_hour[FunctionalUnit::Atomics.index()]
        );
    }

    #[test]
    fn mix_weights_sum_to_one() {
        let total: f64 = WorkloadClass::default_mix().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flat_shape_is_exactly_identity() {
        let flat = TrafficShape::default();
        assert!(flat.is_flat());
        for hour in [0.0, 1.5, 73.0, 26_280.0] {
            let i = flat.intensity_at(hour);
            assert_eq!(i.to_bits(), 1.0f64.to_bits(), "hour {hour}");
        }
    }

    #[test]
    fn diurnal_shape_oscillates_and_stays_positive() {
        let shape = TrafficShape::diurnal(0.6, 6.0);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for h in 0..48 {
            let i = shape.intensity_at(h as f64);
            assert!(i > 0.0, "intensity must stay strictly positive");
            lo = lo.min(i);
            hi = hi.max(i);
        }
        assert!(hi > 1.3 && lo < 0.7, "swing must be visible: [{lo}, {hi}]");
        // Periodic: one full day apart is the same intensity.
        let a = shape.intensity_at(5.0);
        let b = shape.intensity_at(29.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn legacy_workload_json_without_traffic_parses_flat() {
        let mut wl = WorkloadClass::database();
        wl.traffic = TrafficShape::diurnal(0.5, 0.0);
        let mut v = wl.to_value();
        if let serde::Value::Object(entries) = &mut v {
            entries.retain(|(k, _)| k != "traffic");
        } else {
            panic!("workload serializes to an object");
        }
        let back = WorkloadClass::from_value(&v).expect("legacy JSON parses");
        assert!(back.traffic.is_flat());
        assert_eq!(back.ops_per_hour, wl.ops_per_hour);
    }

    #[test]
    fn coverage_and_report_rates_are_probabilities() {
        for (w, _) in WorkloadClass::default_mix() {
            assert!((0.0..=1.0).contains(&w.app_check_coverage), "{}", w.name);
            assert!((0.0..=1.0).contains(&w.user_report_rate), "{}", w.name);
            assert!((0.0..=1.0).contains(&w.replicated_fraction), "{}", w.name);
            assert!(w.total_ops_per_hour() > 0.0);
            assert!(!w.operands.is_empty());
        }
    }
}
