//! Workload classes: what the fleet's machines actually run.
//!
//! §2: corruption rates are "highly dependent on workload"; §1's
//! motivating incident was a library change that shifted the instruction
//! mix onto a defective unit. A [`WorkloadClass`] is an instruction-mix
//! vector — *consequential* operations per core-hour per functional unit —
//! plus the fraction of corruptions the application's own checks catch
//! (§6: "many of our applications already checked for SDCs").

use mercurial_fault::FunctionalUnit;
use serde::{Deserialize, Serialize};

/// One workload class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadClass {
    /// Name, e.g. "storage-server".
    pub name: String,
    /// Consequential operations per core-hour per unit (operations whose
    /// corruption would change observable application behavior; the vast
    /// majority of retired instructions are not consequential, which is
    /// why CEE rates are survivable at all).
    pub ops_per_hour: [f64; 9],
    /// Fraction of silent corruptions the application's own end-to-end
    /// checks detect promptly (checksummed write paths, etc.).
    pub app_check_coverage: f64,
    /// Fraction of detected application-level corruptions that escalate to
    /// a human-filed suspect-core report.
    pub user_report_rate: f64,
    /// Fraction of consequential work whose update logic runs at several
    /// replicas in parallel (§6: dual computations detect CEEs as replica
    /// divergence, independent of checksums).
    pub replicated_fraction: f64,
    /// Representative operand values (drives data-pattern-gated defects).
    pub operands: Vec<u64>,
}

impl WorkloadClass {
    fn ops(pairs: &[(FunctionalUnit, f64)]) -> [f64; 9] {
        let mut v = [0.0f64; 9];
        for &(u, r) in pairs {
            v[u.index()] = r;
        }
        v
    }

    /// A data-analysis pipeline: heavy scalar/vector compute, some crypto,
    /// strong end-to-end checking (the §1 incident's setting).
    pub fn data_pipeline() -> WorkloadClass {
        WorkloadClass {
            name: "data-pipeline".to_string(),
            ops_per_hour: WorkloadClass::ops(&[
                (FunctionalUnit::ScalarAlu, 4e5),
                (FunctionalUnit::MulDiv, 8e4),
                (FunctionalUnit::VectorPipe, 6e5),
                (FunctionalUnit::Fma, 3e5),
                (FunctionalUnit::LoadStore, 5e5),
                (FunctionalUnit::Atomics, 2e3),
                (FunctionalUnit::CryptoUnit, 4e4),
                (FunctionalUnit::BranchUnit, 3e5),
                (FunctionalUnit::AddressGen, 5e5),
            ]),
            app_check_coverage: 0.5,
            user_report_rate: 0.15,
            replicated_fraction: 0.15,
            operands: vec![
                0xdead_beef_cafe_f00d,
                0x0102_0408_1020_4080,
                u64::MAX,
                0x00ff_00ff_00ff_00ff,
            ],
        }
    }

    /// A storage server: copy- and CRC-dominated, checksummed write path
    /// (the Colossus analogue from §6).
    pub fn storage_server() -> WorkloadClass {
        WorkloadClass {
            name: "storage-server".to_string(),
            ops_per_hour: WorkloadClass::ops(&[
                (FunctionalUnit::ScalarAlu, 5e5),
                (FunctionalUnit::MulDiv, 1e4),
                (FunctionalUnit::VectorPipe, 9e5),
                (FunctionalUnit::Fma, 1e3),
                (FunctionalUnit::LoadStore, 9e5),
                (FunctionalUnit::Atomics, 5e4),
                (FunctionalUnit::CryptoUnit, 1e5),
                (FunctionalUnit::BranchUnit, 2e5),
                (FunctionalUnit::AddressGen, 9e5),
            ]),
            app_check_coverage: 0.8,
            user_report_rate: 0.1,
            replicated_fraction: 0.25,
            operands: vec![0xaaaa_aaaa_aaaa_aaaa, 0x5555_5555_5555_5555, 0, u64::MAX],
        }
    }

    /// A database: index-heavy scalar work, locking, moderate checking
    /// (the Spanner analogue; §2's "database index corruption" case).
    pub fn database() -> WorkloadClass {
        WorkloadClass {
            name: "database".to_string(),
            ops_per_hour: WorkloadClass::ops(&[
                (FunctionalUnit::ScalarAlu, 8e5),
                (FunctionalUnit::MulDiv, 5e4),
                (FunctionalUnit::VectorPipe, 1e5),
                (FunctionalUnit::Fma, 5e3),
                (FunctionalUnit::LoadStore, 7e5),
                (FunctionalUnit::Atomics, 3e5),
                (FunctionalUnit::CryptoUnit, 2e4),
                (FunctionalUnit::BranchUnit, 6e5),
                (FunctionalUnit::AddressGen, 7e5),
            ]),
            app_check_coverage: 0.6,
            user_report_rate: 0.2,
            replicated_fraction: 0.5,
            operands: vec![0x0000_0000_ffff_ffff, 0x1111_2222_3333_4444, 7, 0],
        }
    }

    /// A crypto-heavy frontend (TLS-style): AES-round dominated.
    pub fn crypto_frontend() -> WorkloadClass {
        WorkloadClass {
            name: "crypto-frontend".to_string(),
            ops_per_hour: WorkloadClass::ops(&[
                (FunctionalUnit::ScalarAlu, 3e5),
                (FunctionalUnit::MulDiv, 2e4),
                (FunctionalUnit::VectorPipe, 2e5),
                (FunctionalUnit::Fma, 1e3),
                (FunctionalUnit::LoadStore, 3e5),
                (FunctionalUnit::Atomics, 1e4),
                (FunctionalUnit::CryptoUnit, 8e5),
                (FunctionalUnit::BranchUnit, 2e5),
                (FunctionalUnit::AddressGen, 3e5),
            ]),
            app_check_coverage: 0.4,
            user_report_rate: 0.25,
            replicated_fraction: 0.1,
            operands: vec![0x243f_6a88_85a3_08d3, 0x1319_8a2e_0370_7344, u64::MAX, 1],
        }
    }

    /// The default four-class mix with assignment weights.
    pub fn default_mix() -> Vec<(WorkloadClass, f64)> {
        vec![
            (WorkloadClass::data_pipeline(), 0.3),
            (WorkloadClass::storage_server(), 0.3),
            (WorkloadClass::database(), 0.25),
            (WorkloadClass::crypto_frontend(), 0.15),
        ]
    }

    /// Total consequential operations per core-hour.
    pub fn total_ops_per_hour(&self) -> f64 {
        self.ops_per_hour.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_have_distinct_shapes() {
        let storage = WorkloadClass::storage_server();
        let db = WorkloadClass::database();
        // Storage is copy-heavy; database is atomics-heavy.
        assert!(
            storage.ops_per_hour[FunctionalUnit::VectorPipe.index()]
                > db.ops_per_hour[FunctionalUnit::VectorPipe.index()]
        );
        assert!(
            db.ops_per_hour[FunctionalUnit::Atomics.index()]
                > storage.ops_per_hour[FunctionalUnit::Atomics.index()]
        );
    }

    #[test]
    fn mix_weights_sum_to_one() {
        let total: f64 = WorkloadClass::default_mix().iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_and_report_rates_are_probabilities() {
        for (w, _) in WorkloadClass::default_mix() {
            assert!((0.0..=1.0).contains(&w.app_check_coverage), "{}", w.name);
            assert!((0.0..=1.0).contains(&w.user_report_rate), "{}", w.name);
            assert!((0.0..=1.0).contains(&w.replicated_fraction), "{}", w.name);
            assert!(w.total_ops_per_hour() > 0.0);
            assert!(!w.operands.is_empty());
        }
    }
}
