//! A minimal discrete-event engine: a time-ordered queue of typed events.
//!
//! Simulated time is `f64` hours from the start of the observation window.
//! Ties are broken by insertion order, so the simulation stays
//! deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    at_hours: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Entry<T>) -> bool {
        self.at_hours == other.at_hours && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Entry<T>) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at_hours
            .partial_cmp(&self.at_hours)
            .expect("event times are finite")
            .then(other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Entry<T>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of timestamped events.
///
/// # Examples
///
/// ```
/// use mercurial_fleet::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.pop(), Some((5.0, "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `at_hours`.
    ///
    /// # Panics
    ///
    /// Panics if `at_hours` is not finite.
    pub fn schedule(&mut self, at_hours: f64, payload: T) {
        assert!(at_hours.is_finite(), "event time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at_hours,
            seq,
            payload,
        });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.at_hours, e.payload))
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.at_hours)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> EventQueue<T> {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(7.5, ());
        assert_eq!(q.peek_time(), Some(7.5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_panics() {
        EventQueue::new().schedule(f64::NAN, ());
    }
}
