//! A minimal discrete-event engine: a time-ordered queue of typed events.
//!
//! Simulated time is `f64` hours from the start of the observation window.
//! Same-timestamp ties are broken by an explicit *kind rank* first (see
//! [`EventKind`]: restore before screening-due before onset, per the DES
//! ordering contract) and by insertion order last, so the simulation is
//! deterministic regardless of the order timers happened to be armed in.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The canonical event kinds of the fleet simulation, in tie-break order.
///
/// When several events share a timestamp they are delivered in this
/// order: a restored core re-enters service before the screening pass
/// that would otherwise skip it, screens run before deep-check verdicts
/// land, and infrastructure transitions (deploys) precede defect
/// transitions (activation onsets). [`EventKind::rank`] is the tie key
/// [`EventQueue::schedule_ranked`] takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A quarantined-then-exonerated core returns to service.
    Restore,
    /// A screening campaign (burn-in / offline / online) is due.
    ScreeningDue,
    /// A deep-check (human triage) verdict lands.
    DeepCheck,
    /// A machine enters service (sparse sim-clock wake).
    MachineDeploy,
    /// A defect's activation window opens or closes (aging onset).
    ActivationEdge,
}

impl EventKind {
    /// The tie-break rank: lower ranks pop first at equal timestamps.
    pub fn rank(self) -> u8 {
        match self {
            EventKind::Restore => 0,
            EventKind::ScreeningDue => 1,
            EventKind::DeepCheck => 2,
            EventKind::MachineDeploy => 3,
            EventKind::ActivationEdge => 4,
        }
    }
}

#[derive(Debug, Clone)]
struct Entry<T> {
    at_hours: f64,
    rank: u8,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Entry<T>) -> bool {
        self.at_hours == other.at_hours && self.rank == other.rank && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Entry<T>) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, and
        // within a timestamp lowest-rank-first, then insertion order.
        other
            .at_hours
            .partial_cmp(&self.at_hours)
            .expect("event times are finite")
            .then(other.rank.cmp(&self.rank))
            .then(other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Entry<T>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of timestamped events.
///
/// # Examples
///
/// ```
/// use mercurial_fleet::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.pop(), Some((5.0, "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `at_hours` with the lowest (first-out) rank.
    ///
    /// # Panics
    ///
    /// Panics if `at_hours` is not finite.
    pub fn schedule(&mut self, at_hours: f64, payload: T) {
        self.schedule_ranked(at_hours, 0, payload);
    }

    /// Schedules `payload` at `at_hours` with an explicit same-timestamp
    /// tie rank (lower pops first; see [`EventKind::rank`]). Events with
    /// equal `(at_hours, rank)` pop in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `at_hours` is not finite.
    pub fn schedule_ranked(&mut self, at_hours: f64, rank: u8, payload: T) {
        assert!(at_hours.is_finite(), "event time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at_hours,
            rank,
            seq,
            payload,
        });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.at_hours, e.payload))
    }

    /// Removes and returns the earliest event only if it is due at or
    /// before `until_hours`.
    pub fn pop_due(&mut self, until_hours: f64) -> Option<(f64, T)> {
        if self.peek_time()? <= until_hours {
            self.pop()
        } else {
            None
        }
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.at_hours)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> EventQueue<T> {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 'c');
        q.schedule(1.0, 'a');
        q.schedule(2.0, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        q.schedule(1.0, "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn ties_break_by_rank_before_insertion_order() {
        // Scheduling order is deliberately adversarial: the highest rank
        // is armed first. Rank must win over seq.
        let mut q = EventQueue::new();
        q.schedule_ranked(5.0, EventKind::ActivationEdge.rank(), "onset");
        q.schedule_ranked(5.0, EventKind::MachineDeploy.rank(), "deploy");
        q.schedule_ranked(5.0, EventKind::ScreeningDue.rank(), "screen");
        q.schedule_ranked(5.0, EventKind::Restore.rank(), "restore");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["restore", "screen", "deploy", "onset"]);
    }

    #[test]
    fn rank_only_matters_at_equal_times() {
        let mut q = EventQueue::new();
        q.schedule_ranked(2.0, EventKind::Restore.rank(), "late-restore");
        q.schedule_ranked(1.0, EventKind::ActivationEdge.rank(), "early-onset");
        assert_eq!(q.pop().unwrap().1, "early-onset");
        assert_eq!(q.pop().unwrap().1, "late-restore");
    }

    #[test]
    fn kind_ranks_follow_the_des_contract() {
        // Restore before screening-due before onset (ISSUE 6 / DES spec);
        // deploys precede activation edges.
        assert!(EventKind::Restore.rank() < EventKind::ScreeningDue.rank());
        assert!(EventKind::ScreeningDue.rank() < EventKind::DeepCheck.rank());
        assert!(EventKind::DeepCheck.rank() < EventKind::MachineDeploy.rank());
        assert!(EventKind::MachineDeploy.rank() < EventKind::ActivationEdge.rank());
    }

    #[test]
    fn pop_due_respects_the_cutoff() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "due");
        q.schedule(10.0, "future");
        assert_eq!(q.pop_due(5.0), Some((1.0, "due")));
        assert_eq!(q.pop_due(5.0), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(7.5, ());
        assert_eq!(q.peek_time(), Some(7.5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_panics() {
        EventQueue::new().schedule(f64::NAN, ());
    }
}
