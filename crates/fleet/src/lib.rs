//! # mercurial-fleet
//!
//! A discrete-event fleet simulator: the *epidemiology* substrate for
//! *Cores that don't count*. The paper's fleet-level observations are
//! statistical — "a few mercurial cores per several thousand machines"
//! (§1), rates "not uniform across CPU products" (§2), defects that
//! "manifest long after initial installation" (§2) — and the detection and
//! isolation machinery of §6 operates on *signal streams* (crashes,
//! machine checks, checksum mismatches, user reports), not on silicon.
//!
//! This crate produces those signal streams from a configurable simulated
//! fleet:
//!
//! * [`product`] — a CPU-product catalog with per-product mercurial-core
//!   incidence and DVFS curves;
//! * [`topology`] — machines × sockets × cores, deployed in cohorts over
//!   time;
//! * [`population`] — ground-truth seeding of mercurial cores (sampled
//!   from the `mercurial-fault` archetype library), plus the *fault
//!   oracle* interface screeners use to run analytic tests against a core;
//! * [`workload`] — workload classes with per-unit operation mixes and
//!   end-to-end check coverage;
//! * [`signals`] — the signal taxonomy and log;
//! * [`sim`] — the driver that walks simulated time and emits signals,
//!   including background noise uncorrelated with CEEs (software is never
//!   bug-free, which is precisely what makes triage hard — §6 reports that
//!   only about half of human-identified suspects are real).
//! * [`time`] — a small event-queue engine used by the driver.
#![warn(missing_docs)]

pub mod par;
pub mod population;
pub mod product;
pub mod signals;
pub mod sim;
pub mod time;
pub mod topology;
pub mod workload;

pub use population::{MercurialCore, Population};
pub use product::CpuProduct;
pub use signals::{Signal, SignalKind, SignalLog};
pub use sim::{ClockStats, FleetSim, SimConfig, SimEngine, SimState, SimSummary};
pub use time::{EventKind, EventQueue};
pub use topology::{FleetConfig, FleetTopology, MachineInfo};
pub use workload::{TrafficShape, WorkloadClass};
