//! The fleet driver: walks simulated time and emits the signal stream.
//!
//! Per epoch, for every *deployed mercurial core* (healthy cores generate
//! nothing but background noise, so the loop touches only the rare
//! defective ones), the driver:
//!
//! 1. computes per-unit corruption rates from the core's profile under its
//!    machine's workload operands and age (latent defects contribute zero
//!    before onset — §2's "manifest long after initial installation");
//! 2. draws the epoch's corruption count (Poisson);
//! 3. classifies each corruption into the §2 symptom taxonomy given the
//!    afflicted unit and the workload's check coverage, emitting signals
//!    for the observable ones;
//! 4. escalates some detected corruptions into human suspect reports.
//!
//! On top of that it layers background noise — crashes and mistaken user
//! reports with no CEE behind them — because production triage has to work
//! against exactly that haystack (§6: only ≈half of human-identified
//! suspects turn out to be real).

use crate::population::Population;
use crate::signals::{Signal, SignalKind, SignalLog};
use crate::time::{EventKind, EventQueue};
use crate::topology::FleetTopology;
use crate::workload::WorkloadClass;
use mercurial_fault::{CoreUid, CounterRng, FunctionalUnit, SymptomClass};
use mercurial_mitigation::redundancy::CostMeter;
use mercurial_mitigation::MitigationPolicy;
use mercurial_trace::Recorder;
use serde::{Deserialize, Serialize};

/// Which core-iteration strategy the epoch loop uses.
///
/// Both engines draw from the same `(seed, stream, counter)` random
/// streams and are **bit-for-bit identical** in every output (signal log,
/// summary, trace); the sparse engine merely skips work the dense engine
/// provably would not do. Dense is kept as the reference implementation
/// the parity pins compare against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SimEngine {
    /// Visit every mercurial core every epoch (the reference loop).
    Dense,
    /// Event-driven: an [`EventQueue`] clock wakes cores at their deploy
    /// and activation-onset edges; epochs only visit cores whose rates
    /// can be non-zero. Dormant cores cost zero between events.
    #[default]
    Sparse,
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Observation window, months (730 h each).
    pub months: u32,
    /// Epoch length in hours (signal batching granularity).
    pub epoch_hours: f64,
    /// Background (non-CEE) crash rate per machine-hour.
    pub noise_crash_rate: f64,
    /// Background (non-CEE) user-report rate per machine-hour — mistaken
    /// accusations from ordinary debugging.
    pub noise_report_rate: f64,
    /// Cap on signals emitted per core per epoch (report deduplication).
    pub per_core_epoch_cap: u32,
    /// Probability that a detected corruption's machine-check path fires
    /// (loud hardware) rather than a software-visible symptom.
    pub machine_check_share: f64,
    /// Worker threads for the epoch loop: `0` = one per available CPU,
    /// `1` = the serial legacy path. Output is bit-for-bit identical for
    /// every value (see [`crate::par`]).
    pub parallelism: usize,
    /// Core-iteration strategy; defaults to [`SimEngine::Sparse`]. Both
    /// values produce identical output.
    #[serde(default)]
    pub engine: SimEngine,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            months: 36,
            epoch_hours: 73.0, // a tenth of a month
            noise_crash_rate: 2e-5,
            noise_report_rate: 4e-7,
            per_core_epoch_cap: 25,
            machine_check_share: 0.08,
            parallelism: 0,
            engine: SimEngine::default(),
        }
    }
}

/// Aggregate outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimSummary {
    /// Corruption events drawn (before symptom classification).
    pub corruptions: u64,
    /// §2 symptom tallies, indexed by [`SymptomClass::risk_rank`].
    pub symptom_counts: [u64; 4],
    /// Signals emitted (observable events, capped).
    pub signals_emitted: u64,
    /// Background-noise signals emitted.
    pub noise_signals: u64,
    /// Mercurial cores that produced at least one corruption.
    pub active_mercurial_cores: u64,
}

/// Per-workload-class accounting, kept cumulatively per class in
/// [`SimState`] (snapshot before an epoch and diff after for per-epoch
/// deltas). All fields are plain integer sums, so merging epoch shards
/// in any grouping yields the same totals — the same contract as
/// [`SimSummary::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassTally {
    /// Corruption events drawn on cores running this class.
    pub corrupt_ops: u64,
    /// Corruptions the application's own machinery caught (end-to-end
    /// checksums and replica divergence — the class's built-in defenses,
    /// before any mitigation policy).
    pub app_caught: u64,
    /// Otherwise-silent corruptions the class's [`MitigationPolicy`]
    /// checker caught.
    pub mitigation_caught: u64,
    /// Human suspect reports escalated from this class's detections.
    pub user_reports: u64,
    /// Consequential operations executed under an active (non-`None`)
    /// mitigation policy — the denominator of the overhead fraction.
    pub mitigated_ops: u64,
    /// Metered mitigation work: redundant executions and check/compare
    /// steps (`(executions + comparisons) / mitigated_ops` is the
    /// policy's overhead fraction).
    pub cost: CostMeter,
}

impl ClassTally {
    /// Adds another tally's counters into this one.
    pub fn merge(&mut self, other: &ClassTally) {
        self.corrupt_ops += other.corrupt_ops;
        self.app_caught += other.app_caught;
        self.mitigation_caught += other.mitigation_caught;
        self.user_reports += other.user_reports;
        self.mitigated_ops += other.mitigated_ops;
        self.cost.executions += other.cost.executions;
        self.cost.comparisons += other.cost.comparisons;
        self.cost.retries += other.cost.retries;
    }

    /// This tally minus an earlier snapshot of itself (per-epoch delta).
    pub fn delta_since(&self, earlier: &ClassTally) -> ClassTally {
        ClassTally {
            corrupt_ops: self.corrupt_ops - earlier.corrupt_ops,
            app_caught: self.app_caught - earlier.app_caught,
            mitigation_caught: self.mitigation_caught - earlier.mitigation_caught,
            user_reports: self.user_reports - earlier.user_reports,
            mitigated_ops: self.mitigated_ops - earlier.mitigated_ops,
            cost: CostMeter {
                executions: self.cost.executions - earlier.cost.executions,
                comparisons: self.cost.comparisons - earlier.cost.comparisons,
                retries: self.cost.retries - earlier.cost.retries,
            },
        }
    }

    /// Total metered mitigation work (extra executions plus checks).
    pub fn overhead_ops(&self) -> u64 {
        self.cost.executions + self.cost.comparisons + self.cost.retries
    }
}

impl SimSummary {
    /// The count for one symptom class.
    pub fn symptom_count(&self, class: SymptomClass) -> u64 {
        self.symptom_counts[class.risk_rank() as usize]
    }

    /// Adds another summary's counters into this one. All fields are
    /// plain sums, so merging epoch shards in any grouping yields the
    /// same totals.
    pub fn merge(&mut self, other: &SimSummary) {
        self.corruptions += other.corruptions;
        for (mine, theirs) in self.symptom_counts.iter_mut().zip(other.symptom_counts) {
            *mine += theirs;
        }
        self.signals_emitted += other.signals_emitted;
        self.noise_signals += other.noise_signals;
        self.active_mercurial_cores += other.active_mercurial_cores;
    }
}

/// Resumable cursor for the epoch-stepping API ([`FleetSim::begin`] /
/// [`FleetSim::step_epochs`]).
///
/// Holds everything the simulator mutates across epochs: the epoch
/// cursor, the list of ground-truth mercurial cores, the *active-core
/// mask* (cores a closed-loop policy has pulled from service stop
/// producing corruption and signals), and the "ever corrupted" tracker
/// behind [`SimSummary::active_mercurial_cores`]. The mask only changes
/// through [`SimState::set_active`], i.e. between epochs, so every epoch
/// sees one frozen mask and the determinism contract (draws as pure
/// functions of `(seed, stream, counter)`) is unaffected.
#[derive(Debug, Clone)]
pub struct SimState {
    /// Next epoch to simulate.
    next_epoch: u32,
    /// Total epochs in the observation window.
    epochs: u32,
    /// Epoch length, copied from the config for hour arithmetic.
    epoch_hours: f64,
    /// Ground-truth mercurial cores, sorted by [`CoreUid`].
    mercurial: Vec<CoreUid>,
    /// In-service mask, indexed like `mercurial`.
    active: Vec<bool>,
    /// Whether each mercurial core has produced at least one corruption.
    core_was_active: Vec<bool>,
    /// Sparse-engine liveness, indexed like `mercurial`: whether the
    /// core's effective rates can currently be non-zero. Dormant cores
    /// (`false`) provably draw nothing and emit nothing, so the sparse
    /// epoch loop skips them (see [`FleetSim::advance_clock`]).
    live: Vec<bool>,
    /// The sparse engine's event clock. Payloads are indices into
    /// `mercurial`; events fire at machine-deploy and activation-onset
    /// edges and re-evaluate liveness.
    wake: EventQueue<u32>,
    /// Events popped off the clock so far.
    events_processed: u64,
    /// Sum over epochs of the live-set size — the sparse engine's total
    /// per-core epoch work (dense would be `mercurial.len()` × epochs).
    live_core_epochs: u64,
    /// When `Some((lo, hi))`, this state simulates only the machines in
    /// `[lo, hi)` (see [`FleetSim::begin_shard`]): the mercurial list is
    /// filtered to owned machines and the background-noise layer keeps
    /// only signals attributed to owned machines while replaying the
    /// *global* random stream, so a partition of shards unions to the
    /// full-fleet run bit for bit.
    shard: Option<(u32, u32)>,
    /// Per-class mitigation policy, indexed like the simulator's
    /// workload list. All `None` by default; the closed loop switches
    /// them between epochs via [`SimState::set_policy`].
    policies: Vec<MitigationPolicy>,
    /// Cumulative per-class accounting (corrupt-ops, app/mitigation
    /// catches, user reports, mitigation cost), indexed like the
    /// workload list. Owned-shard scope under [`FleetSim::begin_shard`].
    class_tallies: Vec<ClassTally>,
    /// Deployed-core capacity per class once rollout completes (owned
    /// machines only): Σ sockets × cores over owned machines of the
    /// class. The mitigation-overhead meter uses this instead of an
    /// O(machines) scan outside the rollout window.
    class_cores: Vec<u64>,
}

/// Event-clock accounting, for asserting "zero per-epoch work on healthy
/// state" (all zeros while the dense engine runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClockStats {
    /// Events popped off the wake clock so far.
    pub events_processed: u64,
    /// Sum over simulated epochs of the live-core set size.
    pub live_core_epochs: u64,
    /// Events still pending on the clock.
    pub pending_events: u64,
}

impl SimState {
    /// The next epoch [`FleetSim::step_epochs`] will simulate.
    pub fn next_epoch(&self) -> u32 {
        self.next_epoch
    }

    /// Total epochs in the observation window.
    pub fn total_epochs(&self) -> u32 {
        self.epochs
    }

    /// Whether the window has been fully simulated.
    pub fn is_done(&self) -> bool {
        self.next_epoch >= self.epochs
    }

    /// The simulation hour the cursor stands at (start of `next_epoch`).
    pub fn hour(&self) -> f64 {
        self.next_epoch as f64 * self.epoch_hours
    }

    /// Marks a mercurial core in or out of service. Returns `false` when
    /// the core is not in the ground-truth mercurial set (masking a
    /// healthy core is a no-op: it never produced corruption anyway).
    pub fn set_active(&mut self, core: CoreUid, active: bool) -> bool {
        match self.mercurial.binary_search(&core) {
            Ok(i) => {
                self.active[i] = active;
                true
            }
            Err(_) => false,
        }
    }

    /// Whether a ground-truth mercurial core is currently in service.
    /// Cores outside the mercurial set are vacuously active.
    pub fn is_active(&self, core: CoreUid) -> bool {
        match self.mercurial.binary_search(&core) {
            Ok(i) => self.active[i],
            Err(_) => true,
        }
    }

    /// Mercurial cores currently in service and deployed at `hour`.
    pub fn active_deployed_mercurial(&self, topo: &FleetTopology, hour: f64) -> u64 {
        self.mercurial
            .iter()
            .zip(&self.active)
            .filter(|&(uid, &on)| on && topo.is_deployed(uid.machine, hour))
            .count() as u64
    }

    /// The machine range this state owns, when sharded via
    /// [`FleetSim::begin_shard`].
    pub fn shard_range(&self) -> Option<(u32, u32)> {
        self.shard
    }

    /// Cumulative per-class tallies, indexed like the simulator's
    /// workload list. Snapshot before stepping and
    /// [`ClassTally::delta_since`] after for per-epoch deltas.
    pub fn class_tallies(&self) -> &[ClassTally] {
        &self.class_tallies
    }

    /// The mitigation policy currently applied to a workload class.
    pub fn policy(&self, class: usize) -> MitigationPolicy {
        self.policies[class]
    }

    /// Every class's current policy, indexed like the workload list.
    pub fn policies(&self) -> &[MitigationPolicy] {
        &self.policies
    }

    /// Switches one class's mitigation policy. Like
    /// [`SimState::set_active`], this only happens between epochs, so
    /// every epoch sees one frozen policy vector and the determinism
    /// contract is unaffected.
    pub fn set_policy(&mut self, class: usize, policy: MitigationPolicy) {
        self.policies[class] = policy;
    }

    /// Event-clock accounting (all zeros under [`SimEngine::Dense`]).
    pub fn clock_stats(&self) -> ClockStats {
        ClockStats {
            events_processed: self.events_processed,
            live_core_epochs: self.live_core_epochs,
            pending_events: self.wake.len() as u64,
        }
    }
}

/// The fleet simulator.
pub struct FleetSim {
    topo: FleetTopology,
    pop: Population,
    config: SimConfig,
    workloads: Vec<(WorkloadClass, f64)>,
    /// Machine → index into `workloads`, resolved once at construction
    /// (the weighted draw is per-machine invariant; resolving it in the
    /// epoch loop re-summed the weight vector for every core×epoch).
    workload_ix: Vec<usize>,
    /// `0..machines` — the deployed set once rollout has completed. The
    /// noise layer borrows this after `rollout_end_hour` instead of
    /// rebuilding an O(machines) vector every epoch.
    all_machines: Vec<u32>,
    /// Hour at (and after) which every machine is in service.
    rollout_end_hour: f64,
    /// End of the observation window in hours; lagged user-report
    /// escalations are clamped here so no signal is ever dated outside
    /// the last epoch.
    horizon_hours: f64,
}

impl FleetSim {
    /// Builds a simulator over a topology and ground-truth population with
    /// the default workload mix.
    pub fn new(topo: FleetTopology, pop: Population, config: SimConfig) -> FleetSim {
        let workloads = WorkloadClass::default_mix();
        let workload_ix = Self::assign_workloads(&workloads, &topo, &pop);
        let all_machines: Vec<u32> = (0..topo.machines().len() as u32).collect();
        let rollout_end_hour = topo.rollout_end_hour();
        let horizon_hours =
            (config.months as f64 * 730.0 / config.epoch_hours).ceil() * config.epoch_hours;
        FleetSim {
            topo,
            pop,
            config,
            workloads,
            workload_ix,
            all_machines,
            rollout_end_hour,
            horizon_hours,
        }
    }

    /// Replaces the workload mix.
    pub fn with_workloads(mut self, workloads: Vec<(WorkloadClass, f64)>) -> FleetSim {
        assert!(!workloads.is_empty(), "need at least one workload class");
        self.workload_ix = Self::assign_workloads(&workloads, &self.topo, &self.pop);
        self.workloads = workloads;
        self
    }

    /// Resolves every machine's workload class up front (deterministic
    /// weighted draw, same stream as always: `(seed, machine, 0x776f)`).
    fn assign_workloads(
        workloads: &[(WorkloadClass, f64)],
        topo: &FleetTopology,
        pop: &Population,
    ) -> Vec<usize> {
        let total: f64 = workloads.iter().map(|(_, w)| w).sum();
        (0..topo.machines().len() as u32)
            .map(|machine| {
                let mut pick = CounterRng::from_parts(pop.seed(), machine as u64, 0x776f, 0)
                    .uniform_at(0)
                    * total;
                for (i, (_, w)) in workloads.iter().enumerate() {
                    if pick < *w {
                        return i;
                    }
                    pick -= w;
                }
                workloads.len() - 1
            })
            .collect()
    }

    /// The topology.
    pub fn topology(&self) -> &FleetTopology {
        &self.topo
    }

    /// The ground-truth population.
    pub fn population(&self) -> &Population {
        &self.pop
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The workload class a machine runs (resolved at construction).
    pub fn workload_of(&self, machine: u32) -> &WorkloadClass {
        &self.workloads[self.workload_ix[machine as usize]].0
    }

    /// Index into [`FleetSim::class_names`] of a machine's class.
    pub fn class_of(&self, machine: u32) -> usize {
        self.workload_ix[machine as usize]
    }

    /// Number of workload classes in the mix.
    pub fn class_count(&self) -> usize {
        self.workloads.len()
    }

    /// The class names, in workload-list (tally/policy index) order.
    pub fn class_names(&self) -> Vec<String> {
        self.workloads.iter().map(|(w, _)| w.name.clone()).collect()
    }

    /// One workload class by tally/policy index.
    pub fn class(&self, ix: usize) -> &WorkloadClass {
        &self.workloads[ix].0
    }

    /// Total epochs in the observation window.
    pub fn epochs(&self) -> u32 {
        (self.config.months as f64 * 730.0 / self.config.epoch_hours).ceil() as u32
    }

    /// Starts a resumable simulation: every mercurial core in service,
    /// cursor at epoch 0. Step it with [`FleetSim::step_epochs`].
    ///
    /// The sparse event clock is armed here with one machine-deploy wake
    /// per mercurial core; liveness is resolved lazily as epochs reach
    /// those events (the dense engine simply never consults the clock).
    pub fn begin(&self) -> SimState {
        self.begin_with(None)
    }

    /// Starts a *shard* of the simulation owning only machines in
    /// `[lo, hi)`: the mercurial set is filtered to owned machines, and
    /// the background-noise layer replays the full-fleet random stream
    /// but keeps only signals landing on owned machines. Stepping a
    /// partition of shards over the same window and merging each epoch's
    /// logs (in any per-epoch order) and summing the summaries reproduces
    /// the unsharded run bit for bit — the distribution contract the
    /// `mercurial-serve` workers rely on.
    pub fn begin_shard(&self, lo: u32, hi: u32) -> SimState {
        assert!(lo <= hi, "shard range must be ordered: [{lo}, {hi})");
        self.begin_with(Some((lo, hi)))
    }

    fn begin_with(&self, shard: Option<(u32, u32)>) -> SimState {
        let mercurial: Vec<CoreUid> = self
            .pop
            .mercurial_cores()
            .map(|c| c.uid)
            .filter(|uid| shard.is_none_or(|(lo, hi)| uid.machine >= lo && uid.machine < hi))
            .collect();
        debug_assert!(
            mercurial.windows(2).all(|w| w[0] < w[1]),
            "population iterates in sorted CoreUid order"
        );
        let n = mercurial.len();
        let mut wake = EventQueue::new();
        for (i, uid) in mercurial.iter().enumerate() {
            let deploy = self.topo.machines()[uid.machine as usize].deploy_hour;
            wake.schedule_ranked(deploy, EventKind::MachineDeploy.rank(), i as u32);
        }
        let n_classes = self.workloads.len();
        let mut class_cores = vec![0u64; n_classes];
        let (lo, hi) = shard.unwrap_or((0, self.topo.machines().len() as u32));
        let sockets = self.topo.config().sockets_per_machine as u64;
        for m in lo..hi {
            let cores = sockets * self.topo.product_of(m).cores_per_socket as u64;
            class_cores[self.workload_ix[m as usize]] += cores;
        }
        SimState {
            next_epoch: 0,
            epochs: self.epochs(),
            epoch_hours: self.config.epoch_hours,
            mercurial,
            active: vec![true; n],
            core_was_active: vec![false; n],
            live: vec![false; n],
            wake,
            events_processed: 0,
            live_core_epochs: 0,
            shard,
            policies: vec![MitigationPolicy::None; n_classes],
            class_tallies: vec![ClassTally::default(); n_classes],
            class_cores,
        }
    }

    /// Advances the simulation by one epoch, appending that epoch's
    /// signals to `log` (in emission order, unsorted) and accumulating
    /// counters into `summary`. Returns `false` once the window is done.
    pub fn step_epoch(
        &self,
        state: &mut SimState,
        log: &mut SignalLog,
        summary: &mut SimSummary,
    ) -> bool {
        self.step_epochs(state, 1, log, summary) == 1
    }

    /// Advances the simulation by up to `max_epochs` epochs and returns
    /// how many actually ran.
    ///
    /// With `config.parallelism != 1` the batch is sharded across worker
    /// threads under the §4.1 determinism contract: every random draw is
    /// a pure function of `(seed, stream, counter)`, epochs share no
    /// mutable state, the active mask is frozen for the whole batch, and
    /// shards are merged in epoch order — so for any stepping granularity
    /// the concatenated log equals the serial emission order exactly.
    /// `summary.active_mercurial_cores` is refreshed after every step to
    /// the cumulative count so far.
    pub fn step_epochs(
        &self,
        state: &mut SimState,
        max_epochs: u32,
        log: &mut SignalLog,
        summary: &mut SimSummary,
    ) -> u32 {
        self.step_epochs_traced(state, max_epochs, log, summary, &mut Recorder::disabled())
    }

    /// [`FleetSim::step_epoch`] with telemetry recording.
    pub fn step_epoch_traced(
        &self,
        state: &mut SimState,
        log: &mut SignalLog,
        summary: &mut SimSummary,
        rec: &mut Recorder,
    ) -> bool {
        self.step_epochs_traced(state, 1, log, summary, rec) == 1
    }

    /// [`FleetSim::step_epochs`] with telemetry recording.
    ///
    /// Each epoch records into its own shard [`Recorder`] — a `sim.epoch`
    /// span, per-epoch counters/histograms, and a `sim.first_corruption`
    /// instant the first time each mercurial core corrupts — and shards
    /// are absorbed in epoch order, so the trace is identical for any
    /// `parallelism` and any stepping granularity. With a disabled
    /// recorder the serial path is the exact untraced loop.
    pub fn step_epochs_traced(
        &self,
        state: &mut SimState,
        max_epochs: u32,
        log: &mut SignalLog,
        summary: &mut SimSummary,
        rec: &mut Recorder,
    ) -> u32 {
        let batch = (state.epochs - state.next_epoch.min(state.epochs)).min(max_epochs);
        let first = state.next_epoch;
        let epoch_hours = self.config.epoch_hours;
        let sparse = self.config.engine == SimEngine::Sparse;

        // Sparse engine: advance the event clock through every epoch start
        // of the batch up front (liveness depends only on topology ages and
        // defect profiles, never on epoch outcomes, so this is safe to do
        // before the fan-out) and snapshot the live index set at each
        // change point. Epochs between events share one snapshot; healthy
        // stretches cost one heap peek per epoch and nothing per core.
        let mut snapshots: Vec<Vec<u32>> = Vec::new();
        let mut snapshot_of: Vec<usize> = Vec::with_capacity(batch as usize);
        // Estimated batch cost in live-core-epochs (dense: every core,
        // every epoch), used to gate the thread fan-out below: a healthy
        // sparse stretch simulates a handful of cores per epoch, and
        // spawning workers for that costs more than the work itself.
        let mut batch_cost: u64 = batch as u64;
        if sparse {
            for k in 0..batch {
                let hour = (first + k) as f64 * epoch_hours;
                let changed = self.advance_clock(state, hour);
                if changed || snapshots.is_empty() {
                    snapshots.push(
                        state
                            .live
                            .iter()
                            .enumerate()
                            .filter_map(|(i, &l)| l.then_some(i as u32))
                            .collect(),
                    );
                }
                snapshot_of.push(snapshots.len() - 1);
                let live_now = snapshots.last().expect("snapshot pushed above").len() as u64;
                state.live_core_epochs += live_now;
                batch_cost += live_now;
            }
        } else {
            batch_cost += batch as u64 * state.mercurial.len() as u64;
        }

        let shard = state.shard;
        let SimState {
            mercurial,
            active,
            core_was_active,
            policies,
            class_tallies,
            class_cores,
            ..
        } = state;
        let policies: &[MitigationPolicy] = policies;
        let class_cores: &[u64] = class_cores;
        let workers =
            crate::par::resolve_parallelism(self.config.parallelism).min(batch.max(1) as usize);
        let flags = rec.flags();
        let live_of = |epoch: u32| -> Option<&[u32]> {
            sparse.then(|| snapshots[snapshot_of[(epoch - first) as usize]].as_slice())
        };

        // One epoch = one shard. The closure is shared by the serial-traced
        // and parallel paths so they emit bit-identical shards.
        let run_shard = |epoch: u32| {
            let mut shard_log = SignalLog::new();
            let mut shard_summary = SimSummary::default();
            let mut shard_active = vec![false; mercurial.len()];
            let mut shard_classes = vec![ClassTally::default(); policies.len()];
            let mut shard_rec = Recorder::with_flags(flags);
            let hour = epoch as f64 * epoch_hours;
            shard_rec.begin(hour, "sim.epoch");
            self.run_epoch(
                epoch,
                mercurial,
                active,
                live_of(epoch),
                shard,
                policies,
                class_cores,
                &mut shard_log,
                &mut shard_summary,
                &mut shard_active,
                &mut shard_classes,
            );
            shard_rec.counter_add("sim.corruptions", shard_summary.corruptions);
            shard_rec.counter_add("sim.signals_emitted", shard_summary.signals_emitted);
            shard_rec.counter_add("sim.noise_signals", shard_summary.noise_signals);
            // Per-epoch histograms describe the *fleet-wide* epoch; a
            // shard only sees its slice, so the serve aggregator observes
            // the cross-shard sums instead (counters above still sum
            // exactly across shards).
            if shard.is_none() {
                shard_rec.observe("sim.epoch_corruptions", shard_summary.corruptions as f64);
                shard_rec.observe(
                    "sim.epoch_signals",
                    (shard_summary.signals_emitted + shard_summary.noise_signals) as f64,
                );
            }
            shard_rec.end(hour + epoch_hours, "sim.epoch");
            (
                shard_log,
                shard_summary,
                shard_active,
                shard_classes,
                shard_rec,
            )
        };
        // Shard merge, always in epoch order. First-corruption instants are
        // derived here by diffing the shard's activity against the
        // cumulative mask *before* or-ing it in: shards start from a blank
        // mask, so deriving them inside `run_epoch` would re-fire on every
        // later shard.
        type EpochShard = (SignalLog, SimSummary, Vec<bool>, Vec<ClassTally>, Recorder);
        let mut merge_shard = |epoch: u32, shard: EpochShard| {
            let (shard_log, shard_summary, shard_active, shard_classes, shard_rec) = shard;
            if flags.enabled {
                let hour = epoch as f64 * epoch_hours;
                for (i, &hit) in shard_active.iter().enumerate() {
                    if hit && !core_was_active[i] {
                        rec.instant(
                            hour,
                            "sim.first_corruption",
                            Some(mercurial[i].as_u64()),
                            0.0,
                        );
                    }
                }
            }
            rec.absorb(shard_rec);
            log.append(shard_log);
            summary.merge(&shard_summary);
            for (mine, theirs) in class_tallies.iter_mut().zip(&shard_classes) {
                mine.merge(theirs);
            }
            for (mine, theirs) in core_was_active.iter_mut().zip(shard_active) {
                *mine |= theirs;
            }
        };

        if workers <= 1 {
            if flags.enabled {
                for epoch in first..first + batch {
                    let shard = run_shard(epoch);
                    merge_shard(epoch, shard);
                }
            } else {
                // The zero-cost path: the exact untraced serial loop.
                for epoch in first..first + batch {
                    self.run_epoch(
                        epoch,
                        mercurial,
                        active,
                        live_of(epoch),
                        shard,
                        policies,
                        class_cores,
                        log,
                        summary,
                        core_was_active,
                        class_tallies,
                    );
                }
            }
        } else {
            let epoch_ids: Vec<u32> = (first..first + batch).collect();
            let shards = crate::par::map_parallel_costed(
                &epoch_ids,
                self.config.parallelism,
                batch_cost,
                |&epoch| run_shard(epoch),
            );
            for (epoch, shard) in epoch_ids.into_iter().zip(shards) {
                merge_shard(epoch, shard);
            }
        }
        state.next_epoch += batch;
        summary.active_mercurial_cores = core_was_active.iter().filter(|&&a| a).count() as u64;
        batch
    }

    /// Runs the simulation to completion, returning the signal log
    /// (sorted by time) and summary counters.
    ///
    /// Equivalent to stepping a fresh [`SimState`] through the whole
    /// window with the full active mask; see [`FleetSim::step_epochs`]
    /// for the determinism contract.
    pub fn run(&self) -> (SignalLog, SimSummary) {
        let mut state = self.begin();
        let mut log = SignalLog::new();
        let mut summary = SimSummary::default();
        self.step_epochs(&mut state, u32::MAX, &mut log, &mut summary);
        log.sort_by_time();
        (log, summary)
    }

    /// Advances the sparse event clock to `hour` (an epoch start): pops
    /// every due wake and re-evaluates that core's liveness. Returns
    /// whether the live set changed.
    ///
    /// Soundness of the sparse skip: a core is marked dormant only when
    /// every per-unit `rate × ops_per_hour` product is exactly zero at
    /// `hour`. [`FleetSim::epoch_core`] tests `lambda <= 0.0` *before*
    /// touching the RNG and [`poisson`] draws nothing for non-positive
    /// lambda, so the dense engine would consume no randomness and emit
    /// nothing for such a core — skipping it is bit-identical. The rates
    /// are a static per-operand factor times the aging multiplier, and
    /// the only zero-to-non-zero edge of the multiplier is an onset
    /// ([`mercurial_fault::CoreFaultProfile::next_transition_age`]), so a
    /// dormant core sleeps until its next onset, or forever when none
    /// remains.
    fn advance_clock(&self, state: &mut SimState, hour: f64) -> bool {
        let mut changed = false;
        while let Some((_, i)) = state.wake.pop_due(hour) {
            state.events_processed += 1;
            let ix = i as usize;
            let uid = state.mercurial[ix];
            let wl = self.workload_of(uid.machine);
            let age = self.topo.age_hours(uid.machine, hour);
            let point = self.topo.product_of(uid.machine).dvfs.max_point(65);
            let rates = self.pop.unit_rates(uid, &wl.operands, point, age);
            let live = FunctionalUnit::ALL
                .iter()
                .any(|u| rates[u.index()] * wl.ops_per_hour[u.index()] > 0.0);
            if state.live[ix] != live {
                state.live[ix] = live;
                changed = true;
            }
            if !live {
                // Dormant: provably silent until the next onset edge (if
                // any). Wakes are only processed at or past the deploy
                // hour, so `deploy + next_age > hour` and the clock always
                // makes progress.
                if let Some(profile) = self.pop.profile_of(uid) {
                    if let Some(next_age) = profile.next_transition_age(age) {
                        let deploy = self.topo.machines()[uid.machine as usize].deploy_hour;
                        state.wake.schedule_ranked(
                            deploy + next_age,
                            EventKind::ActivationEdge.rank(),
                            i,
                        );
                    }
                }
            }
        }
        changed
    }

    /// Simulates one epoch: every deployed, in-service mercurial core,
    /// then the background noise layer. `mask` and `was_active` are
    /// indexed like `mercurial`; `live` (sparse engine) narrows the scan
    /// to the event clock's live index set, in the same ascending order.
    #[allow(clippy::too_many_arguments)]
    fn run_epoch(
        &self,
        epoch: u32,
        mercurial: &[CoreUid],
        mask: &[bool],
        live: Option<&[u32]>,
        shard: Option<(u32, u32)>,
        policies: &[MitigationPolicy],
        class_cores: &[u64],
        log: &mut SignalLog,
        summary: &mut SimSummary,
        was_active: &mut [bool],
        classes: &mut [ClassTally],
    ) {
        let hour = epoch as f64 * self.config.epoch_hours;
        match live {
            Some(live) => {
                // Sparse: liveness implies the machine is deployed (wakes
                // never fire before the deploy hour), and every skipped
                // core provably draws and emits nothing (see
                // `advance_clock`), so this equals the dense scan below
                // bit for bit.
                for &i in live {
                    let i = i as usize;
                    let uid = mercurial[i];
                    debug_assert!(self.topo.is_deployed(uid.machine, hour));
                    if !mask[i] {
                        continue;
                    }
                    was_active[i] |=
                        self.epoch_core(uid, hour, epoch, policies, classes, log, summary);
                }
            }
            None => {
                for (i, &uid) in mercurial.iter().enumerate() {
                    if !mask[i] || !self.topo.is_deployed(uid.machine, hour) {
                        continue;
                    }
                    was_active[i] |=
                        self.epoch_core(uid, hour, epoch, policies, classes, log, summary);
                }
            }
        }
        self.epoch_noise(hour, epoch, shard, log, summary);
        self.epoch_overhead(hour, shard, policies, class_cores, classes);
    }

    /// Simulates one mercurial core for one epoch; returns whether it
    /// produced any corruption.
    ///
    /// Mitigation draws live on their own `0x6d69` stream, created only
    /// when the class policy is not [`MitigationPolicy::None`], so the
    /// base per-core stream is byte-identical with mitigation off.
    #[allow(clippy::too_many_arguments)]
    fn epoch_core(
        &self,
        uid: CoreUid,
        hour: f64,
        epoch: u32,
        policies: &[MitigationPolicy],
        classes: &mut [ClassTally],
        log: &mut SignalLog,
        summary: &mut SimSummary,
    ) -> bool {
        let class_ix = self.workload_ix[uid.machine as usize];
        let policy = policies[class_ix];
        let wl = self.workload_of(uid.machine);
        let age = self.topo.age_hours(uid.machine, hour);
        let point = self.topo.product_of(uid.machine).dvfs.max_point(65);
        let rates = self.pop.unit_rates(uid, &wl.operands, point, age);

        let mut rng = CounterRng::from_parts(self.pop.seed(), uid.as_u64(), 0x6570, epoch as u64);
        let mut mit_rng = (policy != MitigationPolicy::None)
            .then(|| CounterRng::from_parts(self.pop.seed(), uid.as_u64(), 0x6d69, epoch as u64));
        let mut emitted = 0u32;
        let mut any = false;
        for unit in FunctionalUnit::ALL {
            let mut lambda =
                rates[unit.index()] * wl.ops_per_hour[unit.index()] * self.config.epoch_hours;
            // Time-varying traffic scales the op rate; the flat shape is
            // skipped entirely (not multiplied by 1.0) so legacy runs stay
            // bit-identical. Intensity is clamped strictly positive, so
            // the `lambda <= 0.0` liveness predicate is unaffected.
            if !wl.traffic.is_flat() {
                lambda *= wl.traffic.intensity_at(hour);
            }
            if lambda <= 0.0 {
                continue;
            }
            let n = poisson(&mut rng, lambda);
            if n == 0 {
                continue;
            }
            any = true;
            summary.corruptions += n;
            classes[class_ix].corrupt_ops += n;
            // Per-corruption simulation is only needed while the signal
            // cap can still admit emissions; a saturated defect (p ≈ 1 per
            // op) produces millions of corruptions per epoch, and looping
            // over each would dominate the whole fleet simulation. The
            // remainder is classified in bulk from the expected shares.
            let simulate = n.min(4 * self.config.per_core_epoch_cap as u64);
            for _ in 0..simulate {
                let mut outcome = self.classify(unit, wl, &mut rng);
                let mut mitigated = false;
                if outcome.0 == SymptomClass::WrongNeverDetected {
                    if let Some(mit) = mit_rng.as_mut() {
                        if mit.next_bool(policy.coverage()) {
                            outcome = (
                                SymptomClass::WrongDetectedImmediately,
                                Some(mitigation_signal(policy)),
                            );
                            mitigated = true;
                            classes[class_ix].mitigation_caught += 1;
                        }
                    }
                }
                summary.symptom_counts[outcome.0.risk_rank() as usize] += 1;
                if let Some(kind) = outcome.1 {
                    if !mitigated
                        && matches!(
                            kind,
                            SignalKind::AppChecksumMismatch | SignalKind::ReplicaDivergence
                        )
                    {
                        classes[class_ix].app_caught += 1;
                    }
                    if emitted < self.config.per_core_epoch_cap {
                        if mitigated {
                            // Jitter comes off the mitigation stream: the
                            // base stream must not advance for an emission
                            // it never would have seen.
                            let mit = mit_rng.as_mut().expect("mitigated implies a policy");
                            let jitter = mit.next_uniform() * self.config.epoch_hours;
                            log.push(Signal {
                                hour: hour + jitter,
                                core: uid,
                                kind,
                                caused_by_cee: true,
                            });
                            summary.signals_emitted += 1;
                            emitted += 1;
                            // Mitigation catches are machine-attributed;
                            // they never escalate to human suspect reports.
                        } else {
                            let jitter = rng.next_uniform() * self.config.epoch_hours;
                            log.push(Signal {
                                hour: hour + jitter,
                                core: uid,
                                kind,
                                caused_by_cee: true,
                            });
                            summary.signals_emitted += 1;
                            emitted += 1;
                            // Detected corruptions sometimes escalate to a
                            // human suspect report, after further triage
                            // time.
                            if kind != SignalKind::MachineCheckEvent
                                && rng.next_bool(wl.user_report_rate)
                                && emitted < self.config.per_core_epoch_cap
                            {
                                // The 24–96 h escalation lag can overshoot
                                // the observation window from its last
                                // epochs; clamp the stamp (not the draw —
                                // RNG consumption is part of the
                                // determinism contract) so every signal
                                // belongs to some epoch.
                                let escalated = (hour + jitter + 24.0 + rng.next_uniform() * 72.0)
                                    .min(self.horizon_hours);
                                log.push(Signal {
                                    hour: escalated,
                                    core: uid,
                                    kind: SignalKind::UserReport,
                                    caused_by_cee: true,
                                });
                                summary.signals_emitted += 1;
                                emitted += 1;
                                classes[class_ix].user_reports += 1;
                            }
                        }
                    }
                }
            }
            if n > simulate {
                self.bulk_classify(
                    n - simulate,
                    unit,
                    wl,
                    policy,
                    summary,
                    &mut classes[class_ix],
                );
            }
        }
        any
    }

    /// Adds `n` corruptions to the symptom tallies using the expected
    /// class shares (the closed form of [`FleetSim::classify`]'s
    /// distribution). Counts are apportioned by largest remainder, so
    /// they always sum to exactly `n` and no class is silently starved
    /// by truncation.
    fn bulk_classify(
        &self,
        n: u64,
        unit: FunctionalUnit,
        wl: &WorkloadClass,
        policy: MitigationPolicy,
        summary: &mut SimSummary,
        tally: &mut ClassTally,
    ) {
        let m = self.config.machine_check_share;
        let (p_imm, p_late) = if unit.is_control_path() {
            ((1.0 - m) * 0.80, (1.0 - m) * 0.10)
        } else {
            let r = wl.replicated_fraction;
            let c = wl.app_check_coverage;
            let imm = (1.0 - m) * (r + (1.0 - r) * c * 0.75);
            let late = (1.0 - m) * (1.0 - r) * c * 0.25;
            (imm, late)
        };
        let p_never = (1.0 - m - p_imm - p_late).max(0.0);
        // The mitigation policy intercepts the never-detected share with
        // its coverage. With coverage 0 the fifth class has probability
        // exactly 0.0: it floors to zero, its fraction is zero (so the
        // leftover pass ranks it last and never reaches it — four quotas
        // drop < 4 units), and the claw-back picks a maximal count which
        // can never be a zero bucket. The apportionment is therefore
        // bit-identical to the historical four-class one.
        let p_mit = p_never * policy.coverage();
        let p_never = p_never - p_mit;
        let classes = [
            (SymptomClass::MachineCheck, m),
            (SymptomClass::WrongDetectedImmediately, p_imm),
            (SymptomClass::WrongDetectedLate, p_late),
            (SymptomClass::WrongNeverDetected, p_never),
            (SymptomClass::WrongDetectedImmediately, p_mit),
        ];

        // Largest-remainder apportionment: floor every quota, then hand
        // the leftover units to the largest fractional parts (ties broken
        // by class order). Deterministic, and conserves n exactly.
        let mut counts = [0u64; 5];
        let mut fractions = [0.0f64; 5];
        let mut assigned = 0u64;
        for (i, (_, p)) in classes.iter().enumerate() {
            let quota = n as f64 * p;
            counts[i] = (quota.floor() as u64).min(n);
            fractions[i] = quota - counts[i] as f64;
            assigned += counts[i];
        }
        // Floating-point shares can sum slightly above 1; claw back from
        // the largest bucket so the leftover below is well-defined.
        while assigned > n {
            let i = (0..5).max_by_key(|&i| counts[i]).expect("five classes");
            counts[i] -= 1;
            assigned -= 1;
        }
        let mut order = [0usize, 1, 2, 3, 4];
        order.sort_by(|&a, &b| {
            fractions[b]
                .partial_cmp(&fractions[a])
                .expect("finite fractions")
                .then(a.cmp(&b))
        });
        // Flooring five quotas that sum to (at most) n drops strictly
        // less than 5 units, so one pass over the ranked classes covers
        // the whole leftover.
        let mut leftover = n - assigned;
        for &i in &order {
            if leftover == 0 {
                break;
            }
            counts[i] += 1;
            leftover -= 1;
        }
        debug_assert_eq!(leftover, 0, "apportionment must conserve n");

        for (i, (class, _)) in classes.iter().enumerate() {
            summary.symptom_counts[class.risk_rank() as usize] += counts[i];
        }
        tally.mitigation_caught += counts[4];
        // App-level catches mirror the per-op path: on the control path
        // only the late bucket surfaces as a checksum mismatch (the
        // immediate bucket is crashes); on the data path both detected
        // buckets are replica/checksum catches.
        tally.app_caught += if unit.is_control_path() {
            counts[2]
        } else {
            counts[1] + counts[2]
        };
    }

    /// Classifies one corruption into (risk class, emitted signal).
    fn classify(
        &self,
        unit: FunctionalUnit,
        wl: &WorkloadClass,
        rng: &mut CounterRng,
    ) -> (SymptomClass, Option<SignalKind>) {
        if rng.next_bool(self.config.machine_check_share) {
            return (
                SymptomClass::MachineCheck,
                Some(SignalKind::MachineCheckEvent),
            );
        }
        if unit.is_control_path() {
            // Corrupted addresses and branches are loud: crashes dominate.
            let r = rng.next_uniform();
            return if r < 0.55 {
                (
                    SymptomClass::WrongDetectedImmediately,
                    Some(SignalKind::ProcessCrash),
                )
            } else if r < 0.70 {
                (
                    SymptomClass::WrongDetectedImmediately,
                    Some(SignalKind::KernelCrash),
                )
            } else if r < 0.80 {
                (
                    SymptomClass::WrongDetectedImmediately,
                    Some(SignalKind::SanitizerHit),
                )
            } else if r < 0.90 {
                (
                    SymptomClass::WrongDetectedLate,
                    Some(SignalKind::AppChecksumMismatch),
                )
            } else {
                (SymptomClass::WrongNeverDetected, None)
            };
        }
        // Replicated update logic catches corruption as replica divergence
        // before any checksum gets a chance (§6's "dual computations").
        if rng.next_bool(wl.replicated_fraction) {
            return (
                SymptomClass::WrongDetectedImmediately,
                Some(SignalKind::ReplicaDivergence),
            );
        }
        // Data-path corruption: the application's own checks are the main
        // line of defense (§6).
        if rng.next_bool(wl.app_check_coverage) {
            if rng.next_bool(0.75) {
                (
                    SymptomClass::WrongDetectedImmediately,
                    Some(SignalKind::AppChecksumMismatch),
                )
            } else {
                // Caught, but after the result was consumed.
                (
                    SymptomClass::WrongDetectedLate,
                    Some(SignalKind::AppChecksumMismatch),
                )
            }
        } else {
            (SymptomClass::WrongNeverDetected, None)
        }
    }

    /// Emits background noise for one epoch.
    ///
    /// Under a shard (`Some((lo, hi))`) every random draw still happens —
    /// the noise stream is a *global* `(seed, 0xbadd, 0x6e6f, epoch)`
    /// sequence over the full deployed fleet — but only signals landing
    /// on owned machines are pushed and counted. Each noise signal is
    /// attributed to exactly one machine, so a partition of shards emits
    /// every signal exactly once and the union equals the unsharded log.
    fn epoch_noise(
        &self,
        hour: f64,
        epoch: u32,
        shard: Option<(u32, u32)>,
        log: &mut SignalLog,
        summary: &mut SimSummary,
    ) {
        // Sample from the *deployed* machines only. Drawing from the full
        // machine range and discarding undeployed picks would deflate the
        // realized noise rate by the deployed fraction during rollout.
        // Deployment is monotone, so once rollout has ended the deployed
        // set is the whole fleet — borrow the cached `0..machines` vector
        // instead of rebuilding an O(machines) scratch every epoch. The
        // scratch is only built while `hour` is inside the rollout window,
        // in the same ascending machine order, so the indexing draws below
        // see identical tables either way.
        let scratch: Vec<u32>;
        let deployed: &[u32] = if hour >= self.rollout_end_hour {
            &self.all_machines
        } else {
            scratch = (0..self.topo.machines().len() as u32)
                .filter(|&m| self.topo.is_deployed(m, hour))
                .collect();
            &scratch
        };
        if deployed.is_empty() {
            return;
        }
        let mut rng = CounterRng::from_parts(self.pop.seed(), 0xbadd, 0x6e6f, epoch as u64);
        let machine_hours = deployed.len() as f64 * self.config.epoch_hours;
        for (kind, rate) in [
            (SignalKind::ProcessCrash, self.config.noise_crash_rate),
            (SignalKind::UserReport, self.config.noise_report_rate),
        ] {
            let n = poisson(&mut rng, machine_hours * rate);
            for _ in 0..n {
                // Attribute to a uniformly random deployed machine/core.
                // All four draws happen unconditionally so a shard stays
                // aligned with the global stream; only the push is gated.
                let midx = deployed[rng.next_below(deployed.len() as u64) as usize];
                let product = self.topo.product_of(midx);
                let socket = rng.next_below(self.topo.config().sockets_per_machine as u64) as u8;
                let core = rng.next_below(product.cores_per_socket as u64) as u16;
                let signal_hour = hour + rng.next_uniform() * self.config.epoch_hours;
                if shard.is_none_or(|(lo, hi)| midx >= lo && midx < hi) {
                    log.push(Signal {
                        hour: signal_hour,
                        core: CoreUid::new(midx, socket, core),
                        kind,
                        caused_by_cee: false,
                    });
                    summary.noise_signals += 1;
                    summary.signals_emitted += 1;
                }
            }
        }
    }

    /// Meters the epoch's mitigation overhead into the per-class cost
    /// tallies. RNG-free and built from u64 sums over the shard's owned
    /// machines, so it is exact under any shard partition and any
    /// parallelism; with every policy at `None` it is a no-op, keeping
    /// legacy runs cost-free.
    fn epoch_overhead(
        &self,
        hour: f64,
        shard: Option<(u32, u32)>,
        policies: &[MitigationPolicy],
        class_cores: &[u64],
        classes: &mut [ClassTally],
    ) {
        if policies.iter().all(|&p| p == MitigationPolicy::None) {
            return;
        }
        // Deployed core capacity per class: the cached post-rollout counts
        // when the whole cohort is in service, else a scan of the owned
        // machine range.
        let scratch: Vec<u64>;
        let cores: &[u64] = if hour >= self.rollout_end_hour {
            class_cores
        } else {
            let mut counts = vec![0u64; classes.len()];
            let (lo, hi) = shard.unwrap_or((0, self.topo.machines().len() as u32));
            let sockets = self.topo.config().sockets_per_machine as u64;
            for m in lo..hi {
                if self.topo.is_deployed(m, hour) {
                    let per = sockets * self.topo.product_of(m).cores_per_socket as u64;
                    counts[self.workload_ix[m as usize]] += per;
                }
            }
            scratch = counts;
            &scratch
        };
        for (ix, tally) in classes.iter_mut().enumerate() {
            let policy = policies[ix];
            if policy == MitigationPolicy::None || cores[ix] == 0 {
                continue;
            }
            // Metered per core, then scaled by the integer core count:
            // the per-core figure is identical on every shard, so any
            // machine partition sums to exactly the full-fleet meter
            // (float rounding at shard granularity would not).
            let wl = &self.workloads[ix].0;
            let per_core = (wl.total_ops_per_hour()
                * wl.traffic.intensity_at(hour)
                * self.config.epoch_hours) as u64;
            tally.mitigated_ops += cores[ix] * per_core;
            let mut per_meter = CostMeter::default();
            policy.meter_ops(per_core, &mut per_meter);
            tally.cost.executions += per_meter.executions * cores[ix];
            tally.cost.comparisons += per_meter.comparisons * cores[ix];
            tally.cost.retries += per_meter.retries * cores[ix];
        }
    }
}

/// The signal kind a mitigation catch surfaces as: checksum-style
/// policies report as an application checksum mismatch, redundant-
/// execution policies as a replica divergence.
fn mitigation_signal(policy: MitigationPolicy) -> SignalKind {
    match policy {
        MitigationPolicy::None
        | MitigationPolicy::E2eChecksum
        | MitigationPolicy::InstructionCheck => SignalKind::AppChecksumMismatch,
        MitigationPolicy::Dmr | MitigationPolicy::Tmr => SignalKind::ReplicaDivergence,
    }
}

/// Draws a Poisson variate: Knuth's method for small `lambda`, a rounded
/// normal approximation beyond.
pub fn poisson(rng: &mut CounterRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.next_uniform();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // numerical guard; unreachable for lambda < 30
            }
        }
    }
    let draw = lambda + lambda.sqrt() * rng.next_normal();
    draw.round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FleetConfig;
    use mercurial_fault::{library, Activation, CoreFaultProfile, Lesion};

    fn tiny_sim(machines: u32, cores: Vec<(CoreUid, CoreFaultProfile)>, months: u32) -> FleetSim {
        let topo = FleetTopology::build(FleetConfig::tiny(machines, 21));
        let pop = Population::with_explicit(21, cores);
        FleetSim::new(
            topo,
            pop,
            SimConfig {
                months,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = CounterRng::new(1);
        for lambda in [0.5, 5.0, 80.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.1 + 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn healthy_fleet_emits_only_noise() {
        let sim = tiny_sim(200, vec![], 6);
        let (log, summary) = sim.run();
        assert_eq!(summary.corruptions, 0);
        assert!(log.all().iter().all(|s| !s.caused_by_cee));
        assert_eq!(summary.noise_signals as usize, log.len());
    }

    #[test]
    fn hot_core_dominates_the_log() {
        let uid = CoreUid::new(3, 0, 1);
        let sim = tiny_sim(50, vec![(uid, library::string_bitflip(9, 1e-4))], 6);
        let (log, summary) = sim.run();
        assert!(
            summary.corruptions > 0,
            "a 1e-4 vector defect must fire in 6 months"
        );
        let counts = log.counts_by_core();
        let bad = counts.get(&uid).copied().unwrap_or(0);
        let max_other = counts
            .iter()
            .filter(|(c, _)| **c != uid)
            .map(|(_, &n)| n)
            .max()
            .unwrap_or(0);
        assert!(
            bad > max_other,
            "defective core ({bad} signals) should out-signal every healthy core ({max_other})"
        );
    }

    #[test]
    fn symptom_taxonomy_is_populated_in_risk_order_style() {
        // A busy fleet: every class of the §2 taxonomy occurs, and silent
        // corruption is a substantial share (that is the whole problem).
        let cores: Vec<(CoreUid, CoreFaultProfile)> = (0..10)
            .map(|i| {
                (
                    CoreUid::new(i, 0, 0),
                    CoreFaultProfile::single(
                        "mix",
                        if i % 2 == 0 {
                            mercurial_fault::FunctionalUnit::ScalarAlu
                        } else {
                            mercurial_fault::FunctionalUnit::AddressGen
                        },
                        Lesion::FlipBit { bit: 5 },
                        Activation::with_prob(3e-5),
                    ),
                )
            })
            .collect();
        let sim = tiny_sim(100, cores, 12);
        let (_, summary) = sim.run();
        for class in SymptomClass::ALL {
            assert!(
                summary.symptom_count(class) > 0,
                "class {class} never occurred; counts {:?}",
                summary.symptom_counts
            );
        }
        assert!(summary.symptom_count(SymptomClass::WrongNeverDetected) > 0);
    }

    #[test]
    fn run_is_deterministic() {
        let uid = CoreUid::new(2, 0, 0);
        let a = tiny_sim(30, vec![(uid, library::lock_violator(1e-4))], 4).run();
        let b = tiny_sim(30, vec![(uid, library::lock_violator(1e-4))], 4).run();
        assert_eq!(a.1, b.1);
        assert_eq!(a.0.len(), b.0.len());
    }

    #[test]
    fn latent_core_is_silent_until_onset() {
        let uid = CoreUid::new(1, 0, 0);
        // Onset at ~6 months of a 12-month window.
        let profile = library::late_onset_muldiv(6.0 * 730.0, 1e-4);
        let sim = tiny_sim(20, vec![(uid, profile)], 12);
        let (log, _) = sim.run();
        let cee_signals: Vec<&Signal> = log.all().iter().filter(|s| s.caused_by_cee).collect();
        assert!(!cee_signals.is_empty(), "defect must manifest after onset");
        assert!(
            cee_signals.iter().all(|s| s.hour >= 6.0 * 730.0),
            "no CEE signal may precede onset"
        );
    }

    #[test]
    fn user_reports_exist_and_lag_detections() {
        let uid = CoreUid::new(4, 0, 2);
        let sim = tiny_sim(50, vec![(uid, library::string_bitflip(4, 1e-4))], 12);
        let (log, _) = sim.run();
        let reports: Vec<&Signal> = log
            .all()
            .iter()
            .filter(|s| s.kind == SignalKind::UserReport && s.caused_by_cee)
            .collect();
        assert!(
            !reports.is_empty(),
            "some detections must escalate to reports"
        );
    }

    #[test]
    fn parallel_run_matches_serial_bit_for_bit() {
        let uid = CoreUid::new(3, 0, 1);
        let build = |parallelism: usize| {
            let topo = FleetTopology::build(FleetConfig::tiny(50, 21));
            let pop = Population::with_explicit(21, vec![(uid, library::string_bitflip(9, 1e-4))]);
            FleetSim::new(
                topo,
                pop,
                SimConfig {
                    months: 6,
                    parallelism,
                    ..SimConfig::default()
                },
            )
        };
        let (serial_log, serial_summary) = build(1).run();
        assert!(serial_summary.signals_emitted > 0, "defect must fire");
        for threads in [2usize, 3, 8] {
            let (log, summary) = build(threads).run();
            assert_eq!(summary, serial_summary, "{threads} threads");
            assert_eq!(log.all(), serial_log.all(), "{threads} threads");
        }
    }

    #[test]
    fn traced_stepping_is_parallelism_and_granularity_invariant() {
        let uid = CoreUid::new(3, 0, 1);
        let build = |parallelism: usize| {
            let topo = FleetTopology::build(FleetConfig::tiny(50, 21));
            let pop = Population::with_explicit(21, vec![(uid, library::string_bitflip(9, 1e-4))]);
            FleetSim::new(
                topo,
                pop,
                SimConfig {
                    months: 6,
                    parallelism,
                    ..SimConfig::default()
                },
            )
        };
        let trace_of = |parallelism: usize, granularity: u32| {
            let sim = build(parallelism);
            let mut state = sim.begin();
            let mut log = SignalLog::new();
            let mut summary = SimSummary::default();
            let mut rec = Recorder::with_flags(mercurial_trace::TraceFlags::enabled());
            while !state.is_done() {
                sim.step_epochs_traced(&mut state, granularity, &mut log, &mut summary, &mut rec);
            }
            (rec.finish().to_jsonl(), log, summary)
        };
        let (base_jsonl, base_log, base_summary) = trace_of(1, u32::MAX);
        assert!(base_jsonl.contains("sim.first_corruption"));
        assert!(base_jsonl.contains("\"k\":\"B\",\"n\":\"sim.epoch\""));
        for (threads, granularity) in [(1usize, 1u32), (2, u32::MAX), (2, 5), (8, u32::MAX)] {
            let (jsonl, log, summary) = trace_of(threads, granularity);
            assert_eq!(jsonl, base_jsonl, "{threads} threads / batch {granularity}");
            assert_eq!(log.all(), base_log.all());
            assert_eq!(summary, base_summary);
        }
        // The traced run perturbs nothing: untraced output is identical.
        let (untraced_log, untraced_summary) = build(1).run();
        let mut sorted = base_log;
        sorted.sort_by_time();
        assert_eq!(sorted.all(), untraced_log.all());
        assert_eq!(base_summary, untraced_summary);
    }

    #[test]
    fn stepping_matches_run_for_any_granularity() {
        let uid = CoreUid::new(3, 0, 1);
        let sim = tiny_sim(50, vec![(uid, library::string_bitflip(9, 1e-4))], 6);
        let (full_log, full_summary) = sim.run();
        assert!(full_summary.signals_emitted > 0, "defect must fire");
        for granularity in [1u32, 3, 7, 1000] {
            let mut state = sim.begin();
            let mut log = SignalLog::new();
            let mut summary = SimSummary::default();
            while sim.step_epochs(&mut state, granularity, &mut log, &mut summary) > 0 {}
            assert!(state.is_done());
            log.sort_by_time();
            assert_eq!(summary, full_summary, "granularity {granularity}");
            assert_eq!(log.all(), full_log.all(), "granularity {granularity}");
        }
    }

    #[test]
    fn masked_core_is_silent_while_out_of_service() {
        let uid = CoreUid::new(3, 0, 1);
        let sim = tiny_sim(50, vec![(uid, library::string_bitflip(9, 1e-4))], 6);
        let mut state = sim.begin();
        let mut log = SignalLog::new();
        let mut summary = SimSummary::default();
        // Run the first half in service, then pull the core.
        let half = state.total_epochs() / 2;
        sim.step_epochs(&mut state, half, &mut log, &mut summary);
        let corruptions_before = summary.corruptions;
        assert!(corruptions_before > 0, "defect must fire in the first half");
        assert!(sim.step_epoch(&mut state, &mut log, &mut summary));
        let masked_hour = state.hour();
        assert!(state.set_active(uid, false), "core is mercurial");
        assert!(!state.is_active(uid));
        let corruptions_at_mask = summary.corruptions;
        sim.step_epochs(&mut state, u32::MAX, &mut log, &mut summary);
        assert_eq!(
            summary.corruptions, corruptions_at_mask,
            "a masked core draws no corruption"
        );
        // Signals are drawn in the epoch they originate from; only the
        // user-report escalation lags (24–96 h after its detection), so
        // nothing else may be dated past the mask hour.
        assert!(
            log.all()
                .iter()
                .filter(|s| s.caused_by_cee && s.kind != SignalKind::UserReport)
                .all(|s| s.hour < masked_hour),
            "no prompt CEE signal after the mask hour"
        );
        let horizon = state.total_epochs() as f64 * sim.config().epoch_hours;
        assert!(
            log.all()
                .iter()
                .filter(|s| s.caused_by_cee)
                .all(|s| s.hour < masked_hour + 96.0 && s.hour <= horizon),
            "lagged reports stay within the escalation window and the \
             observation window"
        );
        // Masking an unknown (healthy) core is a harmless no-op.
        assert!(!state.set_active(CoreUid::new(0, 0, 0), false));
        assert!(state.is_active(CoreUid::new(0, 0, 0)));
    }

    #[test]
    fn noise_rate_tracks_deployment_ramp() {
        // During rollout only a fraction of the fleet is deployed; the
        // realized noise rate must follow deployed machine-hours, not be
        // deflated by the deployed/total fraction (the old sampler drew
        // from all machines and dropped undeployed picks).
        let config = SimConfig {
            months: 6,
            noise_crash_rate: 1e-3,
            ..SimConfig::default()
        };
        let topo = FleetTopology::build(FleetConfig {
            machines: 1000,
            sockets_per_machine: 1,
            products: crate::product::CpuProduct::default_catalog(),
            rollout_months: 6,
            seed: 77,
        });
        let pop = Population::with_explicit(77, vec![]);
        let sim = FleetSim::new(topo, pop, config.clone());
        let (log, summary) = sim.run();

        let epochs = (config.months as f64 * 730.0 / config.epoch_hours).ceil() as u32;
        let mut expected = 0.0;
        for e in 0..epochs {
            let hour = e as f64 * config.epoch_hours;
            expected += sim.topology().deployed_count(hour) as f64
                * config.epoch_hours
                * (config.noise_crash_rate + config.noise_report_rate);
        }
        assert!(expected > 1000.0, "ramp scenario must carry real mass");
        let got = summary.noise_signals as f64;
        assert!(
            (got - expected).abs() < 6.0 * expected.sqrt(),
            "realized noise {got} vs expected {expected}"
        );
        // Every noise signal is attributed to a machine deployed at the
        // signal's hour.
        for s in log.all() {
            assert!(sim.topology().is_deployed(s.core.machine, s.hour));
        }
    }

    #[test]
    fn bulk_classify_conserves_totals_at_small_n() {
        let sim = tiny_sim(5, vec![], 1);
        for unit in [FunctionalUnit::ScalarAlu, FunctionalUnit::AddressGen] {
            for policy in MitigationPolicy::ALL {
                for (wl, _) in WorkloadClass::default_mix() {
                    let mut summary = SimSummary::default();
                    let mut tally = ClassTally::default();
                    let mut total = 0u64;
                    for n in 1..=40u64 {
                        sim.bulk_classify(n, unit, &wl, policy, &mut summary, &mut tally);
                        total += n;
                        assert_eq!(
                            summary.symptom_counts.iter().sum::<u64>(),
                            total,
                            "unit {unit:?}, policy {}, workload {}, n {n}",
                            policy.label(),
                            wl.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bulk_classify_mitigation_share_shrinks_the_silent_bucket() {
        let sim = tiny_sim(5, vec![], 1);
        let wl = WorkloadClass::data_pipeline();
        let silent_of = |policy: MitigationPolicy| {
            let mut summary = SimSummary::default();
            let mut tally = ClassTally::default();
            sim.bulk_classify(
                1_000_000,
                FunctionalUnit::ScalarAlu,
                &wl,
                policy,
                &mut summary,
                &mut tally,
            );
            (
                summary.symptom_counts[SymptomClass::WrongNeverDetected.risk_rank() as usize],
                tally.mitigation_caught,
            )
        };
        let (silent_none, caught_none) = silent_of(MitigationPolicy::None);
        assert_eq!(caught_none, 0);
        let mut prev_silent = silent_none;
        for policy in &MitigationPolicy::ALL[1..] {
            let (silent, caught) = silent_of(*policy);
            assert!(
                silent < prev_silent,
                "{} must shrink the silent bucket",
                policy.label()
            );
            assert!(caught > 0);
            prev_silent = silent;
        }
    }

    /// A rollout fleet carrying a from-birth defect, a mid-window latent
    /// defect, and a control-path defect — exercises deploy wakes, onset
    /// wakes, and permanently-live cores all at once.
    fn parity_fleet(seed: u64, engine: SimEngine, parallelism: usize, months: u32) -> FleetSim {
        let topo = FleetTopology::build(FleetConfig {
            machines: 120,
            sockets_per_machine: 2,
            products: crate::product::CpuProduct::default_catalog(),
            rollout_months: 4,
            seed,
        });
        let pop = Population::with_explicit(
            seed,
            vec![
                (CoreUid::new(3, 0, 1), library::string_bitflip(9, 1e-4)),
                (
                    CoreUid::new(40, 1, 2),
                    library::late_onset_muldiv(3.0 * 730.0, 1e-4),
                ),
                (CoreUid::new(77, 0, 0), library::lock_violator(1e-4)),
            ],
        );
        FleetSim::new(
            topo,
            pop,
            SimConfig {
                months,
                parallelism,
                engine,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn sparse_engine_matches_dense_bit_for_bit() {
        for seed in [21u64, 97, 4242] {
            let (dense_log, dense_summary) = parity_fleet(seed, SimEngine::Dense, 1, 9).run();
            assert!(
                dense_summary.signals_emitted > 0,
                "seed {seed}: defects must fire"
            );
            for parallelism in [1usize, 2, 8] {
                for granularity in [1u32, 5, u32::MAX] {
                    let sim = parity_fleet(seed, SimEngine::Sparse, parallelism, 9);
                    let mut state = sim.begin();
                    let mut log = SignalLog::new();
                    let mut summary = SimSummary::default();
                    while sim.step_epochs(&mut state, granularity, &mut log, &mut summary) > 0 {}
                    log.sort_by_time();
                    assert_eq!(
                        summary, dense_summary,
                        "seed {seed}, {parallelism} workers, batch {granularity}"
                    );
                    assert_eq!(
                        log.all(),
                        dense_log.all(),
                        "seed {seed}, {parallelism} workers, batch {granularity}"
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_trace_matches_dense_trace_bit_for_bit() {
        let trace_of = |engine: SimEngine, parallelism: usize, granularity: u32| {
            let sim = parity_fleet(33, engine, parallelism, 9);
            let mut state = sim.begin();
            let mut log = SignalLog::new();
            let mut summary = SimSummary::default();
            let mut rec = Recorder::with_flags(mercurial_trace::TraceFlags::enabled());
            while !state.is_done() {
                sim.step_epochs_traced(&mut state, granularity, &mut log, &mut summary, &mut rec);
            }
            (rec.finish().to_jsonl(), log, summary)
        };
        let (dense_jsonl, dense_log, dense_summary) = trace_of(SimEngine::Dense, 1, u32::MAX);
        assert!(dense_jsonl.contains("sim.first_corruption"));
        for (parallelism, granularity) in [(1usize, 1u32), (2, 5), (8, u32::MAX)] {
            let (jsonl, log, summary) = trace_of(SimEngine::Sparse, parallelism, granularity);
            assert_eq!(jsonl, dense_jsonl, "{parallelism} workers / {granularity}");
            assert_eq!(log.all(), dense_log.all());
            assert_eq!(summary, dense_summary);
        }
    }

    #[test]
    fn dormant_cores_cost_zero_per_epoch_work() {
        // Every defect's onset lies beyond the observation window: the
        // sparse engine must do exactly one deploy wake per core and no
        // per-epoch work at all, with both onset wakes still pending.
        let far = 1.0e6;
        let cores: Vec<(CoreUid, CoreFaultProfile)> = vec![
            (CoreUid::new(2, 0, 0), library::late_onset_muldiv(far, 1e-3)),
            (CoreUid::new(7, 0, 3), library::late_onset_muldiv(far, 1e-3)),
        ];
        let topo = FleetTopology::build(FleetConfig::tiny(50, 5));
        let pop = Population::with_explicit(5, cores);
        let sim = FleetSim::new(
            topo,
            pop,
            SimConfig {
                months: 6,
                engine: SimEngine::Sparse,
                ..SimConfig::default()
            },
        );
        let mut state = sim.begin();
        let mut log = SignalLog::new();
        let mut summary = SimSummary::default();
        while sim.step_epochs(&mut state, 7, &mut log, &mut summary) > 0 {}
        assert_eq!(summary.corruptions, 0);
        let stats = state.clock_stats();
        assert_eq!(stats.events_processed, 2, "one deploy wake per core");
        assert_eq!(stats.live_core_epochs, 0, "no core-epoch was simulated");
        assert_eq!(stats.pending_events, 2, "onset wakes parked past window");
    }

    #[test]
    fn live_cores_are_accounted_and_dense_never_uses_the_clock() {
        let build = |engine: SimEngine| {
            let uid = CoreUid::new(3, 0, 1);
            tiny_sim_with_engine(50, vec![(uid, library::string_bitflip(9, 1e-4))], 6, engine)
        };
        let run = |engine: SimEngine| {
            let sim = build(engine);
            let mut state = sim.begin();
            let mut log = SignalLog::new();
            let mut summary = SimSummary::default();
            while sim.step_epochs(&mut state, u32::MAX, &mut log, &mut summary) > 0 {}
            (state.clock_stats(), state.total_epochs())
        };
        let (sparse, epochs) = run(SimEngine::Sparse);
        // One from-birth defect on a rollout-0 fleet: live from epoch 0.
        assert_eq!(sparse.live_core_epochs, epochs as u64);
        assert_eq!(sparse.events_processed, 1);
        assert_eq!(sparse.pending_events, 0);
        let (dense, _) = run(SimEngine::Dense);
        assert_eq!(dense.events_processed, 0);
        assert_eq!(dense.live_core_epochs, 0);
    }

    fn tiny_sim_with_engine(
        machines: u32,
        cores: Vec<(CoreUid, CoreFaultProfile)>,
        months: u32,
        engine: SimEngine,
    ) -> FleetSim {
        let topo = FleetTopology::build(FleetConfig::tiny(machines, 21));
        let pop = Population::with_explicit(21, cores);
        FleetSim::new(
            topo,
            pop,
            SimConfig {
                months,
                engine,
                ..SimConfig::default()
            },
        )
    }

    #[test]
    fn noise_fast_path_is_bit_identical_to_the_scan() {
        // Post-rollout epochs borrow the cached all-machines table; this
        // pin forces the slow per-epoch scan on an identical twin and
        // demands the same signal log bit for bit.
        let build = || {
            let topo = FleetTopology::build(FleetConfig {
                machines: 300,
                sockets_per_machine: 1,
                products: crate::product::CpuProduct::default_catalog(),
                rollout_months: 2,
                seed: 77,
            });
            let pop = Population::with_explicit(77, vec![]);
            FleetSim::new(
                topo,
                pop,
                SimConfig {
                    months: 6,
                    noise_crash_rate: 1e-3,
                    ..SimConfig::default()
                },
            )
        };
        let fast = build();
        let mut slow = build();
        slow.rollout_end_hour = f64::INFINITY; // force the per-epoch rebuild
        let (fast_log, fast_summary) = fast.run();
        let (slow_log, slow_summary) = slow.run();
        assert!(fast_summary.noise_signals > 0, "noise must flow");
        assert_eq!(fast_summary, slow_summary);
        assert_eq!(fast_log.all(), slow_log.all());
    }

    #[test]
    fn no_signal_is_dated_past_the_window_end() {
        // Hot defects active through the last epoch: escalations drawn
        // there would overshoot the window by up to ~96 h without the
        // clamp.
        let cores: Vec<(CoreUid, CoreFaultProfile)> = (0..12)
            .map(|m| (CoreUid::new(m, 0, 1), library::string_bitflip(9, 1e-3)))
            .collect();
        let sim = tiny_sim(30, cores, 2);
        let horizon = sim.epochs() as f64 * sim.config().epoch_hours;
        let (log, summary) = sim.run();
        assert!(summary.signals_emitted > 0, "defect must fire");
        assert!(
            log.all().iter().all(|s| s.hour <= horizon),
            "every signal must belong to some epoch of the window"
        );
        assert!(
            log.all()
                .iter()
                .any(|s| s.kind == SignalKind::UserReport && s.hour == horizon),
            "an escalation from the final epochs must have been clamped \
             to the window end (the pre-clamp stamp exceeded it)"
        );
    }

    #[test]
    fn machine_shards_union_to_the_full_fleet_bit_for_bit() {
        // The serve contract: partition the machine range into contiguous
        // shards, run each shard's SimState over the whole window, merge.
        // Logs must union to the full run exactly (as a multiset — epoch-
        // internal emission order differs across shards) and summaries
        // must sum exactly.
        let canon = |log: &SignalLog| {
            let mut v: Vec<Signal> = log.all().to_vec();
            v.sort_by(|a, b| {
                a.hour
                    .total_cmp(&b.hour)
                    .then(a.core.cmp(&b.core))
                    .then((a.kind as u8).cmp(&(b.kind as u8)))
            });
            v
        };
        for seed in [21u64, 97] {
            let sim = parity_fleet(seed, SimEngine::Sparse, 1, 9);
            let (full_log, full_summary) = sim.run();
            assert!(full_summary.signals_emitted > 0, "defects must fire");
            assert!(full_summary.noise_signals > 0, "noise must flow");
            let machines = sim.topology().machines().len() as u32;
            for workers in [1u32, 2, 4] {
                let mut merged = SignalLog::new();
                let mut summed = SimSummary::default();
                for w in 0..workers {
                    let lo = machines * w / workers;
                    let hi = machines * (w + 1) / workers;
                    let mut state = sim.begin_shard(lo, hi);
                    assert_eq!(state.shard_range(), Some((lo, hi)));
                    let mut log = SignalLog::new();
                    let mut summary = SimSummary::default();
                    while sim.step_epochs(&mut state, u32::MAX, &mut log, &mut summary) > 0 {}
                    merged.append(log);
                    summed.merge(&summary);
                }
                assert_eq!(summed, full_summary, "seed {seed}, {workers} shards");
                assert_eq!(
                    canon(&merged),
                    canon(&full_log),
                    "seed {seed}, {workers} shards"
                );
            }
        }
    }

    #[test]
    fn workload_assignment_is_stable() {
        let sim = tiny_sim(100, vec![], 1);
        for m in 0..100 {
            assert_eq!(sim.workload_of(m).name, sim.workload_of(m).name);
        }
        let names: std::collections::HashSet<_> =
            (0..100).map(|m| sim.workload_of(m).name.clone()).collect();
        assert!(names.len() >= 3, "expected a real mix, got {names:?}");
    }
}
