//! The signal taxonomy: everything the infrastructure can actually see.
//!
//! §6 lists the "automatable signals indicating the possible presence of
//! CEEs": crashes of user processes and kernels, machine-check logs, code
//! sanitizers, application-level checksum mismatches — plus human-filed
//! suspect reports from incident triage. Each carries a ground-truth
//! `caused_by_cee` flag that *scoring* code may read but detectors must
//! not: in production nobody tells you which crashes were hardware.

use mercurial_fault::{CoreUid, SymptomClass};
use serde::{Deserialize, Serialize};

/// A kind of observable signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SignalKind {
    /// An application-level end-to-end check (checksum, invariant) caught
    /// a corruption.
    AppChecksumMismatch,
    /// A user process crashed (segfault, abort, sanitizer kill).
    ProcessCrash,
    /// The kernel crashed or oopsed.
    KernelCrash,
    /// A machine-check event was logged.
    MachineCheckEvent,
    /// A code sanitizer flagged memory corruption.
    SanitizerHit,
    /// Two replicas executing the same update logic diverged (§6: "we can
    /// exploit these dual computations to detect CEEs").
    ReplicaDivergence,
    /// A human filed a suspect-core report during incident triage.
    UserReport,
    /// A screening run (burn-in / offline / online) failed on this core.
    ScreenerFailure,
}

impl SignalKind {
    /// All kinds.
    pub const ALL: [SignalKind; 8] = [
        SignalKind::AppChecksumMismatch,
        SignalKind::ProcessCrash,
        SignalKind::KernelCrash,
        SignalKind::MachineCheckEvent,
        SignalKind::SanitizerHit,
        SignalKind::ReplicaDivergence,
        SignalKind::UserReport,
        SignalKind::ScreenerFailure,
    ];

    /// Whether this signal arrives through automated channels (Fig. 1's
    /// "automatically-reported" series) as opposed to human reports.
    pub fn is_automatic(self) -> bool {
        self != SignalKind::UserReport
    }

    /// A short stable label.
    pub fn name(self) -> &'static str {
        match self {
            SignalKind::AppChecksumMismatch => "app-checksum-mismatch",
            SignalKind::ProcessCrash => "process-crash",
            SignalKind::KernelCrash => "kernel-crash",
            SignalKind::MachineCheckEvent => "machine-check",
            SignalKind::SanitizerHit => "sanitizer-hit",
            SignalKind::ReplicaDivergence => "replica-divergence",
            SignalKind::UserReport => "user-report",
            SignalKind::ScreenerFailure => "screener-failure",
        }
    }
}

impl std::fmt::Display for SignalKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One observed signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Signal {
    /// Fleet time, hours from window start.
    pub hour: f64,
    /// The core the signal is attributed to. Attribution is what the
    /// reporter *believed*; for noise signals it is an innocent core.
    pub core: CoreUid,
    /// What kind of signal.
    pub kind: SignalKind,
    /// Ground truth: whether a CEE actually caused this signal. Detectors
    /// must not read this; scoring does.
    pub caused_by_cee: bool,
}

/// The §2 risk class of a corruption outcome, together with whether it
/// produced a signal at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionOutcome {
    /// Risk class.
    pub class: SymptomClass,
    /// The signal emitted, if any.
    pub signal: Option<SignalKind>,
}

/// An append-only log of signals with query helpers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SignalLog {
    signals: Vec<Signal>,
}

impl SignalLog {
    /// Creates an empty log.
    pub fn new() -> SignalLog {
        SignalLog::default()
    }

    /// Appends a signal.
    pub fn push(&mut self, signal: Signal) {
        self.signals.push(signal);
    }

    /// All signals, in emission order.
    pub fn all(&self) -> &[Signal] {
        &self.signals
    }

    /// Number of signals.
    pub fn len(&self) -> usize {
        self.signals.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.signals.is_empty()
    }

    /// Signals of one kind.
    pub fn of_kind(&self, kind: SignalKind) -> impl Iterator<Item = &Signal> {
        self.signals.iter().filter(move |s| s.kind == kind)
    }

    /// Signals inside `[from_hour, to_hour)`.
    pub fn in_window(&self, from_hour: f64, to_hour: f64) -> impl Iterator<Item = &Signal> {
        self.signals
            .iter()
            .filter(move |s| s.hour >= from_hour && s.hour < to_hour)
    }

    /// Per-core signal counts (all kinds).
    pub fn counts_by_core(&self) -> std::collections::HashMap<CoreUid, u64> {
        let mut map = std::collections::HashMap::new();
        for s in &self.signals {
            *map.entry(s.core).or_insert(0) += 1;
        }
        map
    }

    /// Moves every signal of `other` to the end of this log, preserving
    /// emission order (shard merging in the parallel simulator).
    pub fn append(&mut self, other: SignalLog) {
        let mut other = other;
        self.signals.append(&mut other.signals);
    }

    /// Keeps only the signals for which `keep` returns `true`, preserving
    /// order, and returns how many were dropped. The closed-loop driver
    /// uses this to withdraw signals attributed to cores that were already
    /// out of service when the signal would have fired.
    pub fn retain(&mut self, mut keep: impl FnMut(&Signal) -> bool) -> usize {
        let before = self.signals.len();
        self.signals.retain(|s| keep(s));
        before - self.signals.len()
    }

    /// Sorts the log by time (the simulator emits epoch batches; sort once
    /// before sequential consumption).
    pub fn sort_by_time(&mut self) {
        self.signals.sort_by(|a, b| {
            a.hour
                .partial_cmp(&b.hour)
                .expect("signal times are finite")
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(hour: f64, core: u32, kind: SignalKind, cee: bool) -> Signal {
        Signal {
            hour,
            core: CoreUid::new(core, 0, 0),
            kind,
            caused_by_cee: cee,
        }
    }

    #[test]
    fn user_reports_are_not_automatic() {
        assert!(!SignalKind::UserReport.is_automatic());
        for k in SignalKind::ALL {
            if k != SignalKind::UserReport {
                assert!(k.is_automatic(), "{k}");
            }
        }
    }

    #[test]
    fn log_queries() {
        let mut log = SignalLog::new();
        log.push(sig(5.0, 1, SignalKind::ProcessCrash, true));
        log.push(sig(1.0, 1, SignalKind::UserReport, false));
        log.push(sig(3.0, 2, SignalKind::ProcessCrash, false));
        assert_eq!(log.len(), 3);
        assert_eq!(log.of_kind(SignalKind::ProcessCrash).count(), 2);
        assert_eq!(log.in_window(0.0, 4.0).count(), 2);
        let counts = log.counts_by_core();
        assert_eq!(counts[&CoreUid::new(1, 0, 0)], 2);
    }

    #[test]
    fn sort_orders_by_time() {
        let mut log = SignalLog::new();
        log.push(sig(5.0, 1, SignalKind::UserReport, true));
        log.push(sig(1.0, 2, SignalKind::UserReport, true));
        log.sort_by_time();
        assert!(log.all()[0].hour < log.all()[1].hour);
    }

    #[test]
    fn kind_names_distinct() {
        let mut names: Vec<_> = SignalKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SignalKind::ALL.len());
    }
}
