//! Fleet topology: machines, sockets, cores, deployment cohorts.

use crate::product::CpuProduct;
use mercurial_fault::{CoreUid, CounterRng};
use serde::{Deserialize, Serialize};

/// Static fleet configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of machines.
    pub machines: u32,
    /// Sockets per machine.
    pub sockets_per_machine: u8,
    /// The product catalog machines are drawn from (weighted).
    pub products: Vec<CpuProduct>,
    /// Months over which the fleet was deployed (cohorts spread uniformly;
    /// 0 means everything deployed at hour 0).
    pub rollout_months: u32,
    /// Master seed for population sampling.
    pub seed: u64,
}

impl FleetConfig {
    /// A small default fleet: 20,000 machines, 2 sockets, rolled out over
    /// a year — big enough to show "a few mercurial cores per several
    /// thousand machines" with real counts, small enough for a laptop.
    pub fn default_fleet() -> FleetConfig {
        FleetConfig {
            machines: 20_000,
            sockets_per_machine: 2,
            products: CpuProduct::default_catalog(),
            rollout_months: 12,
            seed: 0x5eed,
        }
    }

    /// A miniature fleet for unit tests.
    pub fn tiny(machines: u32, seed: u64) -> FleetConfig {
        FleetConfig {
            machines,
            sockets_per_machine: 1,
            products: CpuProduct::default_catalog(),
            rollout_months: 0,
            seed,
        }
    }
}

/// Resolved per-machine facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineInfo {
    /// Machine index.
    pub machine: u32,
    /// Index into the product catalog.
    pub product: usize,
    /// Hour (from window start) the machine entered service.
    pub deploy_hour: f64,
}

/// The materialized fleet: every machine's product and deployment time.
#[derive(Debug, Clone)]
pub struct FleetTopology {
    config: FleetConfig,
    machines: Vec<MachineInfo>,
    total_cores: u64,
}

impl FleetTopology {
    /// Materializes a topology from configuration (deterministic in the
    /// seed).
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty or all weights are zero.
    pub fn build(config: FleetConfig) -> FleetTopology {
        assert!(!config.products.is_empty(), "need at least one product");
        let total_weight: f64 = config.products.iter().map(|p| p.fleet_weight).sum();
        assert!(total_weight > 0.0, "product weights must not all be zero");
        let mut machines = Vec::with_capacity(config.machines as usize);
        let mut total_cores = 0u64;
        for m in 0..config.machines {
            let mut rng = CounterRng::from_parts(config.seed, m as u64, 0x746f, 0);
            // Weighted product draw.
            let mut pick = rng.next_uniform() * total_weight;
            let mut product = 0;
            for (i, p) in config.products.iter().enumerate() {
                if pick < p.fleet_weight {
                    product = i;
                    break;
                }
                pick -= p.fleet_weight;
                product = i;
            }
            let deploy_hour = if config.rollout_months == 0 {
                0.0
            } else {
                rng.next_uniform() * config.rollout_months as f64 * 730.0
            };
            total_cores += config.products[product].cores_per_socket as u64
                * config.sockets_per_machine as u64;
            machines.push(MachineInfo {
                machine: m,
                product,
                deploy_hour,
            });
        }
        FleetTopology {
            config,
            machines,
            total_cores,
        }
    }

    /// The configuration this topology was built from.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Per-machine facts.
    pub fn machines(&self) -> &[MachineInfo] {
        &self.machines
    }

    /// A machine's product.
    pub fn product_of(&self, machine: u32) -> &CpuProduct {
        &self.config.products[self.machines[machine as usize].product]
    }

    /// Total cores across the fleet.
    pub fn total_cores(&self) -> u64 {
        self.total_cores
    }

    /// Iterates every core UID of a machine.
    pub fn cores_of(&self, machine: u32) -> impl Iterator<Item = CoreUid> + '_ {
        let cores = self.product_of(machine).cores_per_socket;
        let sockets = self.config.sockets_per_machine;
        (0..sockets).flat_map(move |s| (0..cores).map(move |c| CoreUid::new(machine, s, c)))
    }

    /// A machine's age in hours at fleet time `hour` (0 if not yet
    /// deployed).
    pub fn age_hours(&self, machine: u32, hour: f64) -> f64 {
        (hour - self.machines[machine as usize].deploy_hour).max(0.0)
    }

    /// Whether the machine is in service at fleet time `hour`.
    pub fn is_deployed(&self, machine: u32, hour: f64) -> bool {
        hour >= self.machines[machine as usize].deploy_hour
    }

    /// Machines in service at fleet time `hour`.
    pub fn deployed_count(&self, hour: f64) -> u64 {
        self.machines
            .iter()
            .filter(|m| m.deploy_hour <= hour)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = FleetTopology::build(FleetConfig::tiny(100, 7));
        let b = FleetTopology::build(FleetConfig::tiny(100, 7));
        assert_eq!(a.machines(), b.machines());
        let c = FleetTopology::build(FleetConfig::tiny(100, 8));
        assert_ne!(a.machines(), c.machines());
    }

    #[test]
    fn product_mix_roughly_matches_weights() {
        let topo = FleetTopology::build(FleetConfig::tiny(10_000, 3));
        let mut counts = vec![0u32; topo.config().products.len()];
        for m in topo.machines() {
            counts[m.product] += 1;
        }
        for (i, p) in topo.config().products.iter().enumerate() {
            let share = counts[i] as f64 / 10_000.0;
            assert!(
                (share - p.fleet_weight).abs() < 0.03,
                "product {i}: share {share} vs weight {}",
                p.fleet_weight
            );
        }
    }

    #[test]
    fn cohorts_spread_over_rollout() {
        let mut cfg = FleetConfig::tiny(1000, 4);
        cfg.rollout_months = 10;
        let topo = FleetTopology::build(cfg);
        let early = topo.deployed_count(730.0); // end of month 1
        let late = topo.deployed_count(7300.0); // end of month 10
        assert!(early > 30 && early < 300, "early = {early}");
        assert_eq!(late, 1000);
    }

    #[test]
    fn core_iteration_matches_totals() {
        let topo = FleetTopology::build(FleetConfig::tiny(50, 5));
        let counted: u64 = (0..50).map(|m| topo.cores_of(m).count() as u64).sum();
        assert_eq!(counted, topo.total_cores());
    }

    #[test]
    fn age_accounts_for_deployment() {
        let mut cfg = FleetConfig::tiny(10, 6);
        cfg.rollout_months = 12;
        let topo = FleetTopology::build(cfg);
        let dh = topo.machines()[3].deploy_hour;
        assert_eq!(topo.age_hours(3, dh - 1.0), 0.0);
        assert!((topo.age_hours(3, dh + 100.0) - 100.0).abs() < 1e-9);
    }
}
