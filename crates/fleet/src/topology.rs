//! Fleet topology: machines, sockets, cores, deployment cohorts.

use crate::product::CpuProduct;
use mercurial_fault::{CoreUid, CounterRng};
use serde::{Deserialize, Serialize};

/// Static fleet configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of machines.
    pub machines: u32,
    /// Sockets per machine.
    pub sockets_per_machine: u8,
    /// The product catalog machines are drawn from (weighted).
    pub products: Vec<CpuProduct>,
    /// Months over which the fleet was deployed (cohorts spread uniformly;
    /// 0 means everything deployed at hour 0).
    pub rollout_months: u32,
    /// Master seed for population sampling.
    pub seed: u64,
}

impl FleetConfig {
    /// A small default fleet: 20,000 machines, 2 sockets, rolled out over
    /// a year — big enough to show "a few mercurial cores per several
    /// thousand machines" with real counts, small enough for a laptop.
    pub fn default_fleet() -> FleetConfig {
        FleetConfig {
            machines: 20_000,
            sockets_per_machine: 2,
            products: CpuProduct::default_catalog(),
            rollout_months: 12,
            seed: 0x5eed,
        }
    }

    /// A miniature fleet for unit tests.
    pub fn tiny(machines: u32, seed: u64) -> FleetConfig {
        FleetConfig {
            machines,
            sockets_per_machine: 1,
            products: CpuProduct::default_catalog(),
            rollout_months: 0,
            seed,
        }
    }
}

/// Resolved per-machine facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineInfo {
    /// Machine index.
    pub machine: u32,
    /// Index into the product catalog.
    pub product: usize,
    /// Hour (from window start) the machine entered service.
    pub deploy_hour: f64,
}

/// The materialized fleet: every machine's product and deployment time.
#[derive(Debug, Clone)]
pub struct FleetTopology {
    config: FleetConfig,
    machines: Vec<MachineInfo>,
    total_cores: u64,
    /// Deploy hours sorted ascending (ties by machine index). Deployment
    /// is monotone — machines never undeploy — so "how many machines (or
    /// cores) are in service at `hour`" is a binary search here instead
    /// of a fleet scan.
    deploy_hours_sorted: Vec<f64>,
    /// Prefix sums of core counts in deploy order:
    /// `cores_deploy_prefix[k]` = total cores on the `k` earliest-deployed
    /// machines (length `machines + 1`).
    cores_deploy_prefix: Vec<u64>,
}

impl FleetTopology {
    /// Materializes a topology from configuration (deterministic in the
    /// seed).
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty or all weights are zero.
    pub fn build(config: FleetConfig) -> FleetTopology {
        assert!(!config.products.is_empty(), "need at least one product");
        let total_weight: f64 = config.products.iter().map(|p| p.fleet_weight).sum();
        assert!(total_weight > 0.0, "product weights must not all be zero");
        let mut machines = Vec::with_capacity(config.machines as usize);
        let mut total_cores = 0u64;
        for m in 0..config.machines {
            let mut rng = CounterRng::from_parts(config.seed, m as u64, 0x746f, 0);
            // Weighted product draw.
            let mut pick = rng.next_uniform() * total_weight;
            let mut product = 0;
            for (i, p) in config.products.iter().enumerate() {
                if pick < p.fleet_weight {
                    product = i;
                    break;
                }
                pick -= p.fleet_weight;
                product = i;
            }
            let deploy_hour = if config.rollout_months == 0 {
                0.0
            } else {
                rng.next_uniform() * config.rollout_months as f64 * 730.0
            };
            total_cores += config.products[product].cores_per_socket as u64
                * config.sockets_per_machine as u64;
            machines.push(MachineInfo {
                machine: m,
                product,
                deploy_hour,
            });
        }
        let mut deploy_order: Vec<u32> = (0..config.machines).collect();
        deploy_order.sort_by(|&a, &b| {
            machines[a as usize]
                .deploy_hour
                .partial_cmp(&machines[b as usize].deploy_hour)
                .expect("deploy hours are finite")
                .then(a.cmp(&b))
        });
        let deploy_hours_sorted: Vec<f64> = deploy_order
            .iter()
            .map(|&m| machines[m as usize].deploy_hour)
            .collect();
        let mut cores_deploy_prefix = Vec::with_capacity(deploy_order.len() + 1);
        cores_deploy_prefix.push(0u64);
        let mut running = 0u64;
        for &m in &deploy_order {
            running += config.products[machines[m as usize].product].cores_per_socket as u64
                * config.sockets_per_machine as u64;
            cores_deploy_prefix.push(running);
        }
        FleetTopology {
            config,
            machines,
            total_cores,
            deploy_hours_sorted,
            cores_deploy_prefix,
        }
    }

    /// The configuration this topology was built from.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Per-machine facts.
    pub fn machines(&self) -> &[MachineInfo] {
        &self.machines
    }

    /// A machine's product.
    pub fn product_of(&self, machine: u32) -> &CpuProduct {
        &self.config.products[self.machines[machine as usize].product]
    }

    /// Total cores across the fleet.
    pub fn total_cores(&self) -> u64 {
        self.total_cores
    }

    /// Iterates every core UID of a machine.
    pub fn cores_of(&self, machine: u32) -> impl Iterator<Item = CoreUid> + '_ {
        let cores = self.product_of(machine).cores_per_socket;
        let sockets = self.config.sockets_per_machine;
        (0..sockets).flat_map(move |s| (0..cores).map(move |c| CoreUid::new(machine, s, c)))
    }

    /// A machine's age in hours at fleet time `hour` (0 if not yet
    /// deployed).
    pub fn age_hours(&self, machine: u32, hour: f64) -> f64 {
        (hour - self.machines[machine as usize].deploy_hour).max(0.0)
    }

    /// Whether the machine is in service at fleet time `hour`.
    pub fn is_deployed(&self, machine: u32, hour: f64) -> bool {
        hour >= self.machines[machine as usize].deploy_hour
    }

    /// Number of cores on a machine.
    pub fn cores_on(&self, machine: u32) -> u64 {
        self.product_of(machine).cores_per_socket as u64 * self.config.sockets_per_machine as u64
    }

    /// Machines in service at fleet time `hour` (binary search over the
    /// sorted deploy hours — O(log machines), not a fleet scan).
    pub fn deployed_count(&self, hour: f64) -> u64 {
        self.deploy_hours_sorted.partition_point(|&d| d <= hour) as u64
    }

    /// Cores in service at fleet time `hour` (prefix sums in deploy
    /// order — O(log machines)).
    pub fn deployed_cores(&self, hour: f64) -> u64 {
        self.cores_deploy_prefix[self.deploy_hours_sorted.partition_point(|&d| d <= hour)]
    }

    /// Cores in service at fleet time `hour` on machines in `[lo, hi)` —
    /// the shard-scoped companion of [`FleetTopology::deployed_cores`].
    /// Summed over a partition of the machine range this equals the
    /// global closed form exactly (both count the same integer cores), so
    /// shard-local screening accounting stays bit-identical in aggregate.
    pub fn deployed_cores_in_range(&self, lo: u32, hi: u32, hour: f64) -> u64 {
        let hi = (hi as usize).min(self.machines.len());
        let lo = (lo as usize).min(hi);
        self.machines[lo..hi]
            .iter()
            .filter(|m| m.deploy_hour <= hour)
            .map(|m| self.cores_on(m.machine))
            .sum()
    }

    /// The hour at (and after) which every machine is in service; 0 for
    /// an empty fleet.
    pub fn rollout_end_hour(&self) -> f64 {
        self.deploy_hours_sorted.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let a = FleetTopology::build(FleetConfig::tiny(100, 7));
        let b = FleetTopology::build(FleetConfig::tiny(100, 7));
        assert_eq!(a.machines(), b.machines());
        let c = FleetTopology::build(FleetConfig::tiny(100, 8));
        assert_ne!(a.machines(), c.machines());
    }

    #[test]
    fn product_mix_roughly_matches_weights() {
        let topo = FleetTopology::build(FleetConfig::tiny(10_000, 3));
        let mut counts = vec![0u32; topo.config().products.len()];
        for m in topo.machines() {
            counts[m.product] += 1;
        }
        for (i, p) in topo.config().products.iter().enumerate() {
            let share = counts[i] as f64 / 10_000.0;
            assert!(
                (share - p.fleet_weight).abs() < 0.03,
                "product {i}: share {share} vs weight {}",
                p.fleet_weight
            );
        }
    }

    #[test]
    fn cohorts_spread_over_rollout() {
        let mut cfg = FleetConfig::tiny(1000, 4);
        cfg.rollout_months = 10;
        let topo = FleetTopology::build(cfg);
        let early = topo.deployed_count(730.0); // end of month 1
        let late = topo.deployed_count(7300.0); // end of month 10
        assert!(early > 30 && early < 300, "early = {early}");
        assert_eq!(late, 1000);
    }

    #[test]
    fn core_iteration_matches_totals() {
        let topo = FleetTopology::build(FleetConfig::tiny(50, 5));
        let counted: u64 = (0..50).map(|m| topo.cores_of(m).count() as u64).sum();
        assert_eq!(counted, topo.total_cores());
    }

    #[test]
    fn deployed_counts_match_naive_scans() {
        let mut cfg = FleetConfig::tiny(500, 9);
        cfg.rollout_months = 8;
        cfg.sockets_per_machine = 2;
        let topo = FleetTopology::build(cfg);
        for hour in [0.0, 1.0, 365.0, 730.0, 2500.0, 5840.0, 1e6] {
            let naive_machines = topo
                .machines()
                .iter()
                .filter(|m| m.deploy_hour <= hour)
                .count() as u64;
            let naive_cores: u64 = topo
                .machines()
                .iter()
                .filter(|m| m.deploy_hour <= hour)
                .map(|m| topo.cores_on(m.machine))
                .sum();
            assert_eq!(topo.deployed_count(hour), naive_machines, "hour {hour}");
            assert_eq!(topo.deployed_cores(hour), naive_cores, "hour {hour}");
        }
        assert_eq!(topo.deployed_cores(1e9), topo.total_cores());
    }

    #[test]
    fn rollout_end_hour_is_the_last_deploy() {
        let mut cfg = FleetConfig::tiny(200, 11);
        cfg.rollout_months = 6;
        let topo = FleetTopology::build(cfg);
        let max = topo
            .machines()
            .iter()
            .map(|m| m.deploy_hour)
            .fold(0.0, f64::max);
        assert_eq!(topo.rollout_end_hour(), max);
        assert_eq!(topo.deployed_count(max), 200);
        assert!(topo.deployed_count(max - 1e-6) < 200);
        let flat = FleetTopology::build(FleetConfig::tiny(10, 1));
        assert_eq!(flat.rollout_end_hour(), 0.0);
    }

    #[test]
    fn cores_on_matches_iteration() {
        let mut cfg = FleetConfig::tiny(40, 13);
        cfg.sockets_per_machine = 2;
        let topo = FleetTopology::build(cfg);
        for m in 0..40 {
            assert_eq!(topo.cores_on(m), topo.cores_of(m).count() as u64);
        }
    }

    #[test]
    fn age_accounts_for_deployment() {
        let mut cfg = FleetConfig::tiny(10, 6);
        cfg.rollout_months = 12;
        let topo = FleetTopology::build(cfg);
        let dh = topo.machines()[3].deploy_hour;
        assert_eq!(topo.age_hours(3, dh - 1.0), 0.0);
        assert!((topo.age_hours(3, dh + 100.0) - 100.0).abs() < 1e-9);
    }
}
