//! Property-based tests on the fleet simulator's statistical machinery.

use mercurial_fault::{CounterRng, OperatingPoint};
use mercurial_fleet::population::TestSpec;
use mercurial_fleet::sim::poisson;
use mercurial_fleet::topology::{FleetConfig, FleetTopology};
use mercurial_fleet::Population;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Poisson draws are non-negative and roughly mean-lambda over a batch.
    #[test]
    fn poisson_sane(seed in any::<u64>(), lambda in 0.01f64..200.0) {
        let mut rng = CounterRng::new(seed);
        let n = 2_000;
        let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
        let mean = sum as f64 / n as f64;
        // Loose 6-sigma band on the sample mean.
        let tol = 6.0 * (lambda / n as f64).sqrt() + 0.05;
        prop_assert!((mean - lambda).abs() < tol, "lambda {lambda}, mean {mean}");
    }

    /// Topology construction is a pure function of the config.
    #[test]
    fn topology_deterministic(machines in 1u32..200, seed in any::<u64>()) {
        let a = FleetTopology::build(FleetConfig::tiny(machines, seed));
        let b = FleetTopology::build(FleetConfig::tiny(machines, seed));
        prop_assert_eq!(a.machines(), b.machines());
        prop_assert_eq!(a.total_cores(), b.total_cores());
    }

    /// Detection probability is monotone in the op budget and bounded.
    #[test]
    fn detection_probability_monotone_in_ops(
        seed in any::<u64>(),
        draw in 0u64..500,
        ops_small in 1u64..10_000,
    ) {
        let uid = mercurial_fault::CoreUid::new(1, 0, 0);
        let profile = mercurial_fault::library::sample_profile(seed, draw);
        let pop = Population::with_explicit(seed, vec![(uid, profile)]);
        let spec_small = TestSpec::uniform(ops_small, OperatingPoint::NOMINAL);
        let spec_large = TestSpec::uniform(ops_small * 16, OperatingPoint::NOMINAL);
        // Mature age so latent defects are active.
        let age = 10.0 * 365.25 * 24.0;
        let p_small = pop.detection_probability(uid, &spec_small, age);
        let p_large = pop.detection_probability(uid, &spec_large, age);
        prop_assert!((0.0..=1.0).contains(&p_small));
        prop_assert!((0.0..=1.0).contains(&p_large));
        prop_assert!(p_large >= p_small - 1e-12);
    }

    /// Screening a healthy core can never fail, under any spec.
    #[test]
    fn healthy_cores_never_indicted(
        seed in any::<u64>(),
        ops in 1u64..10_000_000,
        test_id in any::<u64>(),
    ) {
        let pop = Population::with_explicit(seed, vec![]);
        let uid = mercurial_fault::CoreUid::new(3, 1, 7);
        let spec = TestSpec::uniform(ops, OperatingPoint::NOMINAL);
        prop_assert!(!pop.screen_core(uid, &spec, 1000.0, test_id));
    }
}
