//! `mercurial-lab` — the command-line front end of the laboratory.
//!
//! ```text
//! mercurial-lab scenario                      # print a default scenario JSON
//! mercurial-lab pipeline [--seed N] [--paper] [--scenario FILE]
//! mercurial-lab fig1     [--seed N] [--paper] [--csv FILE]
//! mercurial-lab screen   <archetype> [--age HOURS]
//! mercurial-lab trace    [--seed N] [--paper] [--format FMT] [--out FILE]
//! mercurial-lab watch    [--rules FILE] [--scenario FILE | --trace FILE]
//! mercurial-lab audit    [--scenario FILE | --trace FILE] [--format FMT] [--out FILE]
//! mercurial-lab serve    [--workers N] [--impair FILE] [--procs] [--status ADDR]
//! mercurial-lab prof     [--seed N] [--paper] [--scenario FILE] [--format FMT]
//! mercurial-lab archetypes                    # list the §2 defect archetypes
//! ```

use mercurial::closedloop::{ClosedLoopDriver, RunOptions};
use mercurial::fault::{library, CoreUid, Injector};
use mercurial::pipeline::PipelineRun;
use mercurial::screening::chipscreen::ChipScreen;
use mercurial::screening::{Divergence, DivergenceFinder};
use mercurial::simcpu::{CoreConfig, SimCore};
use mercurial::trace::incident_timeline;
use mercurial::{report, run_fig1, Scenario};

fn usage() -> ! {
    eprintln!(
        "usage: mercurial-lab <command>\n\
         \n\
         commands:\n\
         scenario                         print the default scenario as JSON\n\
         pipeline [--seed N] [--paper] [--scenario FILE]\n\
         .                                run the full detect/quarantine/triage pipeline\n\
         fig1     [--seed N] [--paper] [--csv FILE]\n\
         .                                regenerate Figure 1 (normalized report rates)\n\
         screen <archetype> [--age H]     screen one defective core with the corpus\n\
         trace    [--seed N] [--paper] [--scenario FILE]\n\
         .        [--format jsonl|prom|chrome|timeline|summary] [--out FILE]\n\
         .                                run the closed loop with tracing on and export telemetry\n\
         watch    [--rules FILE] [--seed N] [--paper] [--scenario FILE | --trace FILE]\n\
         .        [--baseline FILE] [--record-baseline] [--stream FILE]\n\
         .        [--dump-rules [--format json|prom]]\n\
         .                                evaluate alert rules over a run (or replay a JSONL\n\
         .                                trace); exits 1 if any rule fires\n\
         audit    [--seed N] [--paper] [--scenario FILE | --trace FILE]\n\
         .        [--format report|cases|jsonl] [--out FILE]\n\
         .                                score the loop's decisions against ground truth:\n\
         .                                fleet postmortem, per-core case files, or the raw\n\
         .                                decision ledger (replayable from an exported trace)\n\
         serve    [--seed N] [--paper] [--scenario FILE] [--workers N]\n\
         .        [--impair FILE] [--status ADDR] [--procs]\n\
         .                                run the closed loop as a service: N fleet-shard\n\
         .                                workers streaming to one scoreboard/watch server\n\
         .                                (--procs forks real worker processes)\n\
         serve-worker --connect HOST:PORT\n\
         .                                connect to a serve server and run the assigned shard\n\
         prof     [--seed N] [--paper] [--scenario FILE]\n\
         .        [--format table|folded] [--out FILE]\n\
         .                                run the closed loop with the wall-clock phase\n\
         .                                profiler attached and print the phase tree, or\n\
         .                                folded stacks for flamegraph.pl\n\
         archetypes                       list the available defect archetypes"
    );
    std::process::exit(2)
}

struct Args {
    flags: Vec<(String, Option<String>)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                let value = raw.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            } else {
                positional.push(raw[i].clone());
            }
            i += 1;
        }
        Args { flags, positional }
    }

    fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }
}

fn scenario_from_args(args: &Args) -> Scenario {
    if let Some(path) = args.value("scenario") {
        let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read scenario file {path}: {e}");
            std::process::exit(1);
        });
        return Scenario::from_json(&json).unwrap_or_else(|e| {
            eprintln!("invalid scenario JSON: {e}");
            std::process::exit(1);
        });
    }
    let seed: u64 = args
        .value("seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(0xacce55);
    if args.flag("paper") {
        let mut s = Scenario::default_paper();
        s.fleet.seed = seed;
        s
    } else {
        Scenario::demo(seed)
    }
}

fn cmd_pipeline(args: &Args) {
    let scenario = scenario_from_args(args);
    eprintln!(
        "running pipeline: {} machines, {} months …",
        scenario.fleet.machines, scenario.sim.months
    );
    let outcome = PipelineRun::execute(&scenario);
    println!("{}", report::detection_table(&outcome));
    println!("{}", report::symptom_table(&outcome));
}

fn cmd_fig1(args: &Args) {
    let scenario = scenario_from_args(args);
    eprintln!(
        "running Figure 1 pipeline: {} machines, {} months …",
        scenario.fleet.machines, scenario.sim.months
    );
    let result = run_fig1(&scenario);
    println!("{}", result.render());
    println!("auto trend slope: {:+.4}/month", result.auto_trend_slope());
    if let Some(path) = args.value("csv") {
        std::fs::write(path, result.to_csv()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("normalized series written to {path}");
    }
}

fn cmd_trace(args: &Args) {
    let mut scenario = scenario_from_args(args);
    scenario.trace.enabled = true;
    scenario.trace.machine_spans |= args.flag("machine-spans");
    scenario.closed_loop.feedback = true;
    let format = args.value("format").unwrap_or("summary");
    eprintln!(
        "tracing closed loop: {} machines, {} months …",
        scenario.fleet.machines, scenario.sim.months
    );
    let out = ClosedLoopDriver::execute(&scenario);
    let label = |id: u64| CoreUid::from_u64(id).to_string();
    let rendered = match format {
        "jsonl" => out.trace.to_jsonl(),
        "prom" => out.trace.to_prometheus(),
        "chrome" => out.trace.to_chrome_trace(),
        "timeline" => incident_timeline(&out.trace, &label),
        "summary" => {
            let m = &out.trace.metrics;
            let mut s = format!(
                "trace: {} events, {} counters, {} gauges, {} histograms\n",
                out.trace.events.len(),
                m.counters().count(),
                m.gauges().count(),
                m.histograms().count()
            );
            for (name, v) in m.counters() {
                s.push_str(&format!("  counter {name:<24} {v}\n"));
            }
            for (name, h) in m.histograms() {
                s.push_str(&format!(
                    "  histo   {name:<24} n={} p50={:.1} p95={:.1} p99={:.1}\n",
                    h.count(),
                    h.p50().unwrap_or(0.0),
                    h.p95().unwrap_or(0.0),
                    h.p99().unwrap_or(0.0)
                ));
            }
            s.push('\n');
            s.push_str(&incident_timeline(&out.trace, &label));
            s
        }
        other => {
            eprintln!("unknown --format `{other}` (jsonl|prom|chrome|timeline|summary)");
            std::process::exit(2);
        }
    };
    match args.value("out") {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("trace ({format}) written to {path}");
        }
        None => print!("{rendered}"),
    }
}

fn cmd_watch(args: &Args) {
    use mercurial::trace::JsonlStreamSink;
    use mercurial::watch::{Baseline, RuleSet, WatchInput};

    if args.value("scenario").is_some() && args.value("trace").is_some() {
        eprintln!("watch: --scenario and --trace are mutually exclusive");
        std::process::exit(2);
    }

    // Rules: an explicit file wins; otherwise the scenario's `watch`
    // block (including its defaults) supplies them.
    let explicit_rules = args.value("rules").map(|path| {
        let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read rules file {path}: {e}");
            std::process::exit(1);
        });
        RuleSet::from_json(&json).unwrap_or_else(|e| {
            eprintln!("invalid rules file {path}: {e}");
            std::process::exit(1);
        })
    });

    let baseline_path = args.value("baseline").unwrap_or("BASELINE_watch.json");
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(json) => Some(Baseline::from_json(&json).unwrap_or_else(|e| {
            eprintln!("invalid baseline file {baseline_path}: {e}");
            std::process::exit(1);
        })),
        Err(_) => None,
    };

    // Replay mode: evaluate the rules over an exported JSONL trace.
    if let Some(path) = args.value("trace") {
        let jsonl = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read trace file {path}: {e}");
            std::process::exit(1);
        });
        let input = WatchInput::from_jsonl(&jsonl).unwrap_or_else(|e| {
            eprintln!("cannot replay trace {path}: {e}");
            std::process::exit(1);
        });
        let rules = explicit_rules.unwrap_or_else(|| Scenario::default_paper().watch.rule_set());
        let report = rules.evaluate(&input, baseline.as_ref());
        print!("{}", report.render());
        std::process::exit(if report.any_fired() { 1 } else { 0 });
    }

    // Scenario mode: run the closed loop with tracing forced on so the
    // in-loop engine sees the full metric surface.
    let mut scenario = scenario_from_args(args);
    scenario.trace.enabled = true;
    scenario.closed_loop.feedback = true;
    let rules = explicit_rules.unwrap_or_else(|| scenario.watch.rule_set());
    if args.flag("dump-rules") {
        match args.value("format").unwrap_or("json") {
            "json" => println!("{}", rules.to_json()),
            // The in-loop epoch is one simulation step; Prometheus
            // durations and lookbacks are derived from its length.
            "prom" => print!(
                "{}",
                rules.to_prometheus_rules("mercurial-watch", scenario.sim.epoch_hours)
            ),
            other => {
                eprintln!("unknown --format `{other}` for --dump-rules (json|prom)");
                std::process::exit(2);
            }
        }
        return;
    }
    eprintln!(
        "watching closed loop: {} machines, {} months, {} rules …",
        scenario.fleet.machines,
        scenario.sim.months,
        rules.rules.len()
    );

    let experiment = mercurial::FleetExperiment::build(&scenario);
    let mut stream = args.value("stream").map(|path| {
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create stream file {path}: {e}");
            std::process::exit(1);
        });
        JsonlStreamSink::new(std::io::BufWriter::new(file))
    });
    let opts = RunOptions {
        rules: Some(rules.clone()),
        baseline: baseline.as_ref(),
        sink: stream
            .as_mut()
            .map(|s| s as &mut dyn mercurial::trace::TraceSink),
        prof: None,
    };
    let out = ClosedLoopDriver::execute_with(&scenario, &experiment, opts);

    if args.flag("record-baseline") {
        let input = WatchInput::from_run(&out.trace.metrics, &out.series);
        let snap = Baseline::record(
            &rules,
            &input,
            args.value("scenario").unwrap_or("(builtin)"),
            scenario.fleet.seed,
        );
        std::fs::write(baseline_path, snap.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        eprintln!("baseline recorded to {baseline_path}");
        return;
    }

    let report = out.watch.expect("rules were supplied");
    print!("{}", report.render());
    std::process::exit(if report.any_fired() { 1 } else { 0 });
}

fn cmd_audit(args: &Args) {
    use mercurial::audit::{AuditReport, CaseBook, DecisionLedger, GroundTruth};

    if args.value("scenario").is_some() && args.value("trace").is_some() {
        eprintln!("audit: --scenario and --trace are mutually exclusive");
        std::process::exit(2);
    }
    let format = args.value("format").unwrap_or("report");
    let rule_names = |s: &Scenario| -> Vec<String> {
        s.watch
            .rule_set()
            .rules
            .iter()
            .map(|r| r.name.clone())
            .collect()
    };

    // Replay mode: rebuild the ledger from an exported JSONL trace. Rule
    // names fall back to the paper scenario's rule set (same fallback the
    // watch replay uses); out-of-range indices render as `rule-<n>`.
    let (ledger, truth, rules, max_cases) = if let Some(path) = args.value("trace") {
        let jsonl = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read trace file {path}: {e}");
            std::process::exit(1);
        });
        let ledger = DecisionLedger::from_trace_jsonl(&jsonl).unwrap_or_else(|e| {
            eprintln!("cannot replay trace {path}: {e}");
            std::process::exit(1);
        });
        let truth = GroundTruth::from_ledger(&ledger);
        let paper = Scenario::default_paper();
        let max_cases = paper.audit.max_cases;
        (ledger, truth, rule_names(&paper), max_cases)
    } else {
        // In-run mode: the audit block is forced on (which forces tracing
        // on), and ground truth is annotated with fault-profile names —
        // an enrichment the replay path cannot reconstruct.
        let mut scenario = scenario_from_args(args);
        scenario.audit.enabled = true;
        scenario.closed_loop.feedback = true;
        eprintln!(
            "auditing closed loop: {} machines, {} months …",
            scenario.fleet.machines, scenario.sim.months
        );
        let experiment = mercurial::FleetExperiment::build(&scenario);
        let out = ClosedLoopDriver::execute_on(&scenario, &experiment);
        let ledger = DecisionLedger::from_trace(&out.trace);
        let mut truth = GroundTruth::from_ledger(&ledger);
        for core in experiment.population().mercurial_cores() {
            truth.annotate(core.uid.as_u64(), core.profile.name.clone());
        }
        let max_cases = scenario.audit.max_cases;
        (ledger, truth, rule_names(&scenario), max_cases)
    };

    let rendered = match format {
        "report" => AuditReport::build(&ledger, &truth, &rules).render(),
        "cases" => CaseBook::build(&ledger, &truth, max_cases)
            .render(&|id| CoreUid::from_u64(id).to_string()),
        "jsonl" => ledger.to_jsonl(),
        other => {
            eprintln!("unknown --format `{other}` (report|cases|jsonl)");
            std::process::exit(2);
        }
    };
    match args.value("out") {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("audit ({format}) written to {path}");
        }
        None => print!("{rendered}"),
    }
}

fn cmd_serve(args: &Args) {
    use mercurial_serve::{run_served, run_server, ServeOptions};
    use std::net::TcpListener;

    let mut scenario = scenario_from_args(args);
    scenario.closed_loop.feedback = true;
    if let Some(w) = args.value("workers") {
        scenario.serve.workers = w.parse().expect("--workers takes an integer");
    }
    if let Some(path) = args.value("impair") {
        let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read impairment file {path}: {e}");
            std::process::exit(1);
        });
        scenario.serve.impair = serde_json::from_str(&json).unwrap_or_else(|e| {
            eprintln!("invalid impairment JSON {path}: {e}");
            std::process::exit(1);
        });
    }
    let workers = scenario.serve.workers.max(1);
    let opts = ServeOptions {
        status_addr: args.value("status").map(str::to_string),
        ..ServeOptions::default()
    };
    eprintln!(
        "serving closed loop: {} machines, {} months, {} worker{} ({}) …",
        scenario.fleet.machines,
        scenario.sim.months,
        workers,
        if workers == 1 { "" } else { "s" },
        if args.flag("procs") {
            "processes"
        } else {
            "threads"
        }
    );

    // Demo mode with --procs: real child processes speaking the protocol
    // over loopback TCP; otherwise worker threads over the same sockets.
    let served = if args.flag("procs") {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr").to_string();
        let exe = std::env::current_exe().expect("current exe");
        let mut children: Vec<std::process::Child> = (0..workers)
            .map(|_| {
                std::process::Command::new(&exe)
                    .args(["serve-worker", "--connect", &addr])
                    .spawn()
                    .unwrap_or_else(|e| {
                        eprintln!("cannot spawn worker process: {e}");
                        std::process::exit(1);
                    })
            })
            .collect();
        let out = run_server(&listener, &scenario, &opts);
        for child in &mut children {
            let status = child.wait().expect("wait for worker");
            if !status.success() {
                eprintln!("worker process exited with {status}");
            }
        }
        out
    } else {
        run_served(&scenario, &opts)
    }
    .unwrap_or_else(|e| {
        eprintln!("serve failed: {e}");
        std::process::exit(1);
    });

    println!("{}", report::detection_table(&served.outcome.pipeline));
    let l = &served.link;
    println!(
        "link: {} evidence frames, {} dropped, {} delayed, {} duplicated, {} reordered",
        l.frames, l.dropped, l.delayed, l.duplicated, l.reordered
    );
    if let Some(watch) = &served.outcome.watch {
        print!("{}", watch.render());
        std::process::exit(if watch.any_fired() { 1 } else { 0 });
    }
}

fn cmd_prof(args: &Args) {
    use mercurial::audit::DecisionLedger;
    use mercurial_prof::Prof;

    // Every observability surface on: tracing, watch, audit. The profile
    // should show what a fully instrumented production loop costs, and the
    // profiler itself is write-only — `prof_parity` pins that attaching it
    // moves no output bit.
    let mut scenario = scenario_from_args(args);
    scenario.trace.enabled = true;
    scenario.watch.enabled = true;
    scenario.audit.enabled = true;
    scenario.closed_loop.feedback = true;
    let format = args.value("format").unwrap_or("table");
    eprintln!(
        "profiling closed loop: {} machines, {} months …",
        scenario.fleet.machines, scenario.sim.months
    );

    let experiment = mercurial::FleetExperiment::build(&scenario);
    let prof = Prof::enabled();
    let opts = RunOptions {
        prof: Some(&prof),
        ..RunOptions::default()
    };
    let out = ClosedLoopDriver::execute_with(&scenario, &experiment, opts);

    // The post-run export work an operator pays for, attributed too:
    // trace serialization and the decision-ledger fold.
    let trace_bytes = {
        let _p = prof.span("trace.export");
        out.trace.to_jsonl().len()
    };
    let decisions = {
        let _p = prof.span("audit.fold");
        DecisionLedger::from_trace(&out.trace).len()
    };
    eprintln!(
        "run complete: {} detections, {} trace bytes exported, {} audited decisions",
        out.pipeline.detections.len(),
        trace_bytes,
        decisions
    );

    let profile = prof.finish();
    let rendered = match format {
        "table" => profile.render_table(),
        "folded" => {
            let mut s = profile.folded_stacks().join("\n");
            s.push('\n');
            s
        }
        other => {
            eprintln!("unknown --format `{other}` (table|folded)");
            std::process::exit(2);
        }
    };
    match args.value("out") {
        Some(path) => {
            std::fs::write(path, &rendered).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("profile ({format}) written to {path}");
        }
        None => print!("{rendered}"),
    }
}

fn cmd_serve_worker(args: &Args) {
    let Some(addr) = args.value("connect") else {
        eprintln!("serve-worker: --connect HOST:PORT is required");
        std::process::exit(2);
    };
    if let Err(e) = mercurial_serve::connect_and_serve(addr) {
        eprintln!("serve-worker: {e}");
        std::process::exit(1);
    }
}

fn archetype_by_name(name: &str) -> Option<mercurial::fault::CoreFaultProfile> {
    Some(match name {
        "self-inverting-aes" => library::self_inverting_aes(),
        "string-bitflip" => library::string_bitflip(11, 0.3),
        "lock-violator" => library::lock_violator(0.3),
        "vector-copy-coupled" => library::vector_copy_coupled(0.3),
        "freq-sensitive-fma" => library::freq_sensitive_fma(0.9),
        "low-freq-worse-alu" => library::low_freq_worse_alu(0.9),
        "late-onset-muldiv" => library::late_onset_muldiv(5000.0, 0.1),
        "data-pattern-vector" => library::data_pattern_vector(0.5),
        "addressgen-crasher" => library::addressgen_crasher(0.5),
        "loadstore-corruptor" => library::loadstore_corruptor(0.3),
        _ => return None,
    })
}

fn cmd_screen(args: &Args) {
    let Some(name) = args.positional.get(1) else {
        eprintln!("screen: which archetype? (try `mercurial-lab archetypes`)");
        std::process::exit(2);
    };
    let Some(profile) = archetype_by_name(name) else {
        eprintln!("unknown archetype `{name}` (try `mercurial-lab archetypes`)");
        std::process::exit(2);
    };
    let age: f64 = args
        .value("age")
        .map(|s| s.parse().expect("--age takes hours"))
        .unwrap_or(0.0);
    let mut core = SimCore::new(
        CoreConfig::default(),
        Some(Injector::new(1, profile.clone())),
    );
    core.set_age_hours(age);
    let screen = ChipScreen::new(3);
    let report = screen.screen(&mut core);
    println!("archetype: {name} (age {age} h)");
    println!("corpus screen: {}", report.summary());
    for (kernel, outcome) in &report.outcomes {
        println!("  {kernel:<16} {outcome:?}");
    }
    // If indicted, localize with the divergence finder on the first
    // failing kernel's program.
    if report.failed() {
        let corpus = mercurial::corpus::sim_corpus();
        if let Some(kernel) = corpus
            .iter()
            .find(|k| report.failing_kernels().contains(&k.name))
        {
            let finder = DivergenceFinder::default();
            let mut suspect = SimCore::new(CoreConfig::default(), Some(Injector::new(1, profile)));
            suspect.set_age_hours(age);
            let mut reference = SimCore::new(CoreConfig::default(), None);
            match finder.compare(&mut suspect, &mut reference, &kernel.program, &kernel.init_mem)
            {
                Divergence::At { pc, step, unit, inst } => println!(
                    "forensics: first divergence in `{}` at pc {pc} (step {step}): {inst} on {unit}",
                    kernel.name
                ),
                Divergence::SuspectTrapped { trap, step } => println!(
                    "forensics: suspect trapped in `{}` at step {step}: {trap}",
                    kernel.name
                ),
                other => println!("forensics: {other:?}"),
            }
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&raw);
    match args.positional.first().map(String::as_str) {
        Some("scenario") => println!("{}", Scenario::default_paper().to_json()),
        Some("pipeline") => cmd_pipeline(&args),
        Some("fig1") => cmd_fig1(&args),
        Some("screen") => cmd_screen(&args),
        Some("trace") => cmd_trace(&args),
        Some("watch") => cmd_watch(&args),
        Some("audit") => cmd_audit(&args),
        Some("serve") => cmd_serve(&args),
        Some("serve-worker") => cmd_serve_worker(&args),
        Some("prof") => cmd_prof(&args),
        Some("archetypes") => {
            for a in library::ARCHETYPES {
                println!("{a}");
            }
        }
        _ => usage(),
    }
}
