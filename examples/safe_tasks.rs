//! Safe-task placement on quarantined cores (§6.1), with the caveat.
//!
//! "More speculatively, one might identify a set of tasks that can run
//! safely on a given mercurial core (if these tasks avoid a defective
//! execution unit), avoiding the cost of stranding those cores. It is not
//! clear, though, if we can reliably identify safe tasks with respect to a
//! specific defective core."
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example safe_tasks
//! ```

use mercurial::fault::FunctionalUnit as U;
use mercurial::fleet::topology::{FleetConfig, FleetTopology};
use mercurial::fleet::Population;
use mercurial::isolation::{PlacementDecision, SafeTaskPolicy, TaskUnitProfile};

fn task_mix() -> Vec<(TaskUnitProfile, f64)> {
    vec![
        (
            TaskUnitProfile::new(
                "scalar-batch",
                vec![U::ScalarAlu, U::LoadStore, U::BranchUnit, U::AddressGen],
                false,
            ),
            0.35,
        ),
        (
            TaskUnitProfile::new(
                "gemm-training",
                vec![U::Fma, U::VectorPipe, U::LoadStore, U::AddressGen],
                false,
            ),
            0.25,
        ),
        (
            TaskUnitProfile::new(
                "tls-frontend",
                vec![U::CryptoUnit, U::ScalarAlu, U::LoadStore, U::AddressGen],
                false,
            ),
            0.15,
        ),
        (
            TaskUnitProfile::new(
                "db-shard",
                vec![
                    U::ScalarAlu,
                    U::Atomics,
                    U::LoadStore,
                    U::BranchUnit,
                    U::AddressGen,
                ],
                false,
            ),
            0.15,
        ),
        (
            // The trap: declares scalar-only units but copies buffers all
            // day — and copies run on the vector pipe.
            TaskUnitProfile::new(
                "log-shipper",
                vec![U::ScalarAlu, U::LoadStore, U::AddressGen],
                true,
            ),
            0.10,
        ),
    ]
}

fn main() {
    // A fleet's worth of quarantined cores with known defective units.
    let mut cfg = FleetConfig::default_fleet();
    cfg.machines = 10_000;
    cfg.seed = 4242;
    let topo = FleetTopology::build(cfg);
    let pop = Population::seed_from(&topo);
    let defective_sets: Vec<Vec<U>> = pop
        .mercurial_cores()
        .map(|c| c.profile.afflicted_units())
        .collect();
    println!(
        "{} quarantined cores; defective-unit histogram:",
        defective_sets.len()
    );
    for unit in U::ALL {
        let n = defective_sets.iter().filter(|s| s.contains(&unit)).count();
        if n > 0 {
            println!("  {unit:<12} {n}");
        }
    }

    let policy = SafeTaskPolicy;
    let mix = task_mix();
    let recovered = policy.capacity_recovered(&mix, &defective_sets);
    println!(
        "\nunit-aware placement recovers {:.0}% of the stranded capacity",
        100.0 * recovered
    );

    // The caveat, quantified: audit every placement the policy would make
    // against the tasks' *actual* unit usage.
    let mut placements = 0u32;
    let mut hidden_conflicts = 0u32;
    for defective in &defective_sets {
        for (task, _) in &mix {
            if let PlacementDecision::Place { .. } = policy.evaluate(task, defective) {
                placements += 1;
                if policy.audit(task, defective)
                    != mercurial::isolation::safetask::PlacementAudit::ActuallySafe
                {
                    hidden_conflicts += 1;
                    if hidden_conflicts <= 3 {
                        println!(
                            "  HIDDEN CONFLICT: '{}' placed on a core with defective {:?} — \
                             its bulk copies secretly use the vector pipe",
                            task.name, defective
                        );
                    }
                }
            }
        }
    }
    println!(
        "\nplacements the scheduler would make: {placements}; of those, {hidden_conflicts} \
         ({:.1}%) are silently unsafe.",
        100.0 * hidden_conflicts as f64 / placements.max(1) as f64
    );
    println!(
        "that is the paper's warning, measured: declared unit profiles are not ground \
         truth,\nbecause the instruction → unit mapping is non-obvious (§5)."
    );
}
