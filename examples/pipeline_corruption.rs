//! The paper's §1 motivating incident, reproduced at instruction level.
//!
//! "Imagine you are running a massive-scale data-analysis pipeline in
//! production, and one day it starts to give you wrong answers …
//! Investigation fingers a surprising cause: an innocuous change to a
//! low-level library. The change itself was correct, but it caused servers
//! to make heavier use of otherwise rarely-used instructions. Moreover,
//! only a small subset of the server machines are repeatedly responsible
//! for the errors."
//!
//! Here, version 1 of the pipeline's copy routine moves records with
//! scalar loads/stores; version 2 — the "innocuous" optimization — uses
//! the bulk-copy instruction, which executes on the vector pipe. One core
//! of the simulated chip has a vector-pipe defect. Version 1 is correct
//! everywhere; version 2 silently corrupts records, but only on that core,
//! repeatedly. An end-to-end checksum on the write path (§6's Colossus
//! pattern) is what finally catches it.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pipeline_corruption
//! ```

use mercurial::fault::library;
use mercurial::mitigation::ChecksummedStore;
use mercurial::simcpu::{assemble, Chip, ChipConfig, Program};

/// V1: copy 256 bytes record-by-record with scalar loads/stores.
fn scalar_copy_program() -> Program {
    assemble(
        "li x1, 1024       ; src
         li x2, 4096       ; dst
         li x3, 0          ; offset
         li x4, 256        ; len
         loop:
         add x5, x1, x3
         ld x6, x5, 0
         add x7, x2, x3
         st x6, x7, 0
         addi x3, x3, 8
         blt x3, x4, loop
         halt",
    )
    .expect("v1 assembles")
}

/// V2: the innocuous optimization — one bulk copy (vector pipe!).
fn memcpy_program() -> Program {
    assemble(
        "li x1, 4096       ; dst
         li x2, 1024       ; src
         li x3, 256        ; len
         memcpy x1, x2, x3
         halt",
    )
    .expect("v2 assembles")
}

fn record() -> Vec<u8> {
    (0..256u32).map(|i| (i * 37 + 11) as u8).collect()
}

fn run_copy_on_core(chip: &mut Chip, core: u16, prog: &Program) -> Vec<u8> {
    let rec = record();
    chip.mem().write_bytes(1024, &rec).expect("staging fits");
    chip.mem().fill(4096, 256, 0).expect("clear dst");
    chip.run_core(core, prog)
        .expect("copy programs do not trap");
    chip.mem().read_bytes(4096, 256).expect("read back")
}

fn main() {
    // A 6-core server whose core 4 has the §5 vector/copy-coupled defect,
    // firing on roughly a quarter of vulnerable operations.
    let defective_core = 4u16;
    let profile = library::vector_copy_coupled(0.25);
    let mut chip = Chip::new(
        ChipConfig {
            cores: 6,
            seed: 99,
            ..ChipConfig::default()
        },
        vec![(defective_core, profile)],
    );

    let v1 = scalar_copy_program();
    let v2 = memcpy_program();
    let golden = record();

    println!("=== before the library change (scalar copies) ===");
    for core in 0..6 {
        let out = run_copy_on_core(&mut chip, core, &v1);
        println!(
            "core {core}: {}",
            if out == golden {
                "records intact"
            } else {
                "RECORDS CORRUPTED"
            }
        );
    }

    println!("\n=== after the library change (bulk memcpy → vector pipe) ===");
    let mut corrupt_runs_per_core = [0u32; 6];
    for trial in 0..20 {
        for core in 0..6 {
            let out = run_copy_on_core(&mut chip, core, &v2);
            if out != golden {
                corrupt_runs_per_core[core as usize] += 1;
            }
            let _ = trial;
        }
    }
    for (core, bad) in corrupt_runs_per_core.iter().enumerate() {
        println!("core {core}: {bad}/20 runs corrupted");
    }
    println!("\nonly core {defective_core} misbehaves — and only under the new instruction mix,");
    println!("exactly the §1 incident: correct change, defective silicon, silent wrong answers.");

    // §6's defense: the application's end-to-end checksummed write path
    // refuses corrupted copies before they are persisted.
    println!("\n=== with an end-to-end checksummed write path (Colossus pattern) ===");
    let mut store = ChecksummedStore::new();
    let mut refused = 0;
    let mut accepted = 0;
    for i in 0..20 {
        let persisted = run_copy_on_core(&mut chip, defective_core, &v2);
        let key = format!("record-{i}");
        // The write path "copies" by returning what the defective core
        // produced; the client-side CRC was computed on the true record.
        match store.put_via(&key, &golden, |_| persisted.clone()) {
            Ok(()) => accepted += 1,
            Err(_) => refused += 1,
        }
    }
    println!("writes accepted: {accepted}, corrupt writes refused: {refused}");
    println!("no silent corruption reaches storage; every refusal is also a CEE signal");
    println!("for the suspect-core report service, pointing at core {defective_core}.");
    assert!(
        refused > 0,
        "the defective core must corrupt at least one of 20 writes"
    );
}
