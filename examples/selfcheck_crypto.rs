//! The self-inverting AES case study (§2), end to end.
//!
//! "A deterministic AES mis-computation, which was 'self-inverting':
//! encrypting and decrypting on the same core yielded the identity
//! function, but decryption elsewhere yielded gibberish."
//!
//! This example demonstrates, on the instruction-level simulator:
//!
//! 1. the defective core encrypts wrongly, yet its own decryption undoes
//!    the damage — a roundtrip self-check passes;
//! 2. decrypting the same ciphertext on a healthy core yields gibberish;
//! 3. a *cross-implementation* check (§7's self-checking library, hardened
//!    per this case study) catches the defect immediately;
//! 4. the corpus screening kernel catches it too, because it compares
//!    golden ciphertext, not just the roundtrip.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example selfcheck_crypto
//! ```

use mercurial::corpus::aes::{Aes, KeySize};
use mercurial::fault::{library, Injector};
use mercurial::mitigation::{cross_checked_encrypt, SelfCheckError};
use mercurial::screening::chipscreen::ChipScreen;
use mercurial::simcpu::{assemble, crypto, CoreConfig, Memory, SimCore};

const KEY: [u8; 16] = *b"production key!!";
const PLAINTEXT: [u8; 16] = *b"customer record.";

/// Builds the AES-128 encrypt(+decrypt) program and stages keys in memory.
fn aes_program(mem: &mut Memory, decrypt_too: bool) -> mercurial::simcpu::Program {
    let keys = crypto::expand_key_128(KEY);
    let state0 = u128::from_le_bytes(PLAINTEXT) ^ keys[0];
    mem.write_bytes(0, &state0.to_le_bytes())
        .expect("state fits");
    for (i, &k) in keys[1..11].iter().enumerate() {
        mem.write_bytes(64 + 16 * i as u64, &k.to_le_bytes())
            .expect("keys fit");
    }
    mem.write_bytes(256, &keys[0].to_le_bytes())
        .expect("k0 fits");
    let mut src = String::from("li x1, 0\nvld v0, x1, 0\n");
    for i in 0..10 {
        src.push_str(&format!("li x2, {}\nvld v1, x2, 0\n", 64 + 16 * i));
        src.push_str(if i < 9 {
            "aesenc v0, v1\n"
        } else {
            "aesenclast v0, v1\n"
        });
    }
    src.push_str("vext x3, v0, 0\nvext x4, v0, 1\nout x3\nout x4\n");
    if decrypt_too {
        src.push_str(&format!(
            "li x2, {}\nvld v1, x2, 0\naesdeclast v0, v1\n",
            64 + 16 * 9
        ));
        for i in (0..9).rev() {
            src.push_str(&format!(
                "li x2, {}\nvld v1, x2, 0\naesdec v0, v1\n",
                64 + 16 * i
            ));
        }
        src.push_str("li x2, 256\nvld v1, x2, 0\nvxor v0, v0, v1\n");
        src.push_str("vext x5, v0, 0\nvext x6, v0, 1\nout x5\nout x6\n");
    }
    src.push_str("halt\n");
    assemble(&src).expect("AES program assembles")
}

fn lanes_to_block(lo: u64, hi: u64) -> [u8; 16] {
    (((hi as u128) << 64) | lo as u128).to_le_bytes()
}

fn main() {
    let honest_ct = crypto::aes128_encrypt_block(KEY, PLAINTEXT);

    // The defective core: §2's self-inverting crypto lesion.
    let mut bad_core = SimCore::new(
        CoreConfig::default(),
        Some(Injector::new(7, library::self_inverting_aes())),
    );
    let mut mem = Memory::new(1 << 12);
    let prog = aes_program(&mut mem, true);
    bad_core
        .run(&prog, &mut mem)
        .expect("AES program completes");
    let out = bad_core.output().to_vec();
    let bad_ct = lanes_to_block(out[0], out[1]);
    let recovered = lanes_to_block(out[2], out[3]);

    println!("honest ciphertext:      {honest_ct:02x?}");
    println!("defective ciphertext:   {bad_ct:02x?}");
    println!("same-core decryption:   {recovered:02x?} (the plaintext!)");
    assert_ne!(bad_ct, honest_ct, "the defect corrupts the ciphertext");
    assert_eq!(
        recovered, PLAINTEXT,
        "yet encrypt∘decrypt on the same core is the identity"
    );
    println!("\n→ a roundtrip self-check on the defective core PASSES while the");
    println!("  ciphertext is garbage. Data encrypted here is unreadable anywhere else:\n");

    // Decrypt the defective ciphertext on a HEALTHY core.
    let sw = Aes::new(KeySize::Aes128, &KEY).expect("valid key");
    let elsewhere = sw.decrypt_block(bad_ct);
    println!("healthy-core decryption of the defective ciphertext: {elsewhere:02x?}");
    assert_ne!(elsewhere, PLAINTEXT, "gibberish, as the paper reports");

    // §7's hardened self-checking library: a cross-implementation second
    // opinion catches what the roundtrip cannot.
    let mut defective_enc_core = SimCore::new(
        CoreConfig::default(),
        Some(Injector::new(7, library::self_inverting_aes())),
    );
    let verdict = cross_checked_encrypt(
        PLAINTEXT,
        |_block| {
            let mut mem = Memory::new(1 << 12);
            let prog = aes_program(&mut mem, false);
            defective_enc_core.reset();
            defective_enc_core.run(&prog, &mut mem).expect("completes");
            let o = defective_enc_core.output();
            lanes_to_block(o[0], o[1])
        },
        |block| sw.encrypt_block(block),
    );
    println!("\ncross-implementation check on the defective core: {verdict:?}");
    assert_eq!(verdict.unwrap_err(), SelfCheckError::CrossCheckMismatch);

    // And the screening corpus catches the core outright, because its AES
    // kernel compares golden ciphertext lanes, not just the roundtrip.
    let screen = ChipScreen::new(1);
    let mut suspect = SimCore::new(
        CoreConfig::default(),
        Some(Injector::new(7, library::self_inverting_aes())),
    );
    let report = screen.screen(&mut suspect);
    println!("corpus screen verdict: {}", report.summary());
    assert!(report.failing_kernels().contains(&"aes-roundtrip"));
    println!("\nthe defective core is indicted and goes to quarantine.");
}
