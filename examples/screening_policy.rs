//! Offline vs. online screening: the §6 tradeoff, measured.
//!
//! "Online screening, when it can be done in a way that does not impact
//! concurrent workloads, is free (except for power costs), but cannot
//! always provide complete coverage … Offline screening can be more
//! intrusive and can be scheduled to ensure coverage of all cores, and
//! could involve exposing CPUs to operating conditions (f, V, T) outside
//! normal ranges. However, draining a workload from the core … can be
//! expensive."
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example screening_policy
//! ```

use mercurial::fault::FastSet;
use mercurial::fleet::topology::{FleetConfig, FleetTopology};
use mercurial::fleet::{Population, SignalLog};
use mercurial::screening::{OfflineScreener, OnlineScreener};
use std::collections::HashSet;

fn main() {
    let mut cfg = FleetConfig::default_fleet();
    cfg.machines = 3_000;
    cfg.seed = 777;
    let topo = FleetTopology::build(cfg);
    let pop = Population::seed_from(&topo);
    let months = 24;
    println!(
        "fleet: 3000 machines, {} ground-truth mercurial cores, {months} months\n",
        pop.count()
    );

    // Offline-only campaign.
    let offline = OfflineScreener {
        fraction_per_sweep: 0.15,
        ..OfflineScreener::default()
    };
    let mut detected = FastSet::default();
    let mut log = SignalLog::new();
    let (off_records, off_stats) = offline.run(&topo, &pop, months, &mut detected, &mut log);

    // Online-only campaign.
    let online = OnlineScreener::default();
    let mut detected = FastSet::default();
    let mut log = SignalLog::new();
    let (on_records, on_stats) = online.run(&topo, &pop, months, &mut detected, &mut log);

    let mean_hour = |records: &[mercurial::screening::DetectionRecord]| {
        if records.is_empty() {
            f64::NAN
        } else {
            records.iter().map(|r| r.hour).sum::<f64>() / records.len() as f64
        }
    };

    println!("policy     detections  mean-detect-month  drained-machine-hours  test-ops");
    println!(
        "offline    {:>10}  {:>17.1}  {:>21.0}  {:>9.2e}",
        off_records.len(),
        mean_hour(&off_records) / 730.0,
        off_stats.drained_machine_hours,
        off_stats.test_ops as f64,
    );
    println!(
        "online     {:>10}  {:>17.1}  {:>21.0}  {:>9.2e}",
        on_records.len(),
        mean_hour(&on_records) / 730.0,
        on_stats.drained_machine_hours,
        on_stats.test_ops as f64,
    );

    // Which defects did each policy catch that the other could not?
    let off_set: HashSet<_> = off_records.iter().map(|r| r.core).collect();
    let on_set: HashSet<_> = on_records.iter().map(|r| r.core).collect();
    let only_offline: Vec<_> = off_set.difference(&on_set).collect();
    let only_online: Vec<_> = on_set.difference(&off_set).collect();
    println!(
        "\ncaught only by offline sweeps (f,V,T-sensitive or rare defects): {}",
        only_offline.len()
    );
    for core in only_offline.iter().take(5) {
        if let Some(p) = pop.profile_of(**core) {
            println!("  {core} — {}", p.name);
        }
    }
    println!(
        "caught only by online screening (timing luck on flaky defects): {}",
        only_online.len()
    );
    println!(
        "\nthe tradeoff, as §6 frames it: offline buys coverage (operating-point sweeps,\n\
         guaranteed rotation) at {:.0} machine-hours of drain; online is free but blind\n\
         to anything that only fails outside the nominal operating point.",
        off_stats.drained_machine_hours
    );
}
