//! Quickstart: seed a fleet with mercurial cores at the paper's incidence,
//! run the full detect → quarantine → triage pipeline, and print the
//! summary tables plus a miniature Figure 1.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mercurial::prelude::*;
use mercurial::report;

fn main() {
    let scenario = Scenario::demo(2024);
    println!("scenario: {}", scenario.name);
    println!(
        "fleet: {} machines, {} months observation\n",
        scenario.fleet.machines, scenario.sim.months
    );

    // Ground truth first: how many mercurial cores did manufacturing give
    // us? (§1: "a few mercurial cores per several thousand machines".)
    let experiment = FleetExperiment::build(&scenario);
    println!(
        "ground truth: {} mercurial cores ({:.2} per 1000 machines)",
        experiment.population().count(),
        experiment.incidence_per_kmachine(),
    );
    for core in experiment.population().mercurial_cores().take(5) {
        println!("  e.g. {} — {}", core.uid, core.profile.name);
    }
    println!();

    // The full §6 pipeline: burn-in, offline/online screening, signal
    // triage, quarantine.
    let result = run_fig1(&scenario);
    println!("{}", report::detection_table(&result.outcome));
    println!("{}", report::symptom_table(&result.outcome));
    println!("{}", result.render());
    println!(
        "auto-detector trend slope: {:+.4} per month (the paper: 'gradually increasing')",
        result.auto_trend_slope()
    );
}
