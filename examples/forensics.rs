//! Forensics: extracting a confession with evidence.
//!
//! §6: confirmed mercurial cores require "extract[ing] 'confessions' via
//! further testing (often after first developing a new automatable test)",
//! and §9 asks for methods "to efficiently record sufficient forensic
//! evidence". This example plays the human investigator: a suspect core is
//! run in lockstep against a reference core over the screening corpus, and
//! the first architectural divergence — program counter, disassembled
//! instruction, implicated functional unit — is the forensic record.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example forensics
//! ```

use mercurial::corpus::sim_corpus;
use mercurial::fault::{library, CoreFaultProfile, Injector};
use mercurial::screening::{Divergence, DivergenceFinder};
use mercurial::simcpu::{CoreConfig, SimCore};

fn investigate(name: &str, profile: CoreFaultProfile) {
    println!("── suspect: {name} ──");
    let finder = DivergenceFinder::default();
    let corpus = sim_corpus();
    for kernel in &corpus {
        let mut suspect = SimCore::new(
            CoreConfig::default(),
            Some(Injector::new(0xf0, profile.clone())),
        );
        let mut reference = SimCore::new(CoreConfig::default(), None);
        match finder.compare(
            &mut suspect,
            &mut reference,
            &kernel.program,
            &kernel.init_mem,
        ) {
            Divergence::None => {}
            Divergence::At {
                pc,
                step,
                unit,
                inst,
            } => {
                println!(
                    "  kernel `{}` diverged at pc {pc} (retired instruction #{step}):",
                    kernel.name
                );
                println!("      {inst}");
                println!("  implicated unit: {unit}");
                println!("  → evidence for the quarantine ticket; a new automatable test");
                println!("    can now target this instruction class directly.\n");
                return;
            }
            Divergence::SuspectTrapped { trap, step } => {
                println!(
                    "  kernel `{}` trapped on the suspect at instruction #{step}: {trap}\n",
                    kernel.name
                );
                return;
            }
            Divergence::ReferenceTrapped(t) => {
                println!("  corpus kernel `{}` is itself broken: {t}", kernel.name);
                return;
            }
        }
    }
    println!("  no divergence found — the defect needs conditions this corpus lacks\n");
}

fn main() {
    println!("lockstep divergence analysis over the screening corpus\n");
    investigate(
        "vector/copy-coupled defect (§5)",
        library::vector_copy_coupled(0.8),
    );
    investigate("multiplier with late-onset defect, aged in", {
        // Manifest: age past onset before investigating.
        library::late_onset_muldiv(0.0, 0.8)
    });
    investigate("self-inverting AES (§2)", library::self_inverting_aes());
    investigate(
        "pattern-gated ghost (zero-day: corpus can't trigger it)",
        library::data_pattern_vector(1e-12),
    );
}
