//! Offline stand-in for `bytes`.
//!
//! [`Bytes`] here is an immutable, cheaply cloneable byte buffer backed by
//! an `Arc<Vec<u8>>` — reference-counted clones like the real crate, minus
//! zero-copy slicing, which this workspace does not use.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    /// The buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::new(data),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl From<&str> for Bytes {
    fn from(data: &str) -> Bytes {
        Bytes::copy_from_slice(data.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.data == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_clone_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(std::ptr::eq(b.as_ref(), c.as_ref()));
    }

    #[test]
    fn deref_gives_slice_methods() {
        let b = Bytes::from("hello".as_bytes());
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert_eq!(&b[1..3], b"el");
    }
}
