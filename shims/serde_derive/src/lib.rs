//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses — non-generic structs (named,
//! tuple, unit) and enums (unit, tuple, and struct variants) — using only
//! the compiler-provided `proc_macro` API. Named-struct fields honour
//! `#[serde(default)]` and `#[serde(default = "path")]`: a missing key
//! falls back to `Default::default()` or the named constructor instead of
//! erroring, matching real serde's behaviour. The generated code targets
//! the value-tree model of the sibling `serde` shim and follows serde's
//! standard data model, so JSON produced by the real serde_json (e.g.
//! `scenarios/paper.json`) parses unchanged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled in during deserialization.
enum FieldDefault {
    /// `#[serde(default)]` — `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

/// One parsed named field and its `#[serde(default)]` marker, if any.
struct Field {
    name: String,
    default: Option<FieldDefault>,
}

enum Shape {
    /// `struct S { a: T, b: U }`
    NamedStruct(Vec<Field>),
    /// `struct S(T, U);` — arity recorded.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&tokens, &mut i)?;

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::NamedStruct(parse_named_fields(g.stream())?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                Ok(Item {
                    name,
                    shape: Shape::TupleStruct(arity),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item {
                name,
                shape: Shape::UnitStruct,
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item {
                name,
                shape: Shape::Enum(parse_variants(g.stream())?),
            }),
            other => Err(format!("expected enum body, got {other:?}")),
        },
        other => Err(format!("expected `struct` or `enum`, got `{other}`")),
    }
}

/// Advances `i` past any `#[...]` attributes and `pub` / `pub(...)`
/// visibility qualifiers.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                match tokens.get(*i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
                    other => return Err(format!("malformed attribute: {other:?}")),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `(crate)` etc.
                    }
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Splits a token sequence on top-level commas, tracking `<...>` nesting
/// (angle brackets are plain punctuation in token trees).
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                parts.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(tt);
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for part in split_top_level_commas(stream) {
        if part.is_empty() {
            continue;
        }
        let mut i = 0;
        let default = parse_field_attributes(&part, &mut i)?;
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Advances `i` past field attributes and visibility, extracting a
/// `#[serde(default)]` / `#[serde(default = "path")]` marker if present.
fn parse_field_attributes(
    tokens: &[TokenTree],
    i: &mut usize,
) -> Result<Option<FieldDefault>, String> {
    let mut default = None;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                match tokens.get(*i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        if let Some(d) = parse_serde_default(g.stream())? {
                            default = Some(d);
                        }
                        *i += 1;
                    }
                    other => return Err(format!("malformed attribute: {other:?}")),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `(crate)` etc.
                    }
                }
            }
            _ => return Ok(default),
        }
    }
}

/// Inspects one attribute body (the tokens inside `#[...]`). Returns the
/// default marker if the attribute is `serde(default)` or
/// `serde(default = "path")`; other attributes yield `None`.
fn parse_serde_default(stream: TokenStream) -> Result<Option<FieldDefault>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(None),
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return Ok(None);
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    match args.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        other => return Err(format!("unsupported serde attribute: {other:?}")),
    }
    match args.get(1) {
        None => Ok(Some(FieldDefault::Trait)),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => match args.get(2) {
            Some(TokenTree::Literal(lit)) => {
                let text = lit.to_string();
                let path = text
                    .strip_prefix('"')
                    .and_then(|t| t.strip_suffix('"'))
                    .ok_or_else(|| format!("serde(default = ...) expects a string, got {text}"))?;
                Ok(Some(FieldDefault::Path(path.to_string())))
            }
            other => Err(format!("malformed serde(default = ...): {other:?}")),
        },
        other => Err(format!("unsupported serde(default) form: {other:?}")),
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|p| !p.is_empty())
        .count()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for part in split_top_level_commas(stream) {
        if part.is_empty() {
            continue;
        }
        let mut i = 0;
        skip_attributes_and_visibility(&part, &mut i)?;
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let kind = match part.get(i) {
            None => VariantKind::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            other => return Err(format!("unsupported variant body: {other:?}")),
        };
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// -------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({n:?}), \
                         ::serde::Serialize::to_value(&self.{n})),",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(arity) => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| gen_serialize_arm(name, v))
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_serialize_arm(type_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{type_name}::{vname} => \
             ::serde::Value::String(::std::string::String::from({vname:?})),"
        ),
        VariantKind::Tuple(1) => format!(
            "{type_name}::{vname}(x0) => ::serde::Value::Object(::std::vec![(\
               ::std::string::String::from({vname:?}), ::serde::Serialize::to_value(x0))]),"
        ),
        VariantKind::Tuple(arity) => {
            let binds: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
            let items: String = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                .collect();
            format!(
                "{type_name}::{vname}({pat}) => ::serde::Value::Object(::std::vec![(\
                   ::std::string::String::from({vname:?}), \
                   ::serde::Value::Array(::std::vec![{items}]))]),",
                pat = binds.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let pat: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({n:?}), \
                         ::serde::Serialize::to_value({n})),",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "{type_name}::{vname} {{ {pat} }} => ::serde::Value::Object(::std::vec![(\
                   ::std::string::String::from({vname:?}), \
                   ::serde::Value::Object(::std::vec![{entries}]))]),",
                pat = pat.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| field_init(f, "entries", name))
                .collect();
            format!(
                "let entries = v.as_object().ok_or_else(|| \
                   ::serde::DeError::expected(\"object\", {name:?}))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(arity) => {
            let inits: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                   ::serde::DeError::expected(\"array\", {name:?}))?;\n\
                 if items.len() != {arity} {{\n\
                   return ::std::result::Result::Err(::serde::DeError::expected(\
                     \"array of length {arity}\", {name:?}));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
               ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

/// Generates one `field_name: <expr>,` initializer for a derived
/// `from_value`, honouring the field's `#[serde(default)]` marker.
fn field_init(f: &Field, entries_var: &str, context: &str) -> String {
    let n = &f.name;
    match &f.default {
        None => format!("{n}: ::serde::field({entries_var}, {n:?}, {context:?})?,"),
        Some(FieldDefault::Trait) => format!(
            "{n}: match ::serde::opt_field({entries_var}, {n:?}, {context:?})? {{\n\
               ::std::option::Option::Some(v) => v,\n\
               ::std::option::Option::None => ::std::default::Default::default(),\n\
             }},"
        ),
        Some(FieldDefault::Path(path)) => format!(
            "{n}: match ::serde::opt_field({entries_var}, {n:?}, {context:?})? {{\n\
               ::std::option::Option::Some(v) => v,\n\
               ::std::option::Option::None => {path}(),\n\
             }},"
        ),
    }
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "{vn:?} => return ::std::result::Result::Ok({name}::{vn}),",
                vn = v.name
            )
        })
        .collect();
    let data_arms: String = variants
        .iter()
        .filter(|v| !matches!(v.kind, VariantKind::Unit))
        .map(|v| gen_deserialize_variant_arm(name, v))
        .collect();
    format!(
        "if let ::serde::Value::String(tag) = v {{\n\
           match tag.as_str() {{ {unit_arms} _ => {{}} }}\n\
           return ::std::result::Result::Err(::serde::DeError(::std::format!(\
             \"unknown {name} variant `{{tag}}`\")));\n\
         }}\n\
         if let ::std::option::Option::Some(entries) = v.as_object() {{\n\
           if entries.len() == 1 {{\n\
             let (tag, payload) = &entries[0];\n\
             match tag.as_str() {{ {data_arms} _ => {{}} }}\n\
             return ::std::result::Result::Err(::serde::DeError(::std::format!(\
               \"unknown {name} variant `{{tag}}`\")));\n\
           }}\n\
         }}\n\
         ::std::result::Result::Err(::serde::DeError::expected(\
           \"variant string or single-key object\", {name:?}))"
    )
}

fn gen_deserialize_variant_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.kind {
        VariantKind::Unit => unreachable!("unit variants handled via string arms"),
        VariantKind::Tuple(1) => format!(
            "{vn:?} => return ::std::result::Result::Ok(\
               {name}::{vn}(::serde::Deserialize::from_value(payload)?)),"
        ),
        VariantKind::Tuple(arity) => {
            let inits: String = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "{vn:?} => {{\n\
                   let items = payload.as_array().ok_or_else(|| \
                     ::serde::DeError::expected(\"array\", {vn:?}))?;\n\
                   if items.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::DeError::expected(\
                       \"array of length {arity}\", {vn:?}));\n\
                   }}\n\
                   return ::std::result::Result::Ok({name}::{vn}({inits}));\n\
                 }}"
            )
        }
        VariantKind::Named(fields) => {
            let inits: String = fields.iter().map(|f| field_init(f, "inner", vn)).collect();
            format!(
                "{vn:?} => {{\n\
                   let inner = payload.as_object().ok_or_else(|| \
                     ::serde::DeError::expected(\"object\", {vn:?}))?;\n\
                   return ::std::result::Result::Ok({name}::{vn} {{ {inits} }});\n\
                 }}"
            )
        }
    }
}
