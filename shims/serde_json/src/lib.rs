//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the `serde` shim's [`Value`] tree as standard JSON
//! text. Output mirrors serde_json's conventions (two-space pretty
//! indentation, shortest-roundtrip float formatting), so files written by
//! the real library — like `scenarios/paper.json` — parse unchanged.

use serde::{DeError, Deserialize, Number, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the value model this shim supports; the `Result` mirrors
/// the upstream signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the value model this shim supports; the `Result` mirrors
/// the upstream signature.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an error describing the first syntax or shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    Ok(T::from_value(&value)?)
}

// --------------------------------------------------------------- printing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(u) => out.push_str(&u.to_string()),
        Number::I64(i) => out.push_str(&i.to_string()),
        // `{:?}` keeps a ".0" (or exponent) so floats stay visibly floats,
        // matching serde_json, and roundtrips exactly.
        Number::F64(f) if f.is_finite() => out.push_str(&format!("{f:?}")),
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            s.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = vec![(1u32, 2.5f64), (3, 4.0)];
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "[[1,2.5],[3,4.0]]");
        let back: Vec<(u32, f64)> = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Vec<(u32, f64)> = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn parses_scientific_notation() {
        let x: f64 = from_str("6e-6").unwrap();
        assert!((x - 6e-6).abs() < 1e-18);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("{not json").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<u8>>("[1,").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn large_u64_is_exact() {
        let n = u64::MAX - 1;
        let json = to_string(&n).unwrap();
        let back: u64 = from_str(&json).unwrap();
        assert_eq!(back, n);
    }
}
