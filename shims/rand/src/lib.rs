//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of `rand` it actually relies on: the [`RngCore`] trait
//! (implemented by `mercurial_fault::CounterRng`) and the [`Error`] type
//! referenced by `try_fill_bytes`. Distribution machinery is not needed —
//! all sampling in the laboratory goes through `CounterRng`'s own methods.

use std::fmt;

/// The core random-number-generator trait, API-compatible with
/// `rand::RngCore` 0.8 for the methods this workspace uses.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fills `dest` with random bytes, reporting failure as an error.
    ///
    /// # Errors
    ///
    /// Infallible for every generator in this workspace; the `Result` only
    /// mirrors the upstream signature.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Error type mirroring `rand::Error` (never constructed here).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error with a static message.
    pub fn new(msg: &'static str) -> Error {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for Error {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.0 as u8;
            }
        }
    }

    #[test]
    fn try_fill_defaults_to_fill() {
        let mut rng = Fixed(7);
        let mut buf = [0u8; 4];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert_eq!(buf, [7, 7, 7, 7]);
    }
}
