//! Offline stand-in for `parking_lot`.
//!
//! Provides a [`Mutex`] with the two properties this workspace relies on
//! that `std::sync::Mutex` lacks: no lock poisoning, and
//! [`Mutex::force_unlock`] — releasing a lock whose guard was
//! `mem::forget`-ten (the `LockLike` harness in `corpus::locks` does
//! exactly that). Built from a `Condvar`-guarded flag plus an
//! `UnsafeCell`; not a fair or parking lock, just a correct one.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex as StdMutex};

/// A mutual-exclusion primitive without poisoning.
pub struct Mutex<T: ?Sized> {
    locked: StdMutex<bool>,
    unlocked: Condvar,
    data: UnsafeCell<T>,
}

// SAFETY: the `locked` flag serialises all access to `data`, so the usual
// Mutex bounds apply: Send payloads make the lock Send and Sync.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// A new unlocked mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            locked: StdMutex::new(false),
            unlocked: Condvar::new(),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the mutex, returning the payload.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let mut locked = self.locked.lock().expect("lock flag never poisoned");
        while *locked {
            locked = self
                .unlocked
                .wait(locked)
                .expect("lock flag never poisoned");
        }
        *locked = true;
        MutexGuard { mutex: self }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let mut locked = self.locked.lock().expect("lock flag never poisoned");
        if *locked {
            None
        } else {
            *locked = true;
            Some(MutexGuard { mutex: self })
        }
    }

    /// Releases a lock acquired by this thread whose guard was leaked
    /// (e.g. via `mem::forget`).
    ///
    /// # Safety
    ///
    /// The mutex must be locked by the calling thread, and no guard for
    /// this acquisition may still be live (it would double-unlock on
    /// drop).
    pub unsafe fn force_unlock(&self) {
        self.unlock_flag();
    }

    /// Mutable access without locking (exclusive borrow proves unique
    /// ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    fn unlock_flag(&self) {
        let mut locked = self.locked.lock().expect("lock flag never poisoned");
        debug_assert!(*locked, "force_unlock/drop of an unlocked Mutex");
        *locked = false;
        drop(locked);
        self.unlocked.notify_one();
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard: the lock is released when this falls out of scope.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: holding the guard means holding the lock; access is
        // exclusive until drop.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, plus `&mut self` forbids aliased access
        // through this guard.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.unlock_flag();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn guard_gives_exclusive_access() {
        let m = Mutex::new(5u32);
        {
            let mut g = m.lock();
            *g += 1;
            assert!(m.try_lock().is_none());
        }
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn forget_then_force_unlock() {
        let m = Mutex::new(());
        std::mem::forget(m.lock());
        assert!(m.try_lock().is_none());
        unsafe { m.force_unlock() };
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn contended_increments_are_not_lost() {
        let m = Arc::new(Mutex::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
