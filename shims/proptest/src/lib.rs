//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro (with `#![proptest_config]`), `any::<T>()`,
//! integer/float range strategies, `collection::vec`, `array::uniform16`,
//! tuple strategies, `Just`, `prop_oneof!`, `prop_map`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic stream (seeded by the test name), so failures reproduce
//! exactly across runs — this repository's whole simulation stack is
//! built on counter-based reproducibility. Failing cases are shrunk by a
//! greedy pass over [`Strategy::shrink`] candidates (integers shrink
//! toward their lower bound or zero, vectors toward their minimum length
//! with per-element shrinks, tuples component-wise); the panic reports
//! the minimal failing input found within a bounded number of attempts.

/// Deterministic generator state backing every strategy draw.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one named test case (SplitMix64 stream).
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64) << 32 | 0x9e37),
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)`; `n` must be positive.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of a failing `value`, most aggressive
    /// first. The default is no shrinking; the `proptest!` runner greedily
    /// replaces the failing input with the first candidate that still
    /// fails, repeating until no candidate fails or the attempt budget is
    /// spent.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

/// A uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given options; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.next_below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Values with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Candidate simplifications of `value` (see [`Strategy::shrink`]).
    /// Default: none.
    fn shrink(_value: &Self) -> Vec<Self> {
        Vec::new()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink(value)
    }
}

/// Integer shrink candidates toward zero: `0`, the halfway point, and the
/// one-step decrement (all distinct from the value itself).
macro_rules! int_shrink_toward_zero {
    ($t:ty, $value:expr) => {{
        let v: $t = *$value;
        let mut out: Vec<$t> = Vec::new();
        if v != 0 {
            out.push(0);
            let half = v / 2;
            if half != 0 {
                out.push(half);
            }
            let step = if v > 0 { v - 1 } else { v + 1 };
            if step != 0 && step != half {
                out.push(step);
            }
        }
        out
    }};
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(value: &$t) -> Vec<$t> {
                int_shrink_toward_zero!($t, value)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_arbitrary_wide {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as $t
            }
            fn shrink(value: &$t) -> Vec<$t> {
                int_shrink_toward_zero!($t, value)
            }
        }
    )*};
}

impl_arbitrary_wide!(u128, i128);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = (rng.next_unit() * 64.0) - 32.0;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * mag.exp2() * rng.next_unit()
    }
    fn shrink(value: &f64) -> Vec<f64> {
        let v = *value;
        if v == 0.0 || !v.is_finite() {
            return Vec::new();
        }
        let mut out = vec![0.0];
        let half = v / 2.0;
        if half != 0.0 {
            out.push(half);
        }
        out
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.next_below(0xD800) as u32).unwrap_or('a')
    }
}

/// Range shrink candidates toward the lower bound: the bound itself, the
/// halfway point, and the one-step decrement (all strictly below `value`).
macro_rules! range_shrink_toward_lo {
    ($t:ty, $lo:expr, $value:expr) => {{
        let lo = $lo as i128;
        let v = *$value as i128;
        let mut out: Vec<$t> = Vec::new();
        for c in [lo, lo + (v - lo) / 2, v - 1] {
            if c >= lo && c < v && !out.contains(&(c as $t)) {
                out.push(c as $t);
            }
        }
        out
    }};
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                range_shrink_toward_lo!($t, self.start, value)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.next_below(span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                range_shrink_toward_lo!($t, *self.start(), value)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_unit() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Component-wise: shrink one position, keep the others.
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = cand;
                        out.push(v);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// A string-literal strategy: the pattern is a small regex subset
/// (literals, escapes, `[...]` classes with ranges, and `{m,n}` / `{n}` /
/// `*` / `+` / `?` repetition), generating matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, min, max) in &atoms {
            let reps = *min + rng.next_below((*max - *min + 1) as u64) as usize;
            for _ in 0..reps {
                out.push(chars[rng.next_below(chars.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Parses the regex subset into (choice-set, min-reps, max-reps) atoms.
fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a class, an escape, or a literal character.
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    let lo = unescape(&chars, &mut j);
                    if j + 1 < close && chars[j] == '-' {
                        j += 1;
                        let hi = unescape(&chars, &mut j);
                        for c in lo..=hi {
                            set.push(c);
                        }
                    } else {
                        set.push(lo);
                    }
                }
                i = close + 1;
                set
            }
            _ => {
                let c = unescape(&chars, &mut i);
                vec![c]
            }
        };
        // Optional repetition suffix.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("repetition lower bound"),
                        hi.parse().expect("repetition upper bound"),
                    ),
                    None => {
                        let n = body.parse().expect("repetition count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(!set.is_empty() && min <= max, "bad pattern {pattern:?}");
        atoms.push((set, min, max));
    }
    atoms
}

fn unescape(chars: &[char], i: &mut usize) -> char {
    let c = chars[*i];
    *i += 1;
    if c != '\\' {
        return c;
    }
    let e = chars[*i];
    *i += 1;
    match e {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy yielding vectors of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            // Length shrinks first (respecting the minimum): jump to the
            // minimum, halve the surplus, drop one element.
            if value.len() > self.size.lo {
                out.push(value[..self.size.lo].to_vec());
                let half = self.size.lo + (value.len() - self.size.lo) / 2;
                if half > self.size.lo && half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            // Then per-element shrinks at every position.
            for (i, item) in value.iter().enumerate() {
                for cand in self.element.shrink(item) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

/// Array strategies (`proptest::array::uniform16`).
pub mod array {
    use super::{Strategy, TestRng};

    /// The strategy returned by [`uniform16`].
    pub struct Uniform16<S> {
        element: S,
    }

    /// A strategy yielding `[T; 16]` arrays of `element` values.
    pub fn uniform16<S: Strategy>(element: S) -> Uniform16<S> {
        Uniform16 { element }
    }

    impl<S: Strategy> Strategy for Uniform16<S>
    where
        S::Value: Clone,
    {
        type Value = [S::Value; 16];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 16] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
        fn shrink(&self, value: &[S::Value; 16]) -> Vec<[S::Value; 16]> {
            // Fixed length: per-element shrinks only.
            let mut out = Vec::new();
            for (i, item) in value.iter().enumerate() {
                for cand in self.element.shrink(item) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

/// The common imports property tests use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Greedily shrinks a failing property input: repeatedly replaces it with
/// the first [`Strategy::shrink`] candidate that still fails, until no
/// candidate fails or the attempt budget is spent. The panic hook is
/// silenced for the duration so shrink probes don't spam stderr.
pub fn shrink_failure<S: Strategy>(
    strategy: &S,
    initial: S::Value,
    run: &dyn Fn(&S::Value),
) -> S::Value {
    const MAX_SHRINK_ATTEMPTS: usize = 1024;
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut best = initial;
    let mut attempts = 0usize;
    let mut progress = true;
    while progress && attempts < MAX_SHRINK_ATTEMPTS {
        progress = false;
        for cand in strategy.shrink(&best) {
            if attempts >= MAX_SHRINK_ATTEMPTS {
                break;
            }
            attempts += 1;
            let failed =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&cand))).is_err();
            if failed {
                best = cand;
                progress = true;
                break;
            }
        }
    }
    std::panic::set_hook(hook);
    best
}

/// Ties a case closure's input type to a strategy's value type (the
/// `proptest!` macro can't annotate the closure parameter directly), and
/// adapts it to the by-reference calling convention the shrinker needs.
pub fn case_runner<S, F>(_strategy: &S, f: F) -> impl Fn(&S::Value)
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value),
{
    move |value| f(value.clone())
}

/// Defines property tests: functions whose arguments are drawn from
/// strategies, run for a configured number of deterministic cases.
/// Failing cases are greedily shrunk before the reporting panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $config; $($rest)*);
    };
    (@with_config $config:expr;) => {};
    (@with_config $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strategy,)+);
            // A re-runnable case closure (the shrinker probes candidates
            // with it); `prop_assume!` skips via early return.
            let run_case = $crate::case_runner(&strategy, |($($arg,)+)| $body);
            for case in 0..config.cases {
                let mut prop_rng =
                    $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), case);
                let value = $crate::Strategy::generate(&strategy, &mut prop_rng);
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| run_case(&value)),
                );
                if outcome.is_err() {
                    let minimal = $crate::shrink_failure(&strategy, value, &run_case);
                    ::std::panic!(
                        "property {} failed at case {}; minimal failing input: {:?}",
                        stringify!($name),
                        case,
                        minimal,
                    );
                }
            }
        }
        $crate::proptest!(@with_config $config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// A uniform choice among several strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let f = crate::Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let inc = crate::Strategy::generate(&(1u8..=255), &mut rng);
            assert!(inc >= 1);
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = crate::TestRng::for_case("lens", 1);
        let strat = crate::collection::vec(any::<u8>(), 3..7);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&strat, &mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself works end to end, including assume-skips.
        #[test]
        fn macro_end_to_end(a in any::<u64>(), b in 1u64..100) {
            prop_assume!(a != 0);
            prop_assert!((1..100).contains(&b));
            prop_assert_ne!(a, 0);
            prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
        }

        /// Oneof and prop_map compose.
        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1.0f64), (0.0f64..1.0).prop_map(|e| e + 2.0)]) {
            prop_assert!(x == 1.0 || (2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn int_range_shrinks_toward_lower_bound() {
        let strat = 10u32..100;
        let cands = crate::Strategy::shrink(&strat, &77);
        assert!(!cands.is_empty());
        assert!(cands.contains(&10), "lower bound is a candidate");
        assert!(cands.iter().all(|&c| (10..77).contains(&c)));
        assert!(
            crate::Strategy::shrink(&strat, &10).is_empty(),
            "lo is minimal"
        );
    }

    #[test]
    fn arbitrary_ints_shrink_toward_zero() {
        assert!(u64::shrink(&0).is_empty());
        let cands = u64::shrink(&100);
        assert!(cands.contains(&0) && cands.contains(&50) && cands.contains(&99));
        let neg = i32::shrink(&-8);
        assert!(neg.contains(&0) && neg.contains(&-4) && neg.contains(&-7));
    }

    #[test]
    fn vec_shrinks_respect_minimum_length() {
        let strat = crate::collection::vec(0u8..10, 2..=6);
        let value = vec![5u8, 7, 9, 3];
        for cand in crate::Strategy::shrink(&strat, &value) {
            assert!(cand.len() >= 2, "shrunk below the size minimum: {cand:?}");
        }
        // Length shrinks reach the minimum directly.
        assert!(crate::Strategy::shrink(&strat, &value)
            .iter()
            .any(|c| c.len() == 2));
    }

    #[test]
    fn shrink_failure_finds_the_boundary() {
        // Property: v < 10. Fails for any v >= 10; the minimal failing
        // input under shrinking is exactly the boundary value 10.
        let strat = (0u64..1000,);
        let run = |v: &(u64,)| assert!(v.0 < 10);
        let minimal = crate::shrink_failure(&strat, (977,), &run);
        assert_eq!(minimal, (10,));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// End to end: the runner reports the shrunken input, not the raw
        /// failing case.
        #[test]
        #[should_panic(expected = "minimal failing input: (10,)")]
        fn failing_property_reports_minimal_input(v in 0u64..1000) {
            prop_assume!(v >= 10); // keep every generated case failing
            prop_assert!(v < 10);
        }
    }
}
