//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark for the configured measurement window, reports the
//! median per-iteration time (plus min/max across samples) on stdout, and
//! honours `cargo bench -- <filter>` substring filtering. No statistical
//! regression analysis, no HTML reports — just honest wall-clock numbers,
//! which is all a single-CPU container can support anyway.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Top-level benchmark harness state.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <substring>` filters benchmarks by name, like the
        // real crate. `--bench` (passed by the harness) is ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
            filter,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement window per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_one(self, name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// Per-element or per-byte throughput annotation for a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
}

/// A parameterised benchmark name (`group/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with both a function name and a parameter.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(self.criterion, &full, self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(self.criterion, &full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is immediate; this is a no-op hook).
    pub fn finish(self) {}
}

/// How `iter_batched` amortises setup cost (size hints are ignored here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// The per-benchmark timing driver handed to the routine closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back to back for the requested iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filter) = &criterion.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }

    // Warm-up: grow the iteration count until one batch fills the warm-up
    // window, which also calibrates how many iterations a sample needs.
    let mut iters: u64 = 1;
    let warm_up_deadline = Instant::now() + criterion.warm_up_time;
    let mut per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed.as_secs_f64() / iters as f64;
        if Instant::now() >= warm_up_deadline {
            break per.max(1e-9);
        }
        iters = iters.saturating_mul(2).min(1 << 30);
    };
    if per_iter <= 0.0 {
        per_iter = 1e-9;
    }

    // Spread the measurement window over the configured sample count.
    let per_sample = criterion.measurement_time.as_secs_f64() / criterion.sample_size as f64;
    let sample_iters = ((per_sample / per_iter).ceil() as u64).max(1);

    let mut samples: Vec<f64> = Vec::with_capacity(criterion.sample_size);
    for _ in 0..criterion.sample_size {
        let mut b = Bencher {
            iters: sample_iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / sample_iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];

    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  thrpt: {}/s", human_bytes(n as f64 / median))
        }
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  thrpt: {} elem/s", human_count(n as f64 / median))
        }
        _ => String::new(),
    };
    println!(
        "{name:<40} time: [{} {} {}]{rate}",
        human_time(min),
        human_time(median),
        human_time(max),
    );
}

fn human_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

fn human_bytes(per_sec: f64) -> String {
    const KIB: f64 = 1024.0;
    if per_sec >= KIB * KIB * KIB {
        format!("{:.2} GiB", per_sec / (KIB * KIB * KIB))
    } else if per_sec >= KIB * KIB {
        format!("{:.2} MiB", per_sec / (KIB * KIB))
    } else if per_sec >= KIB {
        format!("{:.2} KiB", per_sec / KIB)
    } else {
        format!("{per_sec:.0} B")
    }
}

fn human_count(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}K", per_sec / 1e3)
    } else {
        format!("{per_sec:.0}")
    }
}

/// Declares a group of benchmark functions, optionally with a config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_without_panicking() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(3u64).pow(7)));
        let mut group = c.benchmark_group("shim_group");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("inner", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u32, |b, &n| {
            b.iter(|| black_box(n) * 2);
        });
        group.finish();
    }

    #[test]
    fn human_units_format() {
        assert_eq!(human_time(2.5e-9), "2.50 ns");
        assert_eq!(human_time(0.0032), "3.20 ms");
        assert_eq!(human_bytes(2.0 * 1024.0 * 1024.0), "2.00 MiB");
        assert_eq!(human_count(5e6), "5.00M");
    }
}
