//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace ships a
//! minimal serialization framework under the same crate name. Instead of
//! serde's visitor architecture, types convert to and from a JSON-like
//! [`Value`] tree; the companion `serde_json` shim renders and parses the
//! tree as real JSON text. The `#[derive(Serialize, Deserialize)]` macros
//! (from the `serde_derive` shim) generate the conversions with serde's
//! standard data model: structs as objects, tuples as arrays, unit enum
//! variants as strings, data-carrying variants as single-key objects, and
//! newtype structs as their transparent inner value.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (integer or float).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved for stable output.
    Object(Vec<(String, Value)>),
}

/// A JSON number, keeping 64-bit integers exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An unsigned integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// A deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// An error from a custom message.
    pub fn msg(text: impl Into<String>) -> DeError {
        DeError(text.into())
    }

    /// A "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> DeError {
        DeError(format!("expected {what} while deserializing {context}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes an instance from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first mismatch encountered.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// Identity conversions so callers can work with raw JSON trees — e.g.
// `serde_json::from_str::<Value>(text)` to validate arbitrary documents.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Fetches and deserializes a required object field (used by derived
/// `Deserialize` impls).
///
/// # Errors
///
/// Returns an error if the key is missing or its value fails to parse.
pub fn field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    context: &str,
) -> Result<T, DeError> {
    let value = entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{key}` in {context}")))?;
    T::from_value(value).map_err(|e| DeError(format!("field `{key}` of {context}: {}", e.0)))
}

/// Fetches and deserializes an optional object field (used by derived
/// `Deserialize` impls for `#[serde(default)]` fields): a missing key
/// yields `Ok(None)` so the caller can substitute its default.
///
/// # Errors
///
/// Returns an error only if the key is present but its value fails to
/// parse.
pub fn opt_field<T: Deserialize>(
    entries: &[(String, Value)],
    key: &str,
    context: &str,
) -> Result<Option<T>, DeError> {
    match entries.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, value)) => T::from_value(value)
            .map(Some)
            .map_err(|e| DeError(format!("field `{key}` of {context}: {}", e.0))),
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Number(Number::U64(n)) => *n,
                    Value::Number(Number::I64(n)) if *n >= 0 => *n as u64,
                    Value::Number(Number::F64(f))
                        if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 =>
                    {
                        *f as u64
                    }
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::U64(n as u64))
                } else {
                    Value::Number(Number::I64(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Number(Number::I64(n)) => *n,
                    Value::Number(Number::U64(n)) if *n <= i64::MAX as u64 => *n as i64,
                    Value::Number(Number::F64(f)) if f.fract() == 0.0 => *f as i64,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::F64(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(Number::F64(f)) => Ok(*f as $t),
                    Value::Number(Number::U64(n)) => Ok(*n as $t),
                    Value::Number(Number::I64(n)) => Ok(*n as $t),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::expected("array", "fixed-size array"))?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::msg("array length changed during parse"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", "tuple"))?;
                let expect = [$($idx),+].len();
                if items.len() != expect {
                    return Err(DeError(format!(
                        "expected tuple of length {expect}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// Map keys go through their own Serialize/Deserialize impls (as in
// serde_json): a string key is used verbatim and a scalar key becomes its
// text form, so enum keys roundtrip by variant name.
fn key_to_string(key: Value) -> String {
    match key {
        Value::String(s) => s,
        Value::Number(Number::U64(u)) => u.to_string(),
        Value::Number(Number::I64(i)) => i.to_string(),
        Value::Number(Number::F64(f)) => format!("{f:?}"),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key shape: {other:?}"),
    }
}

fn key_from_string<K: Deserialize>(key: &str, context: &str) -> Result<K, DeError> {
    // Try the key as a string first (covers String and unit-enum keys),
    // then as each numeric shape, then as a bool.
    K::from_value(&Value::String(key.to_string()))
        .or_else(|first| {
            if let Ok(u) = key.parse::<u64>() {
                K::from_value(&Value::Number(Number::U64(u)))
            } else if let Ok(i) = key.parse::<i64>() {
                K::from_value(&Value::Number(Number::I64(i)))
            } else if let Ok(f) = key.parse::<f64>() {
                K::from_value(&Value::Number(Number::F64(f)))
            } else if let Ok(b) = key.parse::<bool>() {
                K::from_value(&Value::Bool(b))
            } else {
                Err(first)
            }
        })
        .map_err(|e| DeError(format!("bad map key `{key}` for {context}: {}", e.0)))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys for stable, order-independent output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| DeError::expected("map", "map"))?;
        entries
            .iter()
            .map(|(k, v)| Ok((key_from_string(k, "HashMap")?, V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "BTreeSet")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let entries = value
            .as_object()
            .ok_or_else(|| DeError::expected("map", "map"))?;
        entries
            .iter()
            .map(|(k, v)| Ok((key_from_string(k, "BTreeMap")?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
        let pair = (3u32, 900u32);
        assert_eq!(<(u32, u32)>::from_value(&pair.to_value()).unwrap(), pair);
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn f64_accepts_integer_tokens() {
        assert_eq!(
            f64::from_value(&Value::Number(Number::U64(365))).unwrap(),
            365.0
        );
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::Number(Number::U64(300))).is_err());
    }
}
