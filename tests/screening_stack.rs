//! The §6 detection stack as one integrated flow: raw fleet signals →
//! report service → concentration test → scoreboard → triage →
//! quarantine. This is the paper's operational loop assembled from its
//! parts, with ground truth checked at each stage.

use mercurial::prelude::*;
use mercurial_fleet::SignalKind;
use mercurial_screening::{ConcentrationConfig, ReportService, Scoreboard, SuspectVerdict};

/// Builds a demo fleet, feeds its signal stream through the report
/// service, and checks that concentration-flagged suspects are
/// overwhelmingly genuine while the flood of background noise flags
/// (almost) nobody.
#[test]
fn report_service_concentrates_on_real_defects() {
    let scenario = Scenario::demo(301);
    let experiment = FleetExperiment::build(&scenario);
    if experiment.population().count() == 0 {
        return;
    }
    let (log, _) = experiment.run_signals();
    let total_cores = experiment.topology().total_cores();

    let mut svc = ReportService::new(
        total_cores,
        24.0 * 30.0, // one-month window
        ConcentrationConfig::default(),
    );
    // Applications report every observable corruption signal they see.
    for s in log.all() {
        if matches!(
            s.kind,
            SignalKind::AppChecksumMismatch
                | SignalKind::ReplicaDivergence
                | SignalKind::UserReport
        ) {
            svc.report(s.hour, s.core);
        }
    }
    let horizon = scenario.window_hours();
    let suspects = svc.suspects(horizon);
    // Everyone the concentration test flags at the end of the window
    // should be genuinely mercurial: noise does not concentrate.
    for s in &suspects {
        assert!(
            experiment.population().is_mercurial(s.core),
            "concentration flagged innocent core {}",
            s.core
        );
        assert_eq!(svc.verdict(s.core, horizon), SuspectVerdict::Suspect);
    }
}

/// The scoreboard's top suspect across a busy fleet is a real mercurial
/// core, and screener evidence outweighs crash noise.
#[test]
fn scoreboard_ranks_real_defects_first() {
    let scenario = Scenario::demo(302);
    let experiment = FleetExperiment::build(&scenario);
    if experiment.population().count() == 0 {
        return;
    }
    let (log, _) = experiment.run_signals();
    let mut board = Scoreboard::new();
    board.ingest_all(log.all().iter());
    let suspects = board.suspects(0.8);
    if suspects.is_empty() {
        return; // quiet seed: nothing crossed the threshold
    }
    // The strongest suspect must be genuinely defective.
    assert!(
        experiment.population().is_mercurial(suspects[0].core),
        "top suspect {} is innocent",
        suspects[0].core
    );
}

/// Quarantining every pipeline detection leaves the registry and the
/// capacity ledger mutually consistent.
#[test]
fn pipeline_quarantine_bookkeeping_is_consistent() {
    let scenario = Scenario::demo(303);
    let outcome = mercurial::pipeline::PipelineRun::execute(&scenario);
    let confirmed = outcome.registry.in_state(CoreState::Confirmed);
    assert_eq!(confirmed.len() as u64, outcome.capacity.lost_cores);
    for core in confirmed {
        assert!(!outcome.registry.is_schedulable(core));
        // Every confirmed core has an audit trail ending in Confirmed.
        let history = outcome.registry.history(core);
        assert!(!history.is_empty());
        assert_eq!(history.last().unwrap().to, CoreState::Confirmed);
    }
    // Exonerated-and-restored cores are schedulable again.
    for core in outcome.registry.in_state(CoreState::Healthy) {
        assert!(outcome.registry.is_schedulable(core));
    }
}

/// Detection latency is finite and bounded by the observation window for
/// every detection the pipeline reports.
#[test]
fn detection_latencies_are_sane() {
    let scenario = Scenario::demo(304);
    let outcome = mercurial::pipeline::PipelineRun::execute(&scenario);
    for &latency in &outcome.detection_latency_hours {
        assert!(latency.is_finite());
        assert!(latency >= 0.0);
        assert!(latency <= scenario.window_hours());
    }
    if let Some(median) = outcome.median_latency_hours() {
        assert!(median <= scenario.window_hours());
    }
}
