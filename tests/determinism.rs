//! Reproducibility: every layer of the laboratory is a pure function of
//! its seed, so experiments can be replayed bit-for-bit. (This is also
//! what makes the *paper's* world so hard: production has no seeds.)

use mercurial::fig1::run_fig1;
use mercurial::pipeline::PipelineRun;
use mercurial::prelude::*;

#[test]
fn pipelines_replay_identically() {
    let scenario = Scenario::demo(1234);
    let a = PipelineRun::execute(&scenario);
    let b = PipelineRun::execute(&scenario);
    assert_eq!(a.detections, b.detections);
    assert_eq!(a.triage_stats, b.triage_stats);
    assert_eq!(a.sim_summary, b.sim_summary);
    assert_eq!(a.signals.len(), b.signals.len());
    assert_eq!(a.capacity, b.capacity);
}

#[test]
fn fig1_csv_replays_identically() {
    let scenario = Scenario::demo(777);
    let a = run_fig1(&scenario).to_csv();
    let b = run_fig1(&scenario).to_csv();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = PipelineRun::execute(&Scenario::demo(1));
    let b = PipelineRun::execute(&Scenario::demo(2));
    // Populations differ, so at minimum the signal volume differs.
    assert_ne!(
        (a.ground_truth, a.signals.len()),
        (b.ground_truth, b.signals.len()),
        "distinct seeds should produce observably different fleets"
    );
}

#[test]
fn scenario_json_preserves_behavior() {
    let scenario = Scenario::demo(55);
    let roundtripped = Scenario::from_json(&scenario.to_json()).unwrap();
    let a = PipelineRun::execute(&scenario);
    let b = PipelineRun::execute(&roundtripped);
    assert_eq!(a.detections, b.detections);
}
