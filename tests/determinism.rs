//! Reproducibility: every layer of the laboratory is a pure function of
//! its seed, so experiments can be replayed bit-for-bit. (This is also
//! what makes the *paper's* world so hard: production has no seeds.)

use mercurial::fig1::run_fig1;
use mercurial::pipeline::PipelineRun;
use mercurial::prelude::*;

#[test]
fn pipelines_replay_identically() {
    let scenario = Scenario::demo(1234);
    let a = PipelineRun::execute(&scenario);
    let b = PipelineRun::execute(&scenario);
    assert_eq!(a.detections, b.detections);
    assert_eq!(a.triage_stats, b.triage_stats);
    assert_eq!(a.sim_summary, b.sim_summary);
    assert_eq!(a.signals.len(), b.signals.len());
    assert_eq!(a.capacity, b.capacity);
}

#[test]
fn fig1_csv_replays_identically() {
    let scenario = Scenario::demo(777);
    let a = run_fig1(&scenario).to_csv();
    let b = run_fig1(&scenario).to_csv();
    assert_eq!(a, b);
}

#[test]
fn different_seeds_differ() {
    let a = PipelineRun::execute(&Scenario::demo(1));
    let b = PipelineRun::execute(&Scenario::demo(2));
    // Populations differ, so at minimum the signal volume differs.
    assert_ne!(
        (a.ground_truth, a.signals.len()),
        (b.ground_truth, b.signals.len()),
        "distinct seeds should produce observably different fleets"
    );
}

/// The determinism contract of the parallel runner: for the same seed,
/// `FleetSim::run` is bit-for-bit identical for every thread count.
#[test]
fn fleet_sim_is_thread_count_invariant() {
    use mercurial::fleet::FleetSim;
    use mercurial::fleet::{FleetTopology, Population};

    for seed in [101u64, 202, 303] {
        let mut scenario = Scenario::demo(seed);
        scenario.sim.months = 6;
        let reference = {
            let mut s = scenario.clone();
            s.sim.parallelism = 1;
            let topo = FleetTopology::build(s.fleet.clone());
            let pop = Population::seed_from(&topo);
            FleetSim::new(topo, pop, s.sim.clone()).run()
        };
        for parallelism in [2usize, 8] {
            let mut s = scenario.clone();
            s.sim.parallelism = parallelism;
            let topo = FleetTopology::build(s.fleet.clone());
            let pop = Population::seed_from(&topo);
            let run = FleetSim::new(topo, pop, s.sim.clone()).run();
            assert_eq!(
                run.1, reference.1,
                "summary differs: seed {seed}, {parallelism} threads"
            );
            assert_eq!(
                run.0.all(),
                reference.0.all(),
                "signal log differs: seed {seed}, {parallelism} threads"
            );
        }
    }
}

/// The same contract end to end: the full pipeline's outcome does not
/// depend on the simulator's thread count.
#[test]
fn pipeline_is_thread_count_invariant() {
    for seed in [11u64, 12, 13] {
        let mut scenario = Scenario::small(seed);
        scenario.sim.parallelism = 1;
        let reference = PipelineRun::execute(&scenario);
        for parallelism in [2usize, 8] {
            scenario.sim.parallelism = parallelism;
            let run = PipelineRun::execute(&scenario);
            assert_eq!(
                run.detections, reference.detections,
                "seed {seed}, {parallelism} threads"
            );
            assert_eq!(run.sim_summary, reference.sim_summary);
            assert_eq!(run.signals.all(), reference.signals.all());
            assert_eq!(run.triage_stats, reference.triage_stats);
            assert_eq!(run.capacity, reference.capacity);
        }
    }
}

/// Scenario-level fan-out returns outcomes in input order, identical to
/// serial execution.
#[test]
fn execute_many_matches_serial_execution() {
    let scenarios: Vec<Scenario> = [21u64, 22, 23]
        .iter()
        .map(|&s| Scenario::small(s))
        .collect();
    let fanned = PipelineRun::execute_many(&scenarios, 4);
    assert_eq!(fanned.len(), scenarios.len());
    for (scenario, outcome) in scenarios.iter().zip(&fanned) {
        let serial = PipelineRun::execute(scenario);
        assert_eq!(outcome.detections, serial.detections);
        assert_eq!(outcome.sim_summary, serial.sim_summary);
        assert_eq!(outcome.detected_true, serial.detected_true);
    }
}

#[test]
fn scenario_json_preserves_behavior() {
    let scenario = Scenario::demo(55);
    let roundtripped = Scenario::from_json(&scenario.to_json()).unwrap();
    let a = PipelineRun::execute(&scenario);
    let b = PipelineRun::execute(&roundtripped);
    assert_eq!(a.detections, b.detections);
}
