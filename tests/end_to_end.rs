//! Cross-crate integration: the inject → detect → quarantine → mitigate
//! story, end to end, spanning every crate in the workspace.

use mercurial::prelude::*;
use mercurial_fault::{library, Injector};
use mercurial_isolation::csr::Task;
use mercurial_isolation::{CapacityLedger, CsrSimulator, SafeTaskPolicy, TaskUnitProfile};
use mercurial_mitigation::{dmr, tmr, ChecksummedStore, CostMeter};
use mercurial_screening::chipscreen::ChipScreen;
use mercurial_simcpu::{CoreConfig, Reg, SimCore};

/// A defective core is detected by the corpus screen, quarantined through
/// the registry, surgically removed from a running OS model, and its
/// machine's capacity ledger updated — one flow across four crates.
#[test]
fn detect_quarantine_remove_account() {
    // 1. Detection (screening + simcpu + corpus + fault).
    let profile = library::vector_copy_coupled(0.5);
    let uid = CoreUid::new(12, 0, 3);
    let mut core = SimCore::new(
        CoreConfig {
            uid,
            ..CoreConfig::default()
        },
        Some(Injector::new(5, profile)),
    );
    let screen = ChipScreen::new(3);
    let report = screen.screen(&mut core);
    assert!(report.failed(), "the defective core must be indicted");

    // 2. Quarantine (isolation).
    let mut registry = QuarantineRegistry::new();
    registry.mark_suspect(uid, 100.0, report.summary()).unwrap();
    registry
        .quarantine(uid, 101.0, "corpus screen failed")
        .unwrap();
    registry.confirm(uid, 102.0, "reproduced 3x").unwrap();
    assert!(!registry.is_schedulable(uid));

    // 3. Core surprise removal from the running machine.
    let mut os = CsrSimulator::new(12, 0, 8, 16);
    for t in 0..24 {
        os.spawn(Task::unpinned(t));
    }
    let outcome = os.remove_core(3);
    assert!(outcome.killed.is_empty());
    assert!(os.irqs_consistent());
    assert_eq!(os.online_cores(), 7);

    // 4. Capacity accounting.
    let mut ledger = CapacityLedger::new();
    ledger.register_machine(12, 8);
    ledger.remove_core(uid);
    assert_eq!(ledger.effective_of(12), 7);
    assert_eq!(ledger.pool().heterogeneous_machines, 1);
}

/// Redundant execution masks a mercurial core's wrong answers: the same
/// simulated-core computation is run under DMR and TMR and the corruption
/// never escapes.
#[test]
fn redundancy_masks_simulated_cee() {
    let program = mercurial_simcpu::assemble(
        "li x1, 123456
         li x2, 789
         mul x3, x1, x2
         out x3
         halt",
    )
    .unwrap();
    let correct = 123456u64 * 789;

    // A pool of 6 cores; core 0 has a hot multiplier defect.
    let run_on = |core_idx: usize| {
        let profile = library::late_onset_muldiv(0.0, 1.0);
        let injector = if core_idx == 0 {
            Some(Injector::new(9, profile))
        } else {
            None
        };
        let mut core = SimCore::new(
            CoreConfig {
                uid: CoreUid::new(0, 0, core_idx as u16),
                ..CoreConfig::default()
            },
            injector,
        );
        let mut mem = mercurial_simcpu::Memory::new(1 << 10);
        core.run(&program, &mut mem).expect("program halts");
        core.output()[0]
    };

    // DMR: pair (0,1) disagrees (core 0 lies), pair (2,3) agrees.
    let mut meter = CostMeter::default();
    let value = dmr(run_on, 3, &mut meter).expect("a healthy pair exists");
    assert_eq!(value, correct);
    assert_eq!(meter.retries, 1);

    // TMR over cores {0,1,2}: the defective core is outvoted.
    let mut meter = CostMeter::default();
    let voted = tmr(run_on, &mut meter).expect("majority exists");
    assert_eq!(voted.value, correct);
    assert!(!voted.unanimous, "the corruption was outvoted, not absent");
}

/// The fleet pipeline's confirmed cores can be fed straight into the
/// safe-task policy: stranded capacity is partially recovered.
#[test]
fn pipeline_feeds_safe_task_recovery() {
    let scenario = Scenario::small(91);
    let experiment = FleetExperiment::build(&scenario);
    let defective_sets: Vec<Vec<FunctionalUnit>> = experiment
        .population()
        .mercurial_cores()
        .map(|c| c.profile.afflicted_units())
        .collect();
    if defective_sets.is_empty() {
        return; // tiny fleet may have no defects at this seed
    }
    let policy = SafeTaskPolicy;
    let mix = vec![
        (
            TaskUnitProfile::new(
                "scalar",
                vec![
                    FunctionalUnit::ScalarAlu,
                    FunctionalUnit::LoadStore,
                    FunctionalUnit::BranchUnit,
                    FunctionalUnit::AddressGen,
                ],
                false,
            ),
            0.6,
        ),
        (
            TaskUnitProfile::new(
                "vector",
                vec![FunctionalUnit::VectorPipe, FunctionalUnit::Fma],
                false,
            ),
            0.4,
        ),
    ];
    let recovered = policy.capacity_recovered(&mix, &defective_sets);
    assert!(
        (0.0..=1.0).contains(&recovered),
        "recovery fraction {recovered} out of range"
    );
}

/// A checksummed store refuses data corrupted by a defective simulated
/// core's copy path — mitigation catching what isolation has not yet.
#[test]
fn e2e_store_refuses_simulated_corruption() {
    let profile = library::string_bitflip(13, 1.0);
    let mut core = SimCore::new(CoreConfig::default(), Some(Injector::new(3, profile)));
    let program = mercurial_simcpu::assemble("memcpy x1, x2, x3\nhalt").unwrap();
    let payload: Vec<u8> = (0..64).collect();

    let mut store = ChecksummedStore::new();
    let mut mem = mercurial_simcpu::Memory::new(1 << 12);
    mem.write_bytes(256, &payload).unwrap();
    core.set_reg(Reg(1), 1024);
    core.set_reg(Reg(2), 256);
    core.set_reg(Reg(3), 64);
    core.run(&program, &mut mem).unwrap();
    let copied = mem.read_bytes(1024, 64).unwrap();
    assert_ne!(copied, payload, "the stuck bit must corrupt the copy");
    let err = store
        .put_via("rec", &payload, |_| copied.clone())
        .unwrap_err();
    assert_eq!(err, mercurial_mitigation::StoreError::CorruptOnWrite);
    assert!(store.is_empty(), "nothing corrupt was persisted");
}

/// Metrics close the loop: the pipeline's detections produce a sane
/// incidence estimate with an interval covering ground truth.
#[test]
fn metrics_close_the_loop() {
    let scenario = Scenario::small(92);
    let outcome = mercurial::pipeline::PipelineRun::execute(&scenario);
    let machines = scenario.fleet.machines as u64;
    let detected_machines: std::collections::HashSet<u32> =
        outcome.detections.iter().map(|d| d.core.machine).collect();
    let est = mercurial_metrics::wilson_interval(detected_machines.len() as u64, machines, 1.96);
    // The interval is a statement about detections; it must be well-formed
    // and the per-thousand rate in the paper's ballpark.
    assert!(est.lo <= est.rate && est.rate <= est.hi);
    assert!(est.per_thousand() < 20.0);
}
