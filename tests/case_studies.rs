//! The §2 case studies as integration tests — every concrete CEE example
//! the paper lists, reproduced on the instruction-level simulator and
//! caught (or, where the paper says detection is hard, shown to be hard).

use mercurial_fault::{library, Activation, CoreFaultProfile, FunctionalUnit, Injector, Lesion};
use mercurial_screening::chipscreen::ChipScreen;
use mercurial_simcpu::{assemble, Chip, ChipConfig, CoreConfig, Memory, SimCore};

fn mercurial_core(profile: CoreFaultProfile, seed: u64) -> SimCore {
    SimCore::new(CoreConfig::default(), Some(Injector::new(seed, profile)))
}

/// §2: "Violations of lock semantics leading to application data
/// corruption and crashes."
#[test]
fn case_lock_semantics_violation() {
    let src = "li x1, 128
               li x5, 256
               li x6, 300
               li x2, 0
               li x3, 1
               acquire:
               cas x4, x1, x2, x3
               bne x4, x2, acquire
               ld x7, x5, 0
               addi x7, x7, 1
               st x7, x5, 0
               st x2, x1, 0
               addi x6, x6, -1
               bnz x6, acquire
               halt";
    let prog = assemble(src).unwrap();
    let mut chip = Chip::new(
        ChipConfig {
            cores: 4,
            seed: 51,
            ..ChipConfig::default()
        },
        vec![(2, library::lock_violator(0.3))],
    );
    let status = chip.run_interleaved(&vec![prog; 4], 10_000_000);
    assert!(status
        .iter()
        .all(|s| !matches!(s, mercurial_simcpu::chip::CoreRunStatus::OutOfSteps)));
    let total = chip.mem().read_u64(256).unwrap();
    assert!(
        total < 1200,
        "phantom lock successes must lose updates, got {total}"
    );
}

/// §2: "Repeated bit-flips in strings, at a particular bit position
/// (which stuck out as unlikely to be coding bugs)."
#[test]
fn case_string_bitflips_at_fixed_position() {
    let bit = 11u8;
    let mut core = mercurial_core(library::string_bitflip(bit, 1.0), 52);
    let prog = assemble("memcpy x1, x2, x3\nhalt").unwrap();
    let mut mem = Memory::new(1 << 14);
    let src_data = vec![0u8; 512];
    mem.write_bytes(1024, &src_data).unwrap();
    core.set_reg(mercurial_simcpu::Reg(1), 4096);
    core.set_reg(mercurial_simcpu::Reg(2), 1024);
    core.set_reg(mercurial_simcpu::Reg(3), 512);
    core.run(&prog, &mut mem).unwrap();
    let out = mem.read_bytes(4096, 512).unwrap();
    // Every corrupted word differs from the original in exactly bit 11 —
    // the signature that "stuck out as unlikely to be coding bugs".
    let mut corrupted_words = 0;
    for w in 0..64 {
        let got = u64::from_le_bytes(out[8 * w..8 * w + 8].try_into().unwrap());
        if got != 0 {
            assert_eq!(got, 1u64 << bit, "word {w} corrupted at the wrong position");
            corrupted_words += 1;
        }
    }
    assert!(
        corrupted_words > 0,
        "the stuck bit must manifest on zero data"
    );
}

/// §5: "the same mercurial core manifests CEEs both with certain
/// data-copy operations and with certain vector operations … both kinds of
/// operations share the same hardware logic."
#[test]
fn case_copy_and_vector_share_hardware() {
    let screen = ChipScreen::new(2);
    let mut core = mercurial_core(library::vector_copy_coupled(0.6), 53);
    let report = screen.screen(&mut core);
    let fails = report.failing_kernels();
    assert!(
        fails.contains(&"vector-lanes") && fails.contains(&"memcpy-walk"),
        "one defect, two symptom families; got {fails:?}"
    );
}

/// §2: the self-inverting AES, §6's screening answer, and the hazard that
/// a roundtrip-only self-check misses it.
#[test]
fn case_self_inverting_aes_screening() {
    let screen = ChipScreen::new(1);
    let mut core = mercurial_core(library::self_inverting_aes(), 54);
    let report = screen.screen(&mut core);
    assert!(report.failing_kernels().contains(&"aes-roundtrip"));
    // The kernel's mismatch must be in the ciphertext lanes (outputs 0/1),
    // not the recovered-plaintext lanes (2/3): the roundtrip itself is
    // clean on this core.
    for (name, outcome) in &report.outcomes {
        if *name == "aes-roundtrip" {
            match outcome {
                mercurial_corpus::ScreenOutcome::Mismatch { index, .. } => {
                    assert!(*index < 2, "roundtrip lanes must verify on the same core")
                }
                other => panic!("expected golden-output mismatch, got {other:?}"),
            }
        }
    }
}

/// §2: "Corruption of kernel state resulting in process and kernel
/// crashes" — control-path defects trap loudly rather than corrupting
/// silently.
#[test]
fn case_addressgen_defect_crashes() {
    let screen = ChipScreen::new(1);
    let mut core = mercurial_core(library::addressgen_crasher(0.9), 55);
    let report = screen.screen(&mut core);
    let trapped = report
        .outcomes
        .iter()
        .filter(|(_, o)| matches!(o, mercurial_corpus::ScreenOutcome::Trapped(_)))
        .count();
    assert!(
        trapped > 0,
        "a hot address-gen defect should trap at least one kernel"
    );
}

/// §5: frequency sensitivity — the same core passes at the DVFS floor and
/// fails at turbo (and a low-frequency-worse defect does the opposite).
#[test]
fn case_frequency_sensitive_defects() {
    use mercurial_fault::{DvfsCurve, FreqResponse};
    let curve = DvfsCurve::typical_server();

    // High-frequency-sensitive FMA defect.
    let hot_at_turbo = CoreFaultProfile::single(
        "turbo-only",
        FunctionalUnit::Fma,
        Lesion::CorruptValue,
        Activation {
            base_prob: 1e-9,
            freq: FreqResponse::HighFreq {
                knee_mhz: 2800,
                sat_mhz: 3200,
                max_boost: 1e9,
            },
            ..Activation::always()
        },
    );
    let screen = ChipScreen::new(2);
    let mut core = mercurial_core(hot_at_turbo, 56);
    core.set_point(curve.min_point(65));
    assert!(
        !screen.screen(&mut core).failed(),
        "clean at the DVFS floor"
    );
    core.set_point(curve.max_point(65));
    assert!(screen.screen(&mut core).failed(), "fails at turbo");

    // The surprising inverse (§5: "lower frequency sometimes
    // (surprisingly) increases the failure rate").
    let worse_when_slow = CoreFaultProfile::single(
        "floor-only",
        FunctionalUnit::ScalarAlu,
        Lesion::FlipBit { bit: 3 },
        Activation {
            base_prob: 1e-9,
            freq: FreqResponse::LowFreq {
                knee_mhz: 1400,
                floor_mhz: 1200,
                max_boost: 1e9,
            },
            ..Activation::always()
        },
    );
    let mut core = mercurial_core(worse_when_slow, 57);
    core.set_point(curve.max_point(65));
    assert!(!screen.screen(&mut core).failed(), "clean at turbo");
    core.set_point(curve.min_point(65));
    assert!(screen.screen(&mut core).failed(), "fails at the floor");
}

/// §2/§6: latent defects escape burn-in but age in later; rescreening the
/// same core at a later age catches it.
#[test]
fn case_latent_defect_ages_in() {
    let onset_hours = 5000.0;
    let screen = ChipScreen::new(3);
    let mut core = mercurial_core(library::late_onset_muldiv(onset_hours, 0.01), 58);
    core.set_age_hours(100.0);
    assert!(!screen.screen(&mut core).failed(), "latent at burn-in age");
    core.set_age_hours(onset_hours + 10.0);
    assert!(screen.screen(&mut core).failed(), "manifest after onset");
}

/// §2: "Wrong answers that are never detected" — a data-pattern-gated
/// defect escapes a corpus whose operands never satisfy the gate.
#[test]
fn case_data_pattern_gated_defect_is_zero_day() {
    // Fires only on operands with >= 63 set bits; corpus operands and
    // kernel intermediates essentially never reach that.
    let profile = CoreFaultProfile::single(
        "needs-all-ones",
        FunctionalUnit::ScalarAlu,
        Lesion::FlipBit { bit: 7 },
        Activation {
            pattern: mercurial_fault::DataPattern::PopcountAtLeast(63),
            ..Activation::always()
        },
    );
    let screen = ChipScreen::new(2);
    let mut core = mercurial_core(profile, 59);
    let report = screen.screen(&mut core);
    assert!(
        !report.failed(),
        "a pattern-gated defect the corpus cannot trigger is a zero-day: {}",
        report.summary()
    );
}
