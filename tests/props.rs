//! Property-based tests on cross-crate invariants.

use mercurial_corpus::aes::{Aes, KeySize};
use mercurial_corpus::matmul::Matrix;
use mercurial_corpus::{crc, huffman, lz};
use mercurial_fault::{CoreUid, CounterRng};
use mercurial_mitigation::abft::AbftProduct;
use mercurial_mitigation::checker::{check_sort, MultisetDigest};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LZ compression roundtrips arbitrary byte strings.
    #[test]
    fn lz_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let compressed = lz::compress(&data);
        prop_assert_eq!(lz::decompress(&compressed).unwrap(), data);
    }

    /// Huffman coding roundtrips arbitrary byte strings.
    #[test]
    fn huffman_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let encoded = huffman::encode(&data);
        prop_assert_eq!(huffman::decode(&encoded).unwrap(), data);
    }

    /// LZ decompression never panics on arbitrary (malformed) streams.
    #[test]
    fn lz_decompress_total(stream in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = lz::decompress(&stream);
    }

    /// Huffman decoding never panics on arbitrary streams.
    #[test]
    fn huffman_decode_total(stream in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = huffman::decode(&stream);
    }

    /// AES decrypt inverts encrypt for every key size and random blocks.
    #[test]
    fn aes_inverse(key in proptest::collection::vec(any::<u8>(), 32..=32),
                   block in proptest::array::uniform16(any::<u8>())) {
        for size in [KeySize::Aes128, KeySize::Aes192, KeySize::Aes256] {
            let aes = Aes::new(size, &key[..size.key_len()]).unwrap();
            prop_assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
        }
    }

    /// Our software AES agrees with the independent simulator AES on
    /// random keys and blocks (two-implementation cross-check).
    #[test]
    fn aes_implementations_agree(key in proptest::array::uniform16(any::<u8>()),
                                 block in proptest::array::uniform16(any::<u8>())) {
        let ours = Aes::new(KeySize::Aes128, &key).unwrap().encrypt_block(block);
        let theirs = mercurial_simcpu::crypto::aes128_encrypt_block(key, block);
        prop_assert_eq!(ours, theirs);
    }

    /// The three CRC implementations agree on random data, both polynomials.
    #[test]
    fn crc_implementations_agree(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        for poly in [crc::POLY_CRC32, crc::POLY_CRC32C] {
            let table = crc::CrcTable::new(poly);
            let bw = crc::crc_bitwise(poly, &data);
            prop_assert_eq!(table.crc_table(&data), bw);
            prop_assert_eq!(table.crc_slice8(&data), bw);
        }
    }

    /// The multiset digest is permutation-invariant and order-insensitive.
    #[test]
    fn multiset_digest_permutation_invariant(
        mut data in proptest::collection::vec(any::<u64>(), 0..256),
        seed in any::<u64>(),
    ) {
        let digest = MultisetDigest::of(&data);
        // Deterministic shuffle.
        let mut rng = CounterRng::new(seed);
        for i in (1..data.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            data.swap(i, j);
        }
        prop_assert_eq!(MultisetDigest::of(&data), digest);
    }

    /// check_sort accepts exactly the sorted permutation of the input.
    #[test]
    fn sort_checker_soundness(data in proptest::collection::vec(any::<u64>(), 1..256)) {
        let digest = MultisetDigest::of(&data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        prop_assert!(check_sort(digest, &sorted));
        // Corrupt one element: must reject.
        let mut bad = sorted.clone();
        bad[0] = bad[0].wrapping_add(1);
        bad.sort_unstable();
        prop_assert!(!check_sort(digest, &bad));
    }

    /// ABFT corrects any single corruption at any location.
    #[test]
    fn abft_corrects_any_single_corruption(
        seed in 0u64..1000,
        r in 0usize..8,
        c in 0usize..8,
        delta in prop_oneof![Just(1.0f64), Just(-3.5), Just(0.001), Just(1e6)],
    ) {
        let a = Matrix::random(8, 8, seed);
        let b = Matrix::random(8, 8, seed + 1);
        let mut p = AbftProduct::multiply(&a, &b);
        let honest = p.matrix().clone();
        p.matrix_mut()[(r, c)] += delta;
        let verdict = p.verify_and_correct().unwrap();
        let located_correctly = matches!(
            verdict,
            mercurial_mitigation::abft::AbftVerdict::Corrected { row, col, .. }
                if row == r && col == c
        );
        prop_assert!(located_correctly, "verdict was {:?}", verdict);
        prop_assert!(p.matrix().max_abs_diff(&honest) < 1e-6);
    }

    /// CoreUid's u64 encoding is injective over its whole domain.
    #[test]
    fn core_uid_roundtrip(machine in any::<u32>(), socket in any::<u8>(), core in any::<u16>()) {
        let uid = CoreUid::new(machine, socket, core);
        prop_assert_eq!(CoreUid::from_u64(uid.as_u64()), uid);
    }

    /// The event queue dequeues in non-decreasing time order regardless of
    /// insertion order.
    #[test]
    fn event_queue_ordering(times in proptest::collection::vec(0.0f64..1e6, 1..128)) {
        let mut q = mercurial_fleet::EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut prev = f64::NEG_INFINITY;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= prev);
            prev = t;
        }
    }

    /// Counter RNG uniform draws are always in [0, 1).
    #[test]
    fn counter_rng_unit_interval(key in any::<u64>(), counter in any::<u64>()) {
        let u = CounterRng::new(key).uniform_at(counter);
        prop_assert!((0.0..1.0).contains(&u));
    }
}
