# Development entry points. `make ci` is what the CI workflow runs.

CARGO ?= cargo

.PHONY: ci build test test-workspace fmt fmt-check clippy bench speedup fuzz-smoke e15-smoke trace-smoke watch-smoke sparse-smoke serve-smoke frontier-smoke audit-smoke prof-smoke

ci: build test-workspace fmt-check clippy fuzz-smoke e15-smoke trace-smoke watch-smoke sparse-smoke serve-smoke frontier-smoke audit-smoke prof-smoke

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

test-workspace:
	$(CARGO) test --workspace -q

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

bench:
	$(CARGO) bench -p mercurial-bench

speedup:
	$(CARGO) run --release -p mercurial-bench --bin par_speedup

# Bounded fuzz campaign (fixed seed, small budget): asserts every lesion
# kind gets a witness, the distilled corpus stays <= 25% of the budget,
# and reports are identical at 1/2/8 worker threads.
fuzz-smoke:
	$(CARGO) run --release -p mercurial-bench --bin e_fuzz -- --smoke

# Bounded closed-loop run (demo scale, fixed seed): asserts the epoch-
# interleaved pipeline strictly reduces residual corrupt-ops vs the open
# loop and that outcomes are identical at 1/2/8 worker threads.
e15-smoke:
	$(CARGO) run --release -p mercurial-bench --bin e15_closed_loop -- --smoke

# Tracing contracts (demo scale, fixed seed): asserts the JSONL trace is
# byte-identical at 1/2/8 worker threads, the Chrome export is valid
# JSON with balanced span pairs, and the incident timeline shows a full
# onset -> signal -> quarantine -> confirm story.
trace-smoke:
	$(CARGO) run --release -p mercurial-bench --bin e16_trace_overhead -- --smoke

# Alerting contracts (demo scale, fixed seed) plus the paper-scale alert
# gate: the committed rule file must stay silent on the healthy paper
# scenario (against the committed baseline) and must fire on the seeded
# detection-regression scenario.
watch-smoke:
	$(CARGO) run --release -p mercurial-bench --bin e17_watch_overhead -- --smoke
	$(CARGO) run --release -- watch --rules scenarios/watch_rules.json --scenario scenarios/paper.json
	! $(CARGO) run --release -- watch --rules scenarios/watch_rules.json --scenario scenarios/watch_regression.json

# Sparse fleet-core contracts: dense/sparse bit-parity through the
# closed-loop driver (traced and untraced, 1/2/8 workers), stepping-
# granularity invariance, and the 1M-machine event accounting — zero
# per-epoch work on healthy machines, wall clock within budget.
sparse-smoke:
	$(CARGO) run --release -p mercurial-bench --bin e18_sparse -- --smoke

# Served-topology contracts: frame-codec round-trip, zero-impairment
# bit-parity between the socket-split pipeline and the in-process driver
# (1/2/4 workers), and loss monotonicity of the impairment layer.
serve-smoke:
	$(CARGO) run --release -p mercurial-bench --bin e19_serve -- --smoke

# Workload-frontier contracts: a zeroed workload layer moves no
# simulation bit, per-class attribution conserves fleet totals at any
# parallelism, and the mitigation ladder is strictly monotone — lower
# residual corruption at strictly higher overhead, every rung.
frontier-smoke:
	$(CARGO) run --release -p mercurial-bench --bin e20_frontier -- --smoke

# Decision-audit contracts: an audit-off run reproduces the E20 pin
# digests bit-for-bit, the ledger replayed from exported JSONL is
# byte-identical to the in-loop ledger at 1/2/8 workers, and attribution
# conserves ground truth (TP+FN == seeded mercurial cores, FP healthy).
audit-smoke:
	$(CARGO) run --release -p mercurial-bench --bin e21_audit -- --smoke

# Self-observability contracts: a profiled run reproduces the E20 legacy
# pin bit-for-bit (the profiler is write-only), the enabled profiler
# stays under its 2% overhead budget, and the shared BenchMeta envelope
# round-trips through its own validator.
prof-smoke:
	$(CARGO) run --release -p mercurial-bench --bin e22_prof -- --smoke
