# Development entry points. `make ci` is what the CI workflow runs.

CARGO ?= cargo

.PHONY: ci build test test-workspace fmt fmt-check clippy bench speedup

ci: build test-workspace fmt-check clippy

build:
	$(CARGO) build --release

test:
	$(CARGO) test -q

test-workspace:
	$(CARGO) test --workspace -q

fmt:
	$(CARGO) fmt

fmt-check:
	$(CARGO) fmt --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

bench:
	$(CARGO) bench -p mercurial-bench

speedup:
	$(CARGO) run --release -p mercurial-bench --bin par_speedup
